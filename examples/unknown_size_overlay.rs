//! Unknown-size overlay: electing a leader when **nobody knows how many
//! peers exist** — the paper's Section 5 setting.
//!
//! A peer-to-peer overlay has formed organically; no node knows `n`.
//! Theorem 2 says no protocol can elect-and-stop here, so we run the
//! paper's *revocable* protocol: leadership may transfer while estimates
//! grow, but stabilizes to a single, globally agreed leader.
//!
//! The example prints the leadership timeline — every revocation event —
//! which is the observable difference from classic leader election.
//!
//! Run with: `cargo run --release --example unknown_size_overlay`

use ale::congest::{congest_budget, Network};
use ale::core::revocable::{stabilized, RevocableParams, RevocableProcess};
use ale::graph::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The overlay: a sparse random-regular gossip mesh. Nobody knows n=12.
    // (Size chosen for demo snappiness: at n=12 the k=4 certification
    // usually passes, skipping the 6M-round k=8 ladder that larger unknown
    // networks must pay — Corollary 1's polynomial in action.)
    let topology = Topology::RandomRegular { n: 12, d: 3 };
    let overlay = topology.build(5)?;

    // Scaled parameters (same functional forms as the paper; see DESIGN.md
    // "Substitutions" for the modes) keep the demo interactive.
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
    let budget = congest_budget(overlay.n(), params.congest_factor);
    let horizon = 16u64;

    let mut net = Network::from_fn(&overlay, 11, budget, |deg, _rng| {
        RevocableProcess::with_horizon(params, deg, Some(horizon))
    });

    println!("overlay of unknown size; probing size estimates k = 2, 4, 8, ...\n");
    let mut last_view = None;
    let mut last_k = 0;
    while !net.all_halted() {
        net.step()?;
        let verdicts = net.outputs();
        let k = verdicts.iter().map(|v| v.k).max().unwrap_or(2);
        if k != last_k {
            println!("round {:>7}: estimate advanced to k = {k}", net.round());
            last_k = k;
        }
        // Report leadership changes (revocations) as any node's view of the
        // best record changes.
        let best = verdicts.iter().filter_map(|v| v.view).max_by(|a, b| {
            (a.cert, std::cmp::Reverse(a.id))
                .partial_cmp(&(b.cert, std::cmp::Reverse(b.id)))
                .unwrap()
        });
        if best != last_view {
            let Some(b) = best else { continue };
            println!(
                "round {:>7}: leadership record is now (certificate k={}, id={})",
                net.round(),
                b.cert,
                b.id
            );
            last_view = best;
        }
        if net.round() % 16 == 0 && stabilized(&verdicts) {
            println!(
                "round {:>7}: network stabilized — every node agrees on the leader",
                net.round()
            );
            break;
        }
    }

    let verdicts = net.outputs();
    let leaders: Vec<usize> = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.leader)
        .map(|(i, _)| i)
        .collect();
    println!(
        "\nfinal: {} leader(s) {:?}; {} messages, {} CONGEST rounds",
        leaders.len(),
        leaders,
        net.metrics().messages,
        net.metrics().congest_rounds
    );
    println!(
        "(the protocol itself never halts — Definition 2 — but its leader\n\
         record is now absorbing: no larger certificate can ever appear)"
    );
    Ok(())
}
