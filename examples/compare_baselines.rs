//! Baseline shootout across topologies — a miniature, narrated version of
//! the `table1` experiment binary.
//!
//! For each topology class the example runs every algorithm on the same
//! seeds and prints a compact cost table, annotating *why* the ordering
//! looks the way it does in terms of the paper's Table 1.
//!
//! Run with: `cargo run --release --example compare_baselines`

use ale::graph::Topology;

/// The bench crate is not a dependency of the umbrella crate (it is the
/// harness, not the library), so this example carries its own tiny driver.
mod ale_bench_shim {
    use ale::baselines::flood_max::{run_flood_max, FloodMaxConfig};
    use ale::baselines::gilbert::{run_gilbert, GilbertConfig};
    use ale::baselines::kutten::{run_kutten, KuttenConfig};
    use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig};
    use ale::core::ElectionOutcome;
    use ale::graph::{Graph, GraphProps, NetworkKnowledge, Topology};

    pub struct Bench {
        pub graph: Graph,
        pub knowledge: NetworkKnowledge,
        pub diameter: u64,
    }

    impl Bench {
        pub fn new(topology: Topology, seed: u64) -> Result<Self, Box<dyn std::error::Error>> {
            let graph = topology.build(seed)?;
            let props = GraphProps::compute_for(&graph, &topology)?;
            Ok(Bench {
                knowledge: NetworkKnowledge::from_props(&props),
                diameter: props.diameter as u64,
                graph,
            })
        }

        pub fn run(
            &self,
            name: &str,
            seed: u64,
        ) -> Result<ElectionOutcome, Box<dyn std::error::Error>> {
            Ok(match name {
                "this-work" => {
                    let cfg = IrrevocableConfig::from_knowledge(self.knowledge);
                    run_irrevocable(&self.graph, &cfg, seed)?
                }
                "gilbert18" => {
                    let cfg = GilbertConfig::new(self.knowledge.n, self.knowledge.tmix);
                    run_gilbert(&self.graph, &cfg, seed)?
                }
                "kutten15" => {
                    let mut cfg = KuttenConfig::for_graph(&self.graph);
                    cfg.diameter = self.diameter;
                    run_kutten(&self.graph, &cfg, seed)?
                }
                "flood-max" => {
                    let cfg = FloodMaxConfig::for_graph(&self.graph);
                    run_flood_max(&self.graph, &cfg, seed)?
                }
                other => panic!("unknown algorithm {other}"),
            })
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = 8u64;
    let scenarios = [
        (
            Topology::Complete { n: 48 },
            "complete graph — ideal mixing: territories are tiny, walks are short",
        ),
        (
            Topology::RandomRegular { n: 96, d: 4 },
            "sparse expander — the paper's sweet spot: Õ(√n) messages vs Θ(m) floods",
        ),
        (
            Topology::RingOfCliques { cliques: 6, k: 8 },
            "clustered network — moderate conductance, flood baselines pay per edge",
        ),
    ];

    for (topo, story) in scenarios {
        let bench = ale_bench_shim::Bench::new(topo, 1)?;
        println!("\n== {topo}: {story}");
        println!(
            "   n = {}, m = {}, D = {}, t_mix ≤ {}, Φ ≈ {:.3}",
            bench.graph.n(),
            bench.graph.m(),
            bench.diameter,
            bench.knowledge.tmix,
            bench.knowledge.phi
        );
        println!(
            "   {:<10} {:>8} {:>12} {:>12} {:>8}",
            "algorithm", "success", "med msgs", "med bits", "rounds"
        );
        for name in ["this-work", "gilbert18", "kutten15", "flood-max"] {
            let mut ok = 0;
            let mut msgs = Vec::new();
            let mut bits = Vec::new();
            let mut rounds = 0;
            for seed in 0..seeds {
                let o = bench.run(name, seed)?;
                if o.is_successful() {
                    ok += 1;
                }
                msgs.push(o.metrics.messages as f64);
                bits.push(o.metrics.bits as f64);
                rounds = o.metrics.congest_rounds;
            }
            msgs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            bits.sort_by(|a, b| a.partial_cmp(b).unwrap());
            println!(
                "   {:<10} {:>5}/{:<2} {:>12.0} {:>12.0} {:>8}",
                name,
                ok,
                seeds,
                msgs[msgs.len() / 2],
                bits[bits.len() / 2],
                rounds
            );
        }
    }
    println!(
        "\nReading guide (paper Table 1): this-work trades a little time\n\
         (t_mix·log²n rounds) for near-optimal messages; gilbert18 pays √n·polylog\n\
         tokens per candidate; flood baselines pay Θ(m)-ish per election but win on\n\
         raw time (O(D))."
    );
    Ok(())
}
