//! Impossibility demo: what goes wrong when you *guess* the network size.
//!
//! Theorem 2 of the paper: without knowing `n`, no algorithm can elect a
//! leader and stop — far-away regions of a big cycle are indistinguishable
//! from complete smaller networks within any time budget.
//!
//! This demo runs the (correct!) Theorem 1 protocol on a 512-node ring
//! while every node *believes* the ring has 8 nodes, then prints the
//! resulting leader "domains" — a split-brain map. The same ring under the
//! revocable protocol ends with one leader.
//!
//! Run with: `cargo run --release --example impossibility_demo`

use ale::core::revocable::{run_revocable, RevocableParams};
use ale::graph::generators;
use ale::impossibility::{believed_cycle_knowledge, split_brain_trial};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n0 = 8usize; // what nodes believe
    let big_n = 512usize; // what is true

    let believed = believed_cycle_knowledge(n0);
    println!(
        "nodes believe: n = {}, t_mix = {}, Φ = {:.3}; reality: a {big_n}-node ring\n",
        believed.n, believed.tmix, believed.phi
    );

    let trial = split_brain_trial(n0, big_n, 99)?;
    println!(
        "stop-by-T protocol elected {} leaders at ring positions:",
        trial.leaders.len()
    );
    // Draw a coarse ring map: 64 buckets of 8 positions.
    let mut map = ['.'; 64];
    for &l in &trial.leaders {
        map[l * 64 / big_n] = 'L';
    }
    println!("  [{}]", map.iter().collect::<String>());
    if let Some(d) = trial.min_leader_distance() {
        println!("  closest pair of leaders is {d} hops apart");
    }
    println!(
        "  cost: {} messages, {} rounds\n",
        trial.outcome.metrics.messages, trial.outcome.metrics.rounds
    );

    // The cure: revocable leader election, which needs no knowledge of n.
    println!("running the revocable protocol on the same ring (no knowledge of n)...");
    let ring = generators::cycle(big_n)?;
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.05, 0.25, 1.0);
    let result = run_revocable(&ring, &params, 99, 64)?;
    println!(
        "revocable protocol: stabilized = {}, leaders = {}, rounds to stability = {:?}",
        result.stabilized,
        result.outcome.leader_count(),
        result.rounds_at_stability
    );
    println!(
        "\nTheorem 2 in one line: bounded-time election commits too early;\n\
         revocability (Definition 2) is exactly what unknown n costs you."
    );
    Ok(())
}
