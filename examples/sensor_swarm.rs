//! Sensor swarm: the paper's motivating scenario (massive ad-hoc networks,
//! IoT) — a deployed swarm of identical, unlabeled sensors arranged in a
//! grid-with-wraparound field must elect a coordinator for duty-cycling.
//!
//! Energy is the scarce resource, so the example compares the *message*
//! (≈ radio energy) cost of the paper's protocol against the baselines a
//! practitioner might reach for first — across multiple elections, since a
//! coordinator is re-elected every epoch.
//!
//! Run with: `cargo run --release --example sensor_swarm`

use ale::baselines::flood_max::{run_flood_max, FloodMaxConfig};
use ale::baselines::kutten::{run_kutten, KuttenConfig};
use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale::core::SuccessStats;
use ale::graph::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12x12 torus of sensors: 144 nodes, degree 4 radio neighborhoods.
    let topology = Topology::Grid2d {
        rows: 12,
        cols: 12,
        torus: true,
    };
    let field = topology.build(2024)?;
    let epochs = 20u64;

    println!("sensor field: {} nodes, {} links", field.n(), field.m());

    // This paper's protocol (knowledge derived once, offline).
    let cfg = IrrevocableConfig::derive_for(&field, &topology)?;
    let mut stats = SuccessStats::default();
    let mut msgs = 0u64;
    let mut bits = 0u64;
    for epoch in 0..epochs {
        let o = run_irrevocable(&field, &cfg, epoch)?;
        stats.record(&o);
        msgs += o.metrics.messages;
        bits += o.metrics.bits;
    }
    println!(
        "this-work : {}/{} unique coordinators | {:>8} msgs/epoch | {:>9} bits/epoch",
        stats.unique,
        stats.runs,
        msgs / epochs,
        bits / epochs
    );

    // Kutten-style candidate flooding (needs diameter knowledge too).
    let kcfg = KuttenConfig::for_graph(&field);
    let mut kstats = SuccessStats::default();
    let mut kmsgs = 0u64;
    let mut kbits = 0u64;
    for epoch in 0..epochs {
        let o = run_kutten(&field, &kcfg, epoch)?;
        kstats.record(&o);
        kmsgs += o.metrics.messages;
        kbits += o.metrics.bits;
    }
    println!(
        "kutten15  : {}/{} unique coordinators | {:>8} msgs/epoch | {:>9} bits/epoch",
        kstats.unique,
        kstats.runs,
        kmsgs / epochs,
        kbits / epochs
    );

    // Naive flood-max: every sensor shouts.
    let fcfg = FloodMaxConfig::for_graph(&field);
    let mut fstats = SuccessStats::default();
    let mut fmsgs = 0u64;
    let mut fbits = 0u64;
    for epoch in 0..epochs {
        let o = run_flood_max(&field, &fcfg, epoch)?;
        fstats.record(&o);
        fmsgs += o.metrics.messages;
        fbits += o.metrics.bits;
    }
    println!(
        "flood-max : {}/{} unique coordinators | {:>8} msgs/epoch | {:>9} bits/epoch",
        fstats.unique,
        fstats.runs,
        fmsgs / epochs,
        fbits / epochs
    );

    println!(
        "\nNote: the torus is an intermediate-conductance topology (Φ ≈ 1/√n);\n\
         the paper's advantage grows on better-mixing meshes and with network size."
    );
    Ok(())
}
