//! Quickstart: elect a leader in an anonymous network in a few lines.
//!
//! Builds a 64-node random-regular "ad-hoc mesh", derives the knowledge
//! bundle `(n, t_mix, Φ)` the paper's Theorem 1 protocol assumes, runs the
//! election, and prints who won and what it cost.
//!
//! Run with: `cargo run --release --example quickstart`

use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale::graph::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An anonymous network: nodes have no IDs, only port-numbered links.
    let topology = Topology::RandomRegular { n: 64, d: 4 };
    let graph = topology.build(42)?;

    // The protocol needs (upper bounds on) n, t_mix and Φ — Theorem 1's
    // knowledge assumption. `derive_for` computes them from the graph.
    let config = IrrevocableConfig::derive_for(&graph, &topology)?;
    println!(
        "knowledge: n = {}, t_mix ≤ {}, Φ ≈ {:.4}",
        config.knowledge.n, config.knowledge.tmix, config.knowledge.phi
    );
    println!(
        "derived:   x = {} walks/candidate, territory target = {}, {} rounds total",
        config.x(),
        config.final_threshold(),
        config.total_rounds()
    );

    // Run the election (seed makes it reproducible).
    let outcome = run_irrevocable(&graph, &config, 7)?;

    match outcome.unique_leader() {
        Some(leader) => println!("elected node {leader} as the unique leader"),
        None => println!(
            "election failed ({} leaders) — a whp event's bad case; rerun with another seed",
            outcome.leader_count()
        ),
    }
    println!(
        "cost: {} messages, {} bits, {} CONGEST rounds (clean: {})",
        outcome.metrics.messages,
        outcome.metrics.bits,
        outcome.metrics.congest_rounds,
        outcome.metrics.congest_clean()
    );
    Ok(())
}
