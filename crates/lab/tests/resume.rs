//! Kill-and-resume durability, pinned end to end:
//!
//! 1. a run killed at any point — torn `trials.db` tail, torn
//!    `trials.jsonl` line, missing views, missing journal — is completed
//!    in place by `run --resume`, and every stored file is
//!    **byte-identical** to an uninterrupted run at any worker count;
//! 2. resume refuses drifted parameter spaces, merged-partial shards,
//!    and pre-store manifests loudly instead of silently recomputing.

use ale_lab::engine::{execute, resume, RunSpec};
use ale_lab::json::ToJson;
use ale_lab::registry;
use ale_lab::scenario::{GridConfig, LabError};
use ale_lab::store;
use std::path::{Path, PathBuf};

const FILES: [&str; 5] = [
    "manifest.json",
    "trials.db",
    "trials.jsonl",
    "trials.csv",
    "summary.csv",
];

fn quick_spec(dir: &Path, workers: usize) -> RunSpec {
    RunSpec {
        master_seed: 11,
        seeds: Some(3),
        workers,
        grid: GridConfig {
            quick: true,
            ..GridConfig::default()
        },
        out: Some(dir.to_path_buf()),
        ..RunSpec::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ale-lab-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    FILES
        .iter()
        .map(|f| (f.to_string(), std::fs::read(dir.join(f)).expect(f)))
        .collect()
}

fn assert_identical(dir: &Path, baseline: &[(String, Vec<u8>)], what: &str) {
    for (name, bytes) in baseline {
        let got = std::fs::read(dir.join(name)).expect(name);
        assert_eq!(&got, bytes, "{what}: {name} diverged from the full run");
    }
}

fn mark_incomplete(dir: &Path) {
    let path = dir.join("manifest.json");
    let mut m = store::load_manifest(&path).expect("manifest");
    m.complete = false;
    std::fs::write(&path, m.to_json().render_pretty() + "\n").unwrap();
}

/// Chops `n` bytes off the end of `name` — a mid-record/mid-line tear.
fn truncate_tail(dir: &Path, name: &str, n: u64) {
    let path = dir.join(name);
    let len = std::fs::metadata(&path).expect(name).len();
    assert!(len > n, "{name} too small to tear");
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - n).unwrap();
}

#[test]
fn killed_runs_resume_byte_identical_at_any_worker_count() {
    let scenario = registry::find("cautious").expect("registered");
    let full = tmp("full");
    execute(scenario.as_ref(), &quick_spec(&full, 4)).expect("full run");
    let baseline = snapshot(&full);

    for workers in [1usize, 8] {
        // Crash state A: journal torn mid-entry, JSONL torn mid-line,
        // derived views gone, manifest never marked complete.
        let dir = tmp(&format!("torn-w{workers}"));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in &baseline {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
        truncate_tail(&dir, "trials.db", 13);
        truncate_tail(&dir, "trials.jsonl", 7);
        std::fs::remove_file(dir.join("trials.csv")).unwrap();
        std::fs::remove_file(dir.join("summary.csv")).unwrap();
        mark_incomplete(&dir);
        let out = resume(&dir, Some(workers), false).expect("resume torn");
        assert_identical(&dir, &baseline, &format!("torn, workers={workers}"));
        assert_eq!(out.records.len(), baseline_record_count(&baseline));

        // Crash state B: killed before anything durable landed — only
        // the incomplete manifest exists. Resume recomputes everything.
        let dir = tmp(&format!("bare-w{workers}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("manifest.json"),
            &baseline
                .iter()
                .find(|(n, _)| n == "manifest.json")
                .unwrap()
                .1,
        )
        .unwrap();
        mark_incomplete(&dir);
        resume(&dir, Some(workers), false).expect("resume bare");
        assert_identical(&dir, &baseline, &format!("bare, workers={workers}"));

        std::fs::remove_dir_all(tmp(&format!("torn-w{workers}"))).ok();
        std::fs::remove_dir_all(tmp(&format!("bare-w{workers}"))).ok();
    }

    // Crash state C: journal lost entirely but a JSONL prefix survived —
    // the surviving records are re-journaled, the rest recomputed.
    let dir = tmp("jsonl-only");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in &baseline {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
    std::fs::remove_file(dir.join("trials.db")).unwrap();
    std::fs::remove_file(dir.join("trials.csv")).unwrap();
    std::fs::remove_file(dir.join("summary.csv")).unwrap();
    truncate_tail(&dir, "trials.jsonl", 25);
    mark_incomplete(&dir);
    resume(&dir, None, false).expect("resume jsonl-only");
    assert_identical(&dir, &baseline, "jsonl-only");
    std::fs::remove_dir_all(&dir).ok();

    // Resuming an already-complete run is a no-op rewrite: still identical.
    resume(&full, Some(2), false).expect("resume complete");
    assert_identical(&full, &baseline, "already complete");
    std::fs::remove_dir_all(&full).ok();
}

fn baseline_record_count(baseline: &[(String, Vec<u8>)]) -> usize {
    let jsonl = &baseline
        .iter()
        .find(|(n, _)| n == "trials.jsonl")
        .unwrap()
        .1;
    std::str::from_utf8(jsonl).unwrap().lines().count()
}

#[test]
fn resume_refuses_drift_merged_partials_and_pre_store_manifests() {
    let scenario = registry::find("cautious").expect("registered");
    let dir = tmp("refuse");
    execute(scenario.as_ref(), &quick_spec(&dir, 2)).expect("run");
    let path = dir.join("manifest.json");
    let manifest = store::load_manifest(&path).expect("manifest");

    let rewrite = |m: &store::RunManifest| {
        std::fs::write(&path, m.to_json().render_pretty() + "\n").unwrap();
    };

    // A tampered space hash means the re-expanded space no longer matches
    // what the store was keyed under.
    let mut drifted = manifest.clone();
    drifted.space_hash ^= 1;
    drifted.complete = false;
    rewrite(&drifted);
    let err = resume(&dir, None, false).expect_err("drift must refuse");
    assert!(matches!(err, LabError::BadArgs(_)), "{err}");
    assert!(err.to_string().contains("does not match"), "{err}");

    // A merged-partial union cannot be resumed as one run.
    let mut merged = manifest.clone();
    merged.shard = "0,1/3".into();
    rewrite(&merged);
    let err = resume(&dir, None, false).expect_err("merged partial must refuse");
    assert!(err.to_string().contains("merged partial"), "{err}");

    // A pre-store manifest records no invocation config to re-expand.
    let mut old = manifest.clone();
    old.config = None;
    rewrite(&old);
    let err = resume(&dir, None, false).expect_err("pre-store must refuse");
    assert!(matches!(err, LabError::BadArgs(_)), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
