//! Pins the `ale-lab` process exit-code contract end to end, against the
//! real binary:
//!
//! * `0` — success;
//! * `1` — `check` found a cost **regression** (the CI gate's signal);
//! * `2` — **usage/run errors**, including every `--param`/`--n`/`--topo`
//!   parse or validation failure. A malformed sweep request must never
//!   masquerade as a regression.

use std::path::PathBuf;
use std::process::Command;

fn ale_lab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ale-lab"))
        .args(args)
        .output()
        .expect("spawn ale-lab")
}

fn exit_code(args: &[&str]) -> i32 {
    ale_lab(args).status.code().expect("exit code")
}

#[test]
fn success_paths_exit_zero() {
    assert_eq!(exit_code(&["list"]), 0);
    assert_eq!(exit_code(&["describe", "diffusion"]), 0);
    assert_eq!(
        exit_code(&[
            "run",
            "diffusion",
            "--quick",
            "--quiet",
            "--seeds",
            "1",
            "--workers",
            "1"
        ]),
        0
    );
}

#[test]
fn usage_errors_exit_two() {
    // Unknown scenario / command / flag.
    assert_eq!(exit_code(&["run", "nope"]), 2);
    assert_eq!(exit_code(&["frobnicate"]), 2);
    assert_eq!(exit_code(&["run", "diffusion", "--bogus"]), 2);
    // --param validation: unknown key, unparseable value, bad syntax.
    assert_eq!(exit_code(&["run", "diffusion", "--param", "nope=1"]), 2);
    assert_eq!(exit_code(&["run", "diffusion", "--param", "gamma=abc"]), 2);
    assert_eq!(exit_code(&["run", "diffusion", "--param", "gamma"]), 2);
    // Fault-sweep knobs: unparseable values and out-of-range
    // probabilities/latencies are usage errors, validated by the block
    // builder before any trial runs.
    assert_eq!(
        exit_code(&["run", "revocable", "--param", "fault-rate=abc"]),
        2
    );
    assert_eq!(
        exit_code(&["run", "revocable", "--param", "fault-rate=1.5"]),
        2
    );
    assert_eq!(
        exit_code(&["run", "revocable", "--param", "fault-rate=-0.1"]),
        2
    );
    assert_eq!(exit_code(&["run", "revocable", "--param", "latency=0"]), 2);
    // --n / --topo parse failures are usage errors too.
    assert_eq!(exit_code(&["run", "diffusion", "--n", "many"]), 2);
    assert_eq!(exit_code(&["run", "diffusion", "--topo", "klein:4"]), 2);
    // A scenario with no 'n' axis rejects --n loudly instead of silently
    // ignoring it.
    assert_eq!(exit_code(&["run", "cautious", "--n", "64"]), 2);
    // An override that only an inactive block could consume is rejected
    // too: revocable's topology axis exists only in the --n-gated ladder
    // block, so a bare --topo must not silently run the default grid.
    assert_eq!(exit_code(&["run", "revocable", "--topo", "complete:6"]), 2);
    // The error channel is stderr, not stdout.
    let out = ale_lab(&["run", "diffusion", "--param", "nope=1"]);
    assert!(out.stdout.is_empty());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown parameter 'nope'"));
}

#[test]
fn resume_completes_torn_runs_and_resume_usage_errors_exit_two() {
    let dir = std::env::temp_dir().join(format!("ale-lab-exit-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let p = dir.to_string_lossy().to_string();
    assert_eq!(
        exit_code(&[
            "run",
            "diffusion",
            "--quick",
            "--quiet",
            "--seeds",
            "1",
            "--workers",
            "1",
            "--out",
            &p
        ]),
        0
    );
    // Simulate a kill: tear both persisted tails, drop the derived
    // views, and leave the manifest unmarked-complete.
    for (name, chop) in [("trials.db", 9u64), ("trials.jsonl", 5u64)] {
        let path = dir.join(name);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - chop).unwrap();
    }
    std::fs::remove_file(dir.join("trials.csv")).unwrap();
    std::fs::remove_file(dir.join("summary.csv")).unwrap();
    let manifest_path = dir.join("manifest.json");
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    assert!(manifest.contains("\"complete\": true"));
    std::fs::write(
        &manifest_path,
        manifest.replace("\"complete\": true", "\"complete\": false"),
    )
    .unwrap();
    // A torn run resumes to success; the views are back.
    assert_eq!(exit_code(&["run", "--resume", &p, "--quiet"]), 0);
    assert!(dir.join("summary.csv").exists());
    assert!(std::fs::read_to_string(&manifest_path)
        .unwrap()
        .contains("\"complete\": true"));
    // Resume usage errors are exit 2, never a silent re-run.
    assert_eq!(exit_code(&["run", "--resume"]), 2);
    assert_eq!(exit_code(&["run", "--resume", &p, "--seeds", "3"]), 2);
    assert_eq!(exit_code(&["run", "--resume", "/nonexistent-run-dir"]), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_usage_errors_exit_two() {
    // No run directory, a directory that does not exist, and a
    // directory without a store are all usage errors, reported before
    // the listener ever binds.
    assert_eq!(exit_code(&["serve"]), 2);
    assert_eq!(exit_code(&["serve", "/nonexistent-run-dir"]), 2);
    let dir = std::env::temp_dir().join(format!("ale-lab-exit-serve-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.to_string_lossy().to_string();
    // An empty directory has no manifest.json; with a manifest but no
    // trials.db it is still not servable.
    assert_eq!(exit_code(&["serve", &p]), 2);
    std::fs::write(dir.join("manifest.json"), "{}").unwrap();
    let out = ale_lab(&["serve", &p]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no trials.db"));
    // Unparseable --addr / --workers, and unknown flags.
    std::fs::write(dir.join("trials.db"), "").unwrap();
    assert_eq!(exit_code(&["serve", &p, "--addr", "not-an-addr"]), 2);
    assert_eq!(exit_code(&["serve", &p, "--workers", "0"]), 2);
    assert_eq!(exit_code(&["serve", &p, "--workers", "many"]), 2);
    assert_eq!(exit_code(&["serve", &p, "--bogus"]), 2);
    // A port that is already taken is a bind error, not a hang.
    let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap().to_string();
    let out = ale_lab(&["serve", &p, "--addr", &addr]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot listen"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_regressions_exit_one_but_check_usage_errors_exit_two() {
    let dir = std::env::temp_dir().join(format!("ale-lab-exitcodes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let header = "point,family,algorithm,n,metric,count,mean,ci95,median,min,max,spilled";
    let base = dir.join("base.csv");
    let cur = dir.join("cur.csv");
    std::fs::write(
        &base,
        format!("{header}\np,f,-,8,messages,4,100,0,100,100,100,false\n"),
    )
    .unwrap();
    std::fs::write(
        &cur,
        format!("{header}\np,f,-,8,messages,4,300,0,300,300,300,false\n"),
    )
    .unwrap();
    let p = |p: &PathBuf| p.to_string_lossy().to_string();
    // Self-check: success.
    assert_eq!(exit_code(&["check", &p(&base), "--baseline", &p(&base)]), 0);
    // 3x growth: the regression exit code, distinct from usage errors.
    assert_eq!(exit_code(&["check", &p(&cur), "--baseline", &p(&base)]), 1);
    // Missing --baseline and a missing file are usage/run errors.
    assert_eq!(exit_code(&["check", &p(&cur)]), 2);
    let ghost = dir.join("ghost.csv");
    assert_eq!(exit_code(&["check", &p(&cur), "--baseline", &p(&ghost)]), 2);
    std::fs::remove_dir_all(&dir).ok();
}
