//! The lab's headline guarantees, pinned as integration tests:
//!
//! 1. a run's `TrialRecord`s are identical at `workers = 1` and
//!    `workers = 8` (scheduling independence);
//! 2. two invocations with the same master seed are identical, and a
//!    different master seed diverges (seed reproducibility);
//! 3. the legacy-binary path (`cli::run`) and the engine path agree;
//! 4. JSONL persists losslessly and exports to consistent CSV.

use ale_lab::engine::{execute, RunSpec};
use ale_lab::registry;
use ale_lab::scenario::GridConfig;
use ale_lab::store;

fn quick_spec(workers: usize, master_seed: u64) -> RunSpec {
    RunSpec {
        master_seed,
        seeds: Some(3),
        workers,
        grid: GridConfig {
            quick: true,
            ..GridConfig::default()
        },
        ..RunSpec::default()
    }
}

#[test]
fn table1_records_are_worker_count_independent() {
    let scenario = registry::find("table1").expect("registered");
    let single = execute(scenario.as_ref(), &quick_spec(1, 7)).expect("run");
    let fleet = execute(scenario.as_ref(), &quick_spec(8, 7)).expect("run");
    assert_eq!(single.records, fleet.records);
    // The rendered report (the "aggregate rows" of the acceptance
    // criterion) must match too.
    assert_eq!(single.report, fleet.report);
}

#[test]
fn same_master_seed_reproduces_different_diverges() {
    let scenario = registry::find("table1").expect("registered");
    let a = execute(scenario.as_ref(), &quick_spec(4, 7)).expect("run");
    let b = execute(scenario.as_ref(), &quick_spec(4, 7)).expect("run");
    assert_eq!(a.records, b.records);
    let c = execute(scenario.as_ref(), &quick_spec(4, 8)).expect("run");
    assert_ne!(a.records, c.records);
    // Derived trial seeds are recorded, so divergence is visible per trial.
    assert_ne!(a.records[0].seed, c.records[0].seed);
}

#[test]
fn legacy_binary_path_equals_engine_path() {
    // The legacy `table1` binary is a wrapper over `cli::run(["run",
    // "table1", ...])`; drive that path and the engine directly with the
    // same spec and compare the aggregate rows.
    let args: Vec<String> = [
        "run",
        "table1",
        "--quick",
        "--seeds",
        "3",
        "--workers",
        "2",
        "--master-seed",
        "7",
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let cli_report = ale_lab::cli::run(&args).expect("cli run");
    let engine_report = execute(
        registry::find("table1").expect("registered").as_ref(),
        &quick_spec(2, 7),
    )
    .expect("run")
    .report;
    assert_eq!(cli_report, engine_report);
}

#[test]
fn store_roundtrip_jsonl_to_csv() {
    let scenario = registry::find("cautious").expect("registered");
    let dir = std::env::temp_dir().join(format!("ale-lab-determinism-{}", std::process::id()));
    let spec = RunSpec {
        out: Some(dir.clone()),
        ..quick_spec(4, 11)
    };
    let out = execute(scenario.as_ref(), &spec).expect("run");

    // JSONL → records, losslessly.
    let loaded = store::load_jsonl(&dir.join("trials.jsonl")).expect("load");
    assert_eq!(loaded, out.records);

    // Manifest describes the run.
    let manifest = store::load_manifest(&dir.join("manifest.json")).expect("manifest");
    assert_eq!(manifest.scenario, "cautious");
    assert_eq!(manifest.master_seed, 11);
    assert_eq!(manifest.grid.len(), out.summary.points.len());
    assert_eq!(manifest.shard, "0/1");

    // JSONL → CSV has one row per record plus a header, and the CSV on
    // disk (written by the engine) matches the converter's output.
    let csv = store::csv_from_jsonl(&dir.join("trials.jsonl")).expect("csv");
    assert_eq!(csv.lines().count(), out.records.len() + 1);
    let disk_csv = std::fs::read_to_string(dir.join("trials.csv")).expect("trials.csv");
    assert_eq!(csv, disk_csv);

    // Writing the same run again is byte-identical (resumable/comparable).
    let rerun = execute(scenario.as_ref(), &spec).expect("rerun");
    let reloaded = store::load_jsonl(&dir.join("trials.jsonl")).expect("reload");
    assert_eq!(reloaded, rerun.records);
    assert_eq!(rerun.records, out.records);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_store_records_the_shard_and_reuses_full_run_seeds() {
    let scenario = registry::find("cautious").expect("registered");
    let dir = std::env::temp_dir().join(format!("ale-lab-shard-{}", std::process::id()));
    let full = execute(scenario.as_ref(), &quick_spec(4, 11)).expect("full run");
    let spec = RunSpec {
        out: Some(dir.clone()),
        shard: (1, 2),
        ..quick_spec(4, 11)
    };
    let shard = execute(scenario.as_ref(), &spec).expect("sharded run");
    let manifest = store::load_manifest(&dir.join("manifest.json")).expect("manifest");
    assert_eq!(manifest.shard, "1/2");
    assert!(shard.records.len() < full.records.len());
    // Every sharded trial appears bit-identically in the full run.
    for r in &shard.records {
        assert!(full.records.contains(r), "missing {}/{}", r.point, r.seed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_trial_seeds_are_position_derived_not_worker_derived() {
    // The recorded seed of trial (point, index) must match the fleet's
    // derivation regardless of execution interleaving.
    let scenario = registry::find("cautious").expect("registered");
    let out = execute(scenario.as_ref(), &quick_spec(8, 42)).expect("run");
    let grid = scenario
        .grid(&GridConfig {
            quick: true,
            ..GridConfig::default()
        })
        .expect("grid");
    let mut idx = 0usize;
    for (pi, point) in grid.iter().enumerate() {
        for si in 0..3u64 {
            let expected = ale_lab::fleet::derive_seed(42, pi as u64, si);
            assert_eq!(out.records[idx].seed, expected, "point {}", point.label);
            idx += 1;
        }
    }
    assert_eq!(idx, out.records.len());
}
