//! End-to-end acceptance test for `ale-lab serve`: a real `ale-serve`
//! listener on an ephemeral port, driven over raw `TcpStream`s.
//!
//! Pins the two acceptance properties of the results service:
//!
//! * `/runs/{id}/summary` is **byte-identical** (modulo HTTP framing)
//!   to the stored `s/` rows of a completed `--quick` revocable run;
//! * `/runs/{id}/tail` on a killed-mid-sweep run returns exactly the
//!   journal's valid prefix, and after `run --resume` a
//!   cursor-continued tail reaches `"complete": true`.

use ale_lab::db::{scan_entries, AofDb, Db};
use ale_lab::json::{self, Value};
use ale_lab::serve::ServeApp;
use ale_lab::store::load_manifest;
use ale_serve::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn lab(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    ale_lab::cli::run(&args).expect("ale-lab command succeeds")
}

fn spawn_server(dirs: &[PathBuf]) -> ServerHandle {
    let app = Arc::new(ServeApp::new(dirs).expect("mount run dirs"));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral port");
    server
        .spawn(Arc::new(move |req| app.handle(req)))
        .expect("spawn server")
}

/// One raw HTTP request; returns (status, head, body) with chunked
/// transfer coding decoded.
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    stream.shutdown(Shutdown::Write).ok();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body split");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let mut body = raw[split + 4..].to_vec();
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        body = dechunk(&body);
    }
    (status, head, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, Vec<u8>) {
    request(addr, "GET", path)
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let (status, _, body) = get(addr, path);
    assert_eq!(status, 200, "GET {path}");
    json::parse(std::str::from_utf8(&body).expect("utf-8 body")).expect("valid JSON body")
}

fn dechunk(mut data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let nl = data
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk-size line");
        let size = usize::from_str_radix(std::str::from_utf8(&data[..nl]).unwrap().trim(), 16)
            .expect("hex chunk size");
        data = &data[nl + 2..];
        if size == 0 {
            break;
        }
        out.extend_from_slice(&data[..size]);
        data = &data[size + 2..];
    }
    out
}

fn arr(v: &Value) -> &[Value] {
    match v {
        Value::Arr(items) => items,
        other => panic!("expected array, got {}", other.render()),
    }
}

fn stored_values(dir: &Path, prefix: &[u8]) -> Vec<Vec<u8>> {
    let db = AofDb::open_read(&dir.join("trials.db")).expect("open store");
    db.iter_prefix(prefix).into_iter().map(|(_, v)| v).collect()
}

#[test]
fn served_views_match_the_store_byte_for_byte() {
    let root = std::env::temp_dir().join(format!("ale-lab-serve-accept-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let dir = root.join("q");
    lab(&[
        "run",
        "revocable",
        "--quick",
        "--quiet",
        "--seeds",
        "1",
        "--workers",
        "2",
        "--out",
        &dir.to_string_lossy(),
    ]);
    let manifest = load_manifest(&dir.join("manifest.json")).unwrap();
    let server = spawn_server(std::slice::from_ref(&dir));
    let addr = server.addr();

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    // The index reflects the manifest: one complete mounted run.
    let index = get_json(addr, "/runs");
    let runs = arr(index.get("runs").unwrap());
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].get("id").unwrap().as_str(), Some("q"));
    assert_eq!(runs[0].get("complete").unwrap().as_bool(), Some(true));
    assert_eq!(runs[0].get("missing").unwrap().as_u64(), Some(0));
    assert_eq!(
        runs[0].get("points").unwrap().as_u64(),
        Some(manifest.grid.len() as u64)
    );

    // The manifest route is the on-disk file, byte for byte.
    let (status, _, body) = get(addr, "/runs/q/manifest");
    assert_eq!(status, 200);
    assert_eq!(body, std::fs::read(dir.join("manifest.json")).unwrap());

    // The acceptance property: served summary rows are byte-identical
    // to the journaled `s/` values, modulo the JSON envelope.
    let (status, _, body) = get(addr, "/runs/q/summary");
    assert_eq!(status, 200);
    let envelope =
        b"{\"run\":\"q\",\"scenario\":\"revocable\",\"complete\":true,\"missing\":0,\"rows\":[";
    assert!(
        body.starts_with(envelope),
        "summary envelope: {}",
        String::from_utf8_lossy(&body[..envelope.len().min(body.len())])
    );
    assert!(body.ends_with(b"]}\n"));
    let served_rows = &body[envelope.len()..body.len() - 3];
    let expected_rows = stored_values(&dir, b"s/").join(&b","[..]);
    assert!(!expected_rows.is_empty());
    assert_eq!(served_rows, expected_rows.as_slice());

    // The space route and `describe --json` are the same renderer.
    let (status, _, body) = get(addr, "/runs/q/space");
    assert_eq!(status, 200);
    let described = lab(&["describe", "revocable", "--json"]) + "\n";
    assert_eq!(String::from_utf8_lossy(&body), described);

    // Trials stream as JSONL in key order, byte-identical to the store.
    let stored_trials = stored_values(&dir, b"t/");
    let expected_total: u64 = manifest.effective_counts().iter().sum();
    assert_eq!(stored_trials.len() as u64, expected_total);
    let (status, head, body) = get(addr, "/runs/q/trials");
    assert_eq!(status, 200);
    assert!(head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked"));
    let mut expected = Vec::new();
    for value in &stored_trials {
        expected.extend_from_slice(value);
        expected.push(b'\n');
    }
    assert_eq!(body, expected);

    // Point and seed filters narrow the prefix scan.
    let label = &manifest.grid[0];
    let (status, _, body) = get(addr, &format!("/runs/q/trials?point={label}"));
    assert_eq!(status, 200);
    assert_eq!(
        body.split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count() as u64,
        manifest.effective_counts()[0]
    );
    let (status, _, body) = get(addr, &format!("/runs/q/trials?point={label}&seed=0"));
    assert_eq!(status, 200);
    assert_eq!(
        body.split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count(),
        1
    );
    assert_eq!(get(addr, "/runs/q/trials?seed=0").0, 400);
    assert_eq!(get(addr, "/runs/q/trials?point=nope").0, 400);

    // A complete store tails in one shot: every `t/` record, cursor at
    // the end of the journal.
    let tail = get_json(addr, "/runs/q/tail?from=0");
    assert_eq!(tail.get("complete").unwrap().as_bool(), Some(true));
    assert_eq!(tail.get("resync").unwrap().as_bool(), Some(false));
    assert_eq!(
        arr(tail.get("records").unwrap()).len() as u64,
        expected_total
    );
    assert_eq!(
        tail.get("cursor").unwrap().as_u64().unwrap(),
        std::fs::metadata(dir.join("trials.db")).unwrap().len()
    );

    // Unknown paths 404, writes 405, and the telemetry bridge counts it
    // all.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/runs/zzz/summary").0, 404);
    assert_eq!(request(addr, "POST", "/runs").0, 405);
    let metrics = get_json(addr, "/metrics");
    let metrics = arr(metrics.get("metrics").unwrap());
    let by_name = |name: &str| {
        metrics
            .iter()
            .find(|m| m.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("metric {name} exported"))
    };
    assert!(
        by_name("serve_requests_total")
            .get("value")
            .unwrap()
            .as_u64()
            >= Some(10)
    );
    assert!(
        by_name("serve_response_bytes_total")
            .get("value")
            .unwrap()
            .as_u64()
            > Some(0)
    );
    assert!(
        by_name("serve_store_scan_micros")
            .get("count")
            .unwrap()
            .as_u64()
            > Some(0)
    );

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn tail_serves_the_valid_prefix_of_a_killed_run_and_follows_resume() {
    let root = std::env::temp_dir().join(format!("ale-lab-serve-tail-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let dir = root.join("t1");
    let p = dir.to_string_lossy().to_string();
    lab(&[
        "run",
        "diffusion",
        "--quick",
        "--quiet",
        "--seeds",
        "2",
        "--workers",
        "2",
        "--out",
        &p,
    ]);

    // Simulate a kill mid-sweep, exactly like the resume exit-code
    // test: tear the persisted tails, drop the derived views, and leave
    // the manifest unmarked-complete.
    for (name, chop) in [("trials.db", 9u64), ("trials.jsonl", 5u64)] {
        let path = dir.join(name);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - chop).unwrap();
    }
    std::fs::remove_file(dir.join("trials.csv")).unwrap();
    std::fs::remove_file(dir.join("summary.csv")).unwrap();
    let manifest_path = dir.join("manifest.json");
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    std::fs::write(
        &manifest_path,
        manifest.replace("\"complete\": true", "\"complete\": false"),
    )
    .unwrap();

    // What the journal's valid prefix actually holds right now.
    let torn = std::fs::read(dir.join("trials.db")).unwrap();
    let (entries, valid_len) = scan_entries(&torn);
    let torn_trials = entries.iter().filter(|e| e.key.starts_with(b"t/")).count();
    assert!(torn_trials > 0, "the torn journal still holds whole trials");

    let server = spawn_server(std::slice::from_ref(&dir));
    let addr = server.addr();

    // The tail of the killed run is exactly the valid framed prefix.
    let tail = get_json(addr, "/runs/t1/tail?from=0");
    assert_eq!(tail.get("complete").unwrap().as_bool(), Some(false));
    assert_eq!(tail.get("resync").unwrap().as_bool(), Some(false));
    assert_eq!(tail.get("cursor").unwrap().as_u64(), Some(valid_len as u64));
    assert_eq!(arr(tail.get("records").unwrap()).len(), torn_trials);
    assert!(tail.get("missing").unwrap().as_u64() >= Some(1));
    let cursor = tail.get("cursor").unwrap().as_u64().unwrap();

    // Incomplete stores are served, not refused: summary says so.
    let summary = get_json(addr, "/runs/t1/summary");
    assert_eq!(summary.get("complete").unwrap().as_bool(), Some(false));
    assert!(summary.get("missing").unwrap().as_u64() >= Some(1));

    // Finish the run out from under the live server.
    lab(&["run", "--resume", &p, "--quiet"]);

    // A cursor-continued tail reaches complete: true. Completion
    // compacts the journal, so the protocol allows the old cursor to be
    // answered with resync — in which case the client rescans from 0,
    // which must yield every trial of the finished run.
    let tail = get_json(addr, &format!("/runs/t1/tail?from={cursor}&wait=1"));
    assert_eq!(tail.get("complete").unwrap().as_bool(), Some(true));
    if tail.get("resync").unwrap().as_bool() == Some(true) {
        assert!(arr(tail.get("records").unwrap()).is_empty());
    }
    let manifest = load_manifest(&manifest_path).unwrap();
    let expected_total: u64 = manifest.effective_counts().iter().sum();
    let full = get_json(addr, "/runs/t1/tail?from=0");
    assert_eq!(full.get("complete").unwrap().as_bool(), Some(true));
    assert_eq!(full.get("missing").unwrap().as_u64(), Some(0));
    assert_eq!(
        arr(full.get("records").unwrap()).len() as u64,
        expected_total
    );

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
