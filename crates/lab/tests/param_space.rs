//! Grid-compatibility pin: the declarative parameter-space expansion must
//! reproduce the pre-redesign imperative grids **byte for byte** — same
//! points, same order — for every registered scenario, in both the default
//! and `--quick` configurations. Order is load-bearing: trial seeds derive
//! from a point's position in the full grid, so any reordering silently
//! changes every record of every stored run.
//!
//! The golden file was generated from the last pre-redesign `grid()`
//! implementations (PR 4) and is intentionally checked in verbatim.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p ale-lab --test
//! param_space` only when a grid change is *deliberate*.

use ale_lab::registry;
use ale_lab::scenario::GridConfig;

const GOLDEN: &str = include_str!("golden/grids.txt");

fn render_grids() -> String {
    let mut out = String::new();
    for quick in [false, true] {
        let cfg = GridConfig {
            quick,
            ..GridConfig::default()
        };
        for s in registry::all() {
            let grid = s
                .grid(&cfg)
                .unwrap_or_else(|e| panic!("{} (quick={quick}): {e}", s.name()));
            for p in &grid {
                let algo = p
                    .algorithm
                    .map_or_else(|| "-".to_string(), |a| a.to_string());
                let seeds = p.seeds.map_or_else(|| "-".to_string(), |v| v.to_string());
                out.push_str(&format!(
                    "{}|{}|{}|{}|{}|{}|{}|{}\n",
                    s.name(),
                    if quick { "quick" } else { "full" },
                    p.label,
                    p.family(),
                    algo,
                    p.knowledge,
                    p.n,
                    seeds,
                ));
            }
        }
    }
    out
}

#[test]
fn default_spaces_reproduce_the_pre_redesign_grids() {
    let rendered = render_grids();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/grids.txt");
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "parameter-space expansion diverged from the pre-redesign grids \
         (set UPDATE_GOLDEN=1 to regenerate if the change is deliberate)"
    );
}

#[test]
fn every_space_declares_consistent_axes_and_describes_itself() {
    for s in registry::all() {
        let space = s.space();
        let kinds = space
            .axis_kinds()
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        assert!(!kinds.is_empty(), "{}: no axes declared", s.name());
        let text = space.describe();
        for name in kinds.keys() {
            assert!(
                text.contains(&format!("--param {name}=")),
                "{}: describe misses axis '{name}'",
                s.name()
            );
        }
    }
}

/// A `--param`-overridden sweep shards and merges exactly like a
/// hard-coded one: the union of `--shard 0/2` and `--shard 1/2` run
/// directories is byte-identical to the unsharded run, and every shard
/// manifest records the same resolved space.
#[test]
fn param_overridden_grid_shards_and_merges_byte_identically() {
    use ale_lab::engine::{execute, RunSpec};
    use ale_lab::store;

    let base = std::env::temp_dir().join(format!("ale-lab-param-shard-{}", std::process::id()));
    let scenario = registry::find("diffusion").expect("registered");
    let grid = || GridConfig {
        quick: true,
        params: vec![("gamma".into(), vec!["0.15".into(), "0.05".into()])],
        ..GridConfig::default()
    };
    let run = |shard: (u64, u64), dir: &std::path::Path| {
        execute(
            scenario.as_ref(),
            &RunSpec {
                shard,
                grid: grid(),
                workers: 1,
                out: Some(dir.to_path_buf()),
                ..RunSpec::default()
            },
        )
        .expect("run")
    };
    let full_dir = base.join("full");
    let full = run((0, 1), &full_dir);
    // The overridden gammas exist in no scenario's hard-coded grid.
    assert!(full.records.iter().any(|r| r.point.ends_with("gamma=0.15")));
    assert_eq!(full.records.len(), 5 * 2);

    let shard_dirs = [base.join("s0"), base.join("s1")];
    for (i, dir) in shard_dirs.iter().enumerate() {
        run((i as u64, 2), dir);
        let m = store::load_manifest(&dir.join("manifest.json")).expect("manifest");
        assert_eq!(m.shard, format!("{i}/2"));
        assert!(
            m.space.contains(&"gamma=0.15,0.05".to_string()),
            "shard manifest must record the resolved space, got {:?}",
            m.space
        );
    }

    let merged = base.join("merged");
    let report = ale_lab::merge::merge_dirs(
        &[shard_dirs[0].clone(), shard_dirs[1].clone()],
        Some(&merged),
    )
    .expect("merge");
    assert!(report.contains("complete sweep"), "{report}");
    for f in ["trials.jsonl", "trials.csv", "summary.csv"] {
        assert_eq!(
            std::fs::read_to_string(full_dir.join(f)).unwrap(),
            std::fs::read_to_string(merged.join(f)).unwrap(),
            "{f} diverged"
        );
    }

    // A shard of a *different* resolved space refuses to merge.
    let other = base.join("other");
    execute(
        scenario.as_ref(),
        &RunSpec {
            shard: (1, 2),
            grid: GridConfig {
                quick: true,
                params: vec![("gamma".into(), vec!["0.5".into()])],
                ..GridConfig::default()
            },
            workers: 1,
            out: Some(other.clone()),
            ..RunSpec::default()
        },
    )
    .expect("run");
    let err = ale_lab::merge::merge_dirs(&[shard_dirs[0].clone(), other], None).unwrap_err();
    assert!(
        err.to_string().contains("resolved parameter space"),
        "space mismatch must be detected, got: {err}"
    );

    std::fs::remove_dir_all(&base).ok();
}
