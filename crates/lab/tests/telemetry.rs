//! End-to-end telemetry contracts:
//!
//! 1. `run --telemetry` emits a parseable JSONL stream with the pinned
//!    event schema (sweep span, one trial span per record, round-batch
//!    spans from the CONGEST engine);
//! 2. per-trial event subsequences are deterministic at any worker count
//!    (after stripping wall-clock attributes);
//! 3. the store output is byte-identical with telemetry on and off —
//!    telemetry is a pure side-channel.
//!
//! Telemetry has process-global state (one installed sink), so every
//! test serializes on one mutex.

use ale_congest::{Incoming, Network, NodeCtx, OutCtx, Process};
use ale_graph::Topology;
use ale_lab::engine::{execute, RunSpec};
use ale_lab::json::{self, ToJson, Value};
use ale_lab::params::{Axis, Block, ParamSpace};
use ale_lab::scenario::{GridPoint, LabError, Scenario, TrialFn, TrialRecord};
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// A few rounds of all-ports gossip, then halt: enough to exercise the
/// engine's trace hook without slowing the suite down.
#[derive(Debug, Clone)]
struct Pulse {
    value: u64,
    rounds_left: u64,
}

impl Process for Pulse {
    type Msg = u64;
    type Output = u64;

    fn round(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<u64>],
        out: &mut OutCtx<'_, u64>,
    ) {
        for m in inbox {
            self.value = self.value.wrapping_add(m.msg);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.value);
        }
    }

    fn is_halted(&self) -> bool {
        self.rounds_left == 0
    }

    fn output(&self) -> u64 {
        self.value
    }
}

/// Two cycle sizes, engine-backed trials.
struct Tiny;

impl Scenario for Tiny {
    fn name(&self) -> &'static str {
        "tiny-telemetry"
    }
    fn description(&self) -> &'static str {
        "telemetry test scenario"
    }
    fn default_seeds(&self, _quick: bool) -> u64 {
        3
    }
    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "grid",
            vec![Axis::ints("n", [8, 12])],
            |ctx| {
                let n = ctx.int("n")? as usize;
                Ok(Some(
                    GridPoint::new(format!("cycle{n}")).on(Topology::Cycle { n }),
                ))
            },
        )])
    }
    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let point = point.clone();
        let n = point.n;
        Ok(Box::new(move |seed| {
            let graph = Topology::Cycle { n }.build(1)?;
            let mut net = Network::from_fn(&graph, seed, 64, |_d, _r| Pulse {
                value: seed,
                rounds_left: 4,
            });
            net.run_to_halt(64)?;
            let mut r = TrialRecord::new("tiny-telemetry", &point, seed);
            r.rounds = net.metrics().rounds;
            r.congest_rounds = net.metrics().congest_rounds;
            r.messages = net.metrics().messages;
            r.bits = net.metrics().bits;
            r.ok = true;
            Ok(r)
        }))
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ale-lab-telemetry-{}-{name}", std::process::id()))
}

fn spec(workers: usize, telemetry: Option<PathBuf>, out: Option<PathBuf>) -> RunSpec {
    RunSpec {
        workers,
        telemetry,
        out,
        ..RunSpec::default()
    }
}

fn parse_lines(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("telemetry file");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("unparseable line {l:?}: {e}")))
        .collect()
}

fn str_of<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Value::as_str)
}

#[test]
fn stream_matches_the_pinned_schema() {
    let _guard = SERIAL.lock().unwrap();
    let path = tmp("schema.jsonl");
    let out = execute(&Tiny, &spec(2, Some(path.clone()), None)).unwrap();
    let events = parse_lines(&path);
    assert!(!events.is_empty());
    for ev in &events {
        let kind = str_of(ev, "ev").expect("ev key");
        assert!(str_of(ev, "name").is_some(), "name key in {ev:?}");
        assert!(ev.get("ts_us").and_then(Value::as_u64).is_some());
        assert!(ev.get("attrs").is_some());
        match kind {
            "span" => {
                assert!(ev.get("id").and_then(Value::as_u64).is_some());
                assert!(ev.get("wall_us").and_then(Value::as_u64).is_some());
            }
            "counter" => assert!(ev.get("value").and_then(Value::as_u64).is_some()),
            "hist" => assert!(matches!(ev.get("buckets"), Some(Value::Arr(_)))),
            other => panic!("unknown ev kind {other}"),
        }
    }
    let sweeps: Vec<&Value> = events
        .iter()
        .filter(|e| str_of(e, "name") == Some("sweep"))
        .collect();
    assert_eq!(sweeps.len(), 1);
    assert_eq!(
        sweeps[0]
            .get("attrs")
            .and_then(|a| a.get("scenario"))
            .and_then(Value::as_str),
        Some("tiny-telemetry")
    );
    let trials = events
        .iter()
        .filter(|e| str_of(e, "name") == Some("trial"))
        .count();
    assert_eq!(trials, out.records.len(), "one trial span per record");
    assert!(
        events
            .iter()
            .any(|e| str_of(e, "name") == Some("round-batch")),
        "engine rounds produce round-batch spans"
    );
    assert!(
        events
            .iter()
            .any(|e| str_of(e, "name") == Some("trial_wall_us")),
        "wall-clock histogram snapshot present"
    );
    // Every record carries its timing side-fields in memory...
    assert!(out.records.iter().all(|r| r.wall_ms.is_some()));
    // ...but not in its JSON (store stays byte-identical).
    assert!(!out.records[0].to_json().render().contains("wall_ms"));
    std::fs::remove_file(&path).ok();
}

/// The deterministic shadow of an event: name plus attrs, with
/// wall-clock-derived attributes stripped.
fn shadow(ev: &Value) -> String {
    let name = str_of(ev, "name").unwrap_or("?");
    let mut attrs: Vec<String> = Vec::new();
    if let Some(Value::Obj(pairs)) = ev.get("attrs") {
        for (k, v) in pairs {
            if k == "msgs_per_sec" || k == "rounds_per_sec" {
                continue;
            }
            attrs.push(format!("{k}={}", v.render()));
        }
    }
    format!("{name}({})", attrs.join(","))
}

#[test]
fn per_trial_subsequences_are_worker_count_invariant() {
    let _guard = SERIAL.lock().unwrap();
    let mut baseline: Option<(Vec<Vec<String>>, Vec<String>)> = None;
    for workers in 1..=4usize {
        let path = tmp(&format!("det-{workers}.jsonl"));
        execute(&Tiny, &spec(workers, Some(path.clone()), None)).unwrap();
        let events = parse_lines(&path);
        // Engine events, grouped by the trial task index they carry.
        let mut per_trial: Vec<Vec<String>> = Vec::new();
        for ev in &events {
            let name = str_of(ev, "name").unwrap_or("?");
            if name != "round-batch" && name != "engine-rounds" {
                continue;
            }
            let trial = ev
                .get("attrs")
                .and_then(|a| a.get("trial"))
                .and_then(Value::as_u64)
                .expect("engine events carry the trial index") as usize;
            per_trial.resize_with(per_trial.len().max(trial + 1), Vec::new);
            per_trial[trial].push(shadow(ev));
        }
        // Post-merge trial spans arrive in task order regardless of
        // scheduling, so the flat sequence must match too.
        let trial_spans: Vec<String> = events
            .iter()
            .filter(|e| str_of(e, "name") == Some("trial"))
            .map(shadow)
            .collect();
        match &baseline {
            None => baseline = Some((per_trial, trial_spans)),
            Some((base_batches, base_trials)) => {
                assert_eq!(base_batches, &per_trial, "workers = {workers}");
                assert_eq!(base_trials, &trial_spans, "workers = {workers}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn telemetry_never_perturbs_the_store() {
    let _guard = SERIAL.lock().unwrap();
    let base = tmp("store");
    let plain = base.join("plain");
    let traced = base.join("traced");
    execute(&Tiny, &spec(2, None, Some(plain.clone()))).unwrap();
    execute(
        &Tiny,
        &spec(2, Some(base.join("t.jsonl")), Some(traced.clone())),
    )
    .unwrap();
    for file in ["trials.jsonl", "trials.csv", "summary.csv"] {
        let a = std::fs::read(plain.join(file)).unwrap();
        let b = std::fs::read(traced.join(file)).unwrap();
        assert_eq!(a, b, "{file} must be byte-identical");
    }
    // The traced run also copied its stream next to the store.
    assert!(traced.join("telemetry.jsonl").exists());
    assert!(!plain.join("telemetry.jsonl").exists());
    std::fs::remove_dir_all(&base).ok();
}
