//! Log–log regression for scaling-shape checks.
//!
//! The paper's claims are asymptotic (`Õ(√(n·t_mix/Φ))` messages, etc.),
//! so the harness validates *exponents*: fit `log y = a·log x + b` over a
//! parameter sweep and compare the slope `a` against the predicted power,
//! with a tolerance absorbing the polylog factors (EXPERIMENTS.md states
//! the tolerance next to every fit).

/// Result of an ordinary-least-squares fit on `(ln x, ln y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Fitted exponent (slope in log–log space).
    pub exponent: f64,
    /// Fitted multiplier `e^b`.
    pub coefficient: f64,
    /// Coefficient of determination in log–log space.
    pub r_squared: f64,
}

/// Fits `y ≈ coefficient · x^exponent` over strictly positive samples.
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is not
/// strictly positive — both are harness bugs, not data conditions.
///
/// # Examples
///
/// ```
/// use ale_lab::fit::power_fit;
/// let pts: Vec<(f64, f64)> = (1..=6).map(|i| {
///     let x = (1 << i) as f64;
///     (x, 3.0 * x * x)
/// }).collect();
/// let fit = power_fit(&pts);
/// assert!((fit.exponent - 2.0).abs() < 1e-9);
/// assert!((fit.coefficient - 3.0).abs() < 1e-6);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn power_fit(points: &[(f64, f64)]) -> PowerFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "power fits need strictly positive data"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    // Relative degeneracy test: all-equal x's cancel to rounding noise.
    let slope = if denom.abs() <= 1e-12 * (n * sxx).abs().max(1e-300) {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let intercept = (sy - slope * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-30 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    PowerFit {
        exponent: slope,
        coefficient: intercept.exp(),
        r_squared,
    }
}

/// Convenience check: is the fitted exponent within `tol` of `expected`?
pub fn exponent_close(fit: &PowerFit, expected: f64, tol: f64) -> bool {
    (fit.exponent - expected).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_law() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 5.0 * i as f64)).collect();
        let f = power_fit(&pts);
        assert!((f.exponent - 1.0).abs() < 1e-9);
        assert!((f.coefficient - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fits_square_root_law() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = (i * i * 100) as f64;
                (x, 2.0 * x.sqrt())
            })
            .collect();
        let f = power_fit(&pts);
        assert!((f.exponent - 0.5).abs() < 1e-9);
        assert!(exponent_close(&f, 0.5, 0.01));
        assert!(!exponent_close(&f, 1.0, 0.1));
    }

    #[test]
    fn noisy_data_has_lower_r2_but_close_slope() {
        // y = x^1.5 with multiplicative "noise" alternating ±20%.
        let pts: Vec<(f64, f64)> = (1..=12)
            .map(|i| {
                let x = (1 << i) as f64;
                let noise = if i % 2 == 0 { 1.2 } else { 0.8 };
                (x, x.powf(1.5) * noise)
            })
            .collect();
        let f = power_fit(&pts);
        assert!((f.exponent - 1.5).abs() < 0.05, "exponent {}", f.exponent);
        assert!(f.r_squared > 0.98);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        power_fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn rejects_nonpositive() {
        power_fit(&[(1.0, 1.0), (0.0, 2.0)]);
    }

    #[test]
    fn constant_data_degenerate_slope() {
        let f = power_fit(&[(2.0, 7.0), (2.0, 7.0), (2.0, 7.0)]);
        assert_eq!(f.exponent, 0.0);
    }
}
