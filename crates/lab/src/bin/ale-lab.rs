//! The `ale-lab` CLI: `list | run <scenario> | export <jsonl>`.
//!
//! See `ale-lab help` (or [`ale_lab::cli::USAGE`]) for options and
//! examples.

fn main() {
    std::process::exit(ale_lab::cli::main_from_env());
}
