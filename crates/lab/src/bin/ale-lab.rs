//! The `ale-lab` CLI: `list | describe | run <scenario> | export |
//! merge | check | report <telemetry.jsonl> | bench`.
//!
//! See `ale-lab help` (or [`ale_lab::cli::USAGE`]) for options and
//! examples.

fn main() {
    std::process::exit(ale_lab::cli::main_from_env());
}
