//! The scenario model: declarative experiment specs the fleet runner
//! executes.
//!
//! A [`Scenario`] contributes three things:
//!
//! * a **parameter space** — typed axes (`Topology × Algorithm ×
//!   knowledge regime × n × scenario knobs`) declared as a
//!   [`ParamSpace`], which the engine expands
//!   generically into [`GridPoint`]s (and which `--param key=v1,v2`
//!   overrides from the CLI, no code required);
//! * a **binder** — per grid point, a one-time preparation step (build the
//!   graph, compute its properties) returning the per-seed trial closure;
//!   axis values arrive typed through [`GridPoint::view`];
//! * a **summary** — the human-facing report built from the streamed
//!   aggregates, reproducing what the legacy `fig_*`/`table1` binaries
//!   printed.
//!
//! Everything a trial returns is a flat, serializable [`TrialRecord`], so
//! runs persist to JSONL, export to CSV, and compare across PRs.

use crate::json::{ToJson, Value};
use crate::params::{AxisValue, ParamSpace};
use ale_core::CoreError;
use ale_graph::{GraphError, Topology};
use std::fmt;

use crate::runners::Algorithm;

/// Lab-level errors.
#[derive(Debug)]
pub enum LabError {
    /// Graph construction/analysis failed.
    Graph(GraphError),
    /// Protocol execution failed.
    Core(CoreError),
    /// Filesystem problems (message includes the path).
    Io(String),
    /// Malformed CLI arguments or scenario parameters.
    BadArgs(String),
    /// `run`/`describe` named a scenario the registry does not have.
    UnknownScenario(String),
    /// Persistence layer found a malformed record.
    BadRecord(String),
    /// `check` found cost regressions beyond tolerance (the payload is the
    /// rendered comparison report). Maps to a distinct exit code so CI can
    /// tell "run failed" from "run regressed".
    Regression(String),
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Graph(e) => write!(f, "graph error: {e}"),
            LabError::Core(e) => write!(f, "protocol error: {e}"),
            LabError::Io(msg) => write!(f, "io error: {msg}"),
            LabError::BadArgs(msg) => write!(f, "bad arguments: {msg}"),
            LabError::UnknownScenario(name) => {
                write!(f, "unknown scenario '{name}' (see `ale-lab list`)")
            }
            LabError::BadRecord(msg) => write!(f, "bad record: {msg}"),
            LabError::Regression(msg) => write!(f, "regression detected:\n{msg}"),
        }
    }
}

impl std::error::Error for LabError {}

impl From<GraphError> for LabError {
    fn from(e: GraphError) -> Self {
        LabError::Graph(e)
    }
}

impl From<CoreError> for LabError {
    fn from(e: CoreError) -> Self {
        LabError::Core(e)
    }
}

impl From<ale_congest::CongestError> for LabError {
    fn from(e: ale_congest::CongestError) -> Self {
        LabError::Core(CoreError::from(e))
    }
}

impl From<std::io::Error> for LabError {
    fn from(e: std::io::Error) -> Self {
        LabError::Io(e.to_string())
    }
}

/// What the algorithm is allowed to know about the network — the paper's
/// experimental axis (Table 1 rows differ exactly here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knowledge {
    /// Full bundle: `n`, `t_mix`, `Φ` (Theorem 1's regime).
    Full,
    /// Size only (Kutten-style baselines).
    SizeOnly,
    /// Nothing (the revocable protocol's regime, Definition 2).
    Blind,
}

impl fmt::Display for Knowledge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Knowledge::Full => "full",
            Knowledge::SizeOnly => "size-only",
            Knowledge::Blind => "blind",
        };
        write!(f, "{s}")
    }
}

/// One cell of a scenario's parameter grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Stable, unique-within-scenario label (used as the result-store key
    /// and the seed stream discriminator must NOT depend on it — streams
    /// are positional — but resumption matching does).
    pub label: String,
    /// The topology, when the point runs on a graph.
    pub topology: Option<Topology>,
    /// The algorithm, for algorithm-comparison scenarios.
    pub algorithm: Option<Algorithm>,
    /// Knowledge regime of the algorithm at this point.
    pub knowledge: Knowledge,
    /// Network size (0 when not applicable).
    pub n: usize,
    /// Scenario-specific numeric knobs (x, gamma, k, …). Numeric axis
    /// values are mirrored here by the expansion so summaries can read
    /// them by name; point builders append derived knobs with
    /// [`GridPoint::with`].
    pub params: Vec<(String, f64)>,
    /// Typed axis values this point was expanded from (set by
    /// [`ParamSpace::expand`](crate::params::ParamSpace::expand); empty
    /// for hand-built points). Read them through [`GridPoint::view`].
    pub values: Vec<(&'static str, AxisValue)>,
    /// Per-point seed-count override (`None` → the run's global count).
    /// Monte-Carlo points want thousands of cheap trials while protocol
    /// points want tens of expensive ones — in the same run.
    pub seeds: Option<u64>,
}

impl GridPoint {
    /// Creates a bare point.
    pub fn new(label: impl Into<String>) -> Self {
        GridPoint {
            label: label.into(),
            topology: None,
            algorithm: None,
            knowledge: Knowledge::Full,
            n: 0,
            params: Vec::new(),
            values: Vec::new(),
            seeds: None,
        }
    }

    /// Typed accessor over the point's axis values and derived knobs —
    /// what `bind` implementations use instead of string-digging through
    /// [`GridPoint::params`].
    pub fn view(&self) -> PointView<'_> {
        PointView { point: self }
    }

    /// Sets the topology (and `n` from it).
    pub fn on(mut self, topology: Topology) -> Self {
        self.n = topology.node_count();
        self.topology = Some(topology);
        self
    }

    /// Sets the algorithm.
    pub fn algo(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets the knowledge regime.
    pub fn knowing(mut self, knowledge: Knowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Adds a numeric knob.
    pub fn with(mut self, key: impl Into<String>, value: f64) -> Self {
        self.params.push((key.into(), value));
        self
    }

    /// Overrides the seed count for this point.
    pub fn seeds(mut self, seeds: u64) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Reads a knob set by [`GridPoint::with`].
    pub fn param(&self, key: &str) -> Option<f64> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Topology family name, `"-"` when graph-free.
    pub fn family(&self) -> String {
        self.topology
            .as_ref()
            .map_or_else(|| "-".to_string(), |t| t.family().to_string())
    }
}

/// A typed view over one grid point, handed to `bind`: axis values by
/// name and kind, derived knobs by name. Every accessor fails with
/// [`LabError::BadArgs`] naming the missing field instead of panicking on
/// a format string mismatch.
pub struct PointView<'a> {
    point: &'a GridPoint,
}

impl PointView<'_> {
    fn missing(&self, what: &str, name: &str) -> LabError {
        LabError::BadArgs(format!(
            "grid point '{}' carries no {what} '{name}'",
            self.point.label
        ))
    }

    /// The point's topology.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] for graph-free points.
    pub fn topology(&self) -> Result<Topology, LabError> {
        self.point
            .topology
            .ok_or_else(|| self.missing("value", "topology"))
    }

    /// The point's algorithm.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] for points without an algorithm axis.
    pub fn algorithm(&self) -> Result<Algorithm, LabError> {
        self.point
            .algorithm
            .ok_or_else(|| self.missing("value", "algorithm"))
    }

    /// The raw value of an axis, if the expansion bound one.
    pub fn value(&self, name: &str) -> Option<AxisValue> {
        self.point
            .values
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    /// An int axis value.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or differently
    /// kinded.
    pub fn int(&self, name: &str) -> Result<u64, LabError> {
        match self.value(name) {
            Some(AxisValue::Int(v)) => Ok(v),
            _ => Err(self.missing("int axis", name)),
        }
    }

    /// A float axis value.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or differently
    /// kinded.
    pub fn float(&self, name: &str) -> Result<f64, LabError> {
        match self.value(name) {
            Some(AxisValue::Float(v)) => Ok(v),
            _ => Err(self.missing("float axis", name)),
        }
    }

    /// The seed this point builds its (random) topology with: the
    /// engine-level `graph-seed` pseudo-axis when the sweep binds one
    /// (`--param graph-seed=s1,s2` multiplies the grid per seed), else
    /// `default` — each scenario's historical fixed constant, keeping
    /// default expansions byte-identical.
    pub fn graph_seed(&self, default: u64) -> u64 {
        match self.value("graph-seed") {
            Some(AxisValue::Int(v)) => v,
            _ => default,
        }
    }

    /// A numeric knob — mirrored axis values and builder-derived
    /// parameters alike (see [`GridPoint::params`]).
    pub fn knob(&self, name: &str) -> Option<f64> {
        self.point.param(name)
    }

    /// [`PointView::knob`], required.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the knob is absent.
    pub fn require_knob(&self, name: &str) -> Result<f64, LabError> {
        self.knob(name).ok_or_else(|| self.missing("knob", name))
    }
}

/// One trial's complete, serializable outcome.
///
/// Equality and the JSON form deliberately exclude the wall-clock
/// side-channel ([`TrialRecord::wall_ms`] / [`TrialRecord::msgs_per_sec`]):
/// those depend on the machine and the moment, while everything else is
/// seed-deterministic. Keeping them out preserves the store's
/// byte-identical guarantee and the determinism tests that pin it.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Scenario name.
    pub scenario: String,
    /// Grid-point label.
    pub point: String,
    /// Topology family (`"-"` when graph-free).
    pub family: String,
    /// Algorithm display name (`"-"` when not an algorithm comparison).
    pub algorithm: String,
    /// Network size (0 when not applicable).
    pub n: u64,
    /// The derived trial seed actually used.
    pub seed: u64,
    /// Simulator rounds.
    pub rounds: u64,
    /// CONGEST-charged rounds.
    pub congest_rounds: u64,
    /// Point-to-point messages.
    pub messages: u64,
    /// Payload bits.
    pub bits: u64,
    /// Leaders elected (0 when not an election).
    pub leaders: u64,
    /// Trial-level success flag (exactly one leader, lemma satisfied, …).
    pub ok: bool,
    /// Scenario-specific numeric outputs.
    pub extra: Vec<(String, f64)>,
    /// Wall-clock time the trial took, in milliseconds. Telemetry
    /// side-channel: not serialized, not compared (see the type docs).
    pub wall_ms: Option<f64>,
    /// Messages per wall-clock second. Telemetry side-channel: not
    /// serialized, not compared.
    pub msgs_per_sec: Option<f64>,
}

impl PartialEq for TrialRecord {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario
            && self.point == other.point
            && self.family == other.family
            && self.algorithm == other.algorithm
            && self.n == other.n
            && self.seed == other.seed
            && self.rounds == other.rounds
            && self.congest_rounds == other.congest_rounds
            && self.messages == other.messages
            && self.bits == other.bits
            && self.leaders == other.leaders
            && self.ok == other.ok
            && self.extra == other.extra
    }
}

impl TrialRecord {
    /// Creates a zeroed record tagged with its position in the run.
    pub fn new(scenario: &str, point: &GridPoint, seed: u64) -> Self {
        TrialRecord {
            scenario: scenario.to_string(),
            point: point.label.clone(),
            family: point.family(),
            algorithm: point
                .algorithm
                .map_or_else(|| "-".to_string(), |a| a.to_string()),
            n: point.n as u64,
            seed,
            rounds: 0,
            congest_rounds: 0,
            messages: 0,
            bits: 0,
            leaders: 0,
            ok: false,
            extra: Vec::new(),
            wall_ms: None,
            msgs_per_sec: None,
        }
    }

    /// Copies the simulator cost counters out of a metrics bundle.
    pub fn absorb_metrics(&mut self, m: &ale_congest::Metrics) {
        self.rounds = m.rounds;
        self.congest_rounds = m.congest_rounds;
        self.messages = m.messages;
        self.bits = m.bits;
    }

    /// Appends a scenario-specific numeric output.
    pub fn push_extra(&mut self, key: impl Into<String>, value: f64) {
        self.extra.push((key.into(), value));
    }

    /// Reads any metric by name — the core counters or an extra.
    pub fn metric(&self, name: &str) -> Option<f64> {
        match name {
            "rounds" => Some(self.rounds as f64),
            "congest_rounds" => Some(self.congest_rounds as f64),
            "messages" => Some(self.messages as f64),
            "bits" => Some(self.bits as f64),
            "leaders" => Some(self.leaders as f64),
            "ok" => Some(if self.ok { 1.0 } else { 0.0 }),
            _ => self
                .extra
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .filter(|v| v.is_finite()),
        }
    }
}

impl ToJson for TrialRecord {
    fn to_json(&self) -> Value {
        Value::obj([
            ("scenario".to_string(), Value::Str(self.scenario.clone())),
            ("point".to_string(), Value::Str(self.point.clone())),
            ("family".to_string(), Value::Str(self.family.clone())),
            ("algorithm".to_string(), Value::Str(self.algorithm.clone())),
            ("n".to_string(), Value::UInt(self.n)),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("rounds".to_string(), Value::UInt(self.rounds)),
            (
                "congest_rounds".to_string(),
                Value::UInt(self.congest_rounds),
            ),
            ("messages".to_string(), Value::UInt(self.messages)),
            ("bits".to_string(), Value::UInt(self.bits)),
            ("leaders".to_string(), Value::UInt(self.leaders)),
            ("ok".to_string(), Value::Bool(self.ok)),
            (
                "extra".to_string(),
                Value::obj(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

impl TrialRecord {
    /// Parses a record back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`LabError::BadRecord`] when required fields are missing or typed
    /// wrong.
    pub fn from_json(v: &Value) -> Result<TrialRecord, LabError> {
        let str_field = |k: &str| -> Result<String, LabError> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| LabError::BadRecord(format!("missing string field '{k}'")))
        };
        let u64_field = |k: &str| -> Result<u64, LabError> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| LabError::BadRecord(format!("missing u64 field '{k}'")))
        };
        let extra = match v.get("extra") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|f| (k.clone(), f))
                        // Non-finite extras render as null; resurrect as NaN.
                        .or_else(|| matches!(val, Value::Null).then(|| (k.clone(), f64::NAN)))
                        .ok_or_else(|| LabError::BadRecord(format!("non-numeric extra '{k}'")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err(LabError::BadRecord("'extra' is not an object".into())),
        };
        Ok(TrialRecord {
            scenario: str_field("scenario")?,
            point: str_field("point")?,
            family: str_field("family")?,
            algorithm: str_field("algorithm")?,
            n: u64_field("n")?,
            seed: u64_field("seed")?,
            rounds: u64_field("rounds")?,
            congest_rounds: u64_field("congest_rounds")?,
            messages: u64_field("messages")?,
            bits: u64_field("bits")?,
            leaders: u64_field("leaders")?,
            ok: v
                .get("ok")
                .and_then(Value::as_bool)
                .ok_or_else(|| LabError::BadRecord("missing bool field 'ok'".into()))?,
            extra,
            wall_ms: None,
            msgs_per_sec: None,
        })
    }
}

/// Grid-shaping inputs from the CLI.
#[derive(Debug, Clone, Default)]
pub struct GridConfig {
    /// Shrink the grid/seed counts for smoke runs.
    pub quick: bool,
    /// `--n` override — sugar for `--param n=…` (engages the scenario's
    /// size ladder when one is declared).
    pub ns: Vec<usize>,
    /// `--topo` override — sugar for `--param topo=…`.
    pub topologies: Vec<Topology>,
    /// Raw `--param key=v1,v2` overrides; validated against the declared
    /// [`ParamSpace`] at expansion time (unknown key / unparseable value
    /// → [`LabError::BadArgs`], exit code 2).
    pub params: Vec<(String, Vec<String>)>,
}

/// The per-seed trial closure a scenario binds for one grid point.
pub type TrialFn = Box<dyn Fn(u64) -> Result<TrialRecord, LabError> + Send + Sync>;

/// A registered experiment.
pub trait Scenario: Sync {
    /// Registry key (also the CLI name).
    fn name(&self) -> &'static str;

    /// One-line description for `ale-lab list`.
    fn description(&self) -> &'static str;

    /// Default seeds per grid point.
    fn default_seeds(&self, quick: bool) -> u64;

    /// Declares the scenario's parameter space: the typed axes it sweeps
    /// and how each combination becomes a [`GridPoint`]. The engine (and
    /// `--param`) does the rest — see [`crate::params`].
    fn space(&self) -> ParamSpace;

    /// Expands the declared space into the concrete grid — a convenience
    /// over [`ParamSpace::expand`] for callers that don't need the
    /// resolved-space record.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when CLI overrides don't fit the declared
    /// space.
    fn grid(&self, cfg: &GridConfig) -> Result<Vec<GridPoint>, LabError> {
        Ok(self.space().expand(cfg)?.points)
    }

    /// Performs the one-time per-point preparation (graph build, property
    /// computation) and returns the per-seed trial closure.
    ///
    /// # Errors
    ///
    /// Propagates preparation failures.
    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError>;

    /// Renders the scenario's report from the aggregated run. The default
    /// is the generic cost table; scenarios override it to reproduce their
    /// legacy figure/table output.
    fn summarize(&self, run: &crate::agg::RunSummary) -> String {
        run.generic_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_point_builder() {
        let p = GridPoint::new("complete/n=16/this-work")
            .on(Topology::Complete { n: 16 })
            .algo(Algorithm::ThisWork)
            .knowing(Knowledge::Full)
            .with("x", 4.0)
            .seeds(7);
        assert_eq!(p.n, 16);
        assert_eq!(p.family(), "complete");
        assert_eq!(p.param("x"), Some(4.0));
        assert_eq!(p.param("y"), None);
        assert_eq!(p.seeds, Some(7));
    }

    #[test]
    fn record_json_roundtrip() {
        let point = GridPoint::new("cell").on(Topology::Cycle { n: 8 });
        let mut r = TrialRecord::new("table1", &point, u64::MAX - 3);
        r.messages = 123;
        r.bits = 4567;
        r.rounds = 12;
        r.congest_rounds = 14;
        r.leaders = 1;
        r.ok = true;
        r.push_extra("territory", 42.0);
        r.push_extra("ratio", 0.75);
        let v = r.to_json();
        let back = TrialRecord::from_json(&v).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.metric("messages"), Some(123.0));
        assert_eq!(back.metric("territory"), Some(42.0));
        assert_eq!(back.metric("ok"), Some(1.0));
        assert_eq!(back.metric("missing"), None);
    }

    #[test]
    fn from_json_rejects_malformed() {
        let v = crate::json::parse(r#"{"scenario": "x"}"#).unwrap();
        assert!(matches!(
            TrialRecord::from_json(&v),
            Err(LabError::BadRecord(_))
        ));
    }
}
