//! Regression gating: compare a run's `summary.csv` against a stored
//! baseline and fail when mean costs regress beyond a tolerance.
//!
//! `ale-lab check <summary.csv> --baseline <baseline.csv>` is the CI gate:
//! it reads the per-(point, metric) streaming statistics both files carry,
//! compares the means of the cost metrics (`rounds`, `congest_rounds`,
//! `messages`, `bits` by default), and returns
//! [`LabError::Regression`] — a distinct non-zero exit — when any current
//! mean exceeds `baseline · (1 + tolerance)`. Points present in only one
//! file are skipped (filtered/sharded runs legitimately cover subsets),
//! but the report counts them so a silently shrunken run is visible.
//!
//! Either side may also be a **run directory**: directories are served
//! from the durable keyed store (`trials.db` summary rows via
//! [`crate::store::load_summary_rows`]) instead of re-parsing CSV,
//! falling back to the directory's `summary.csv` for pre-store runs.
//! Incomplete (crashed) stores are refused with a `run --resume` hint.
//!
//! The same subcommand also gates memory benchmarks: when both inputs
//! are `BENCH_memory.json` files (the `ale-lab bench` memory suite),
//! the per-case `bytes_per_node` figures are compared under the tighter
//! [`DEFAULT_MEMORY_TOLERANCE`] instead of the summary-CSV path.

use crate::json::Value;
use crate::scenario::LabError;
use crate::table::Table;
use std::collections::BTreeMap;
use std::path::Path;

/// Default relative tolerance: a mean may grow by 25% before failing.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default relative tolerance for memory-suite `bytes_per_node`: RSS per
/// node may grow by 10% before failing.
pub const DEFAULT_MEMORY_TOLERANCE: f64 = 0.10;

/// Absolute slack added on top of the relative band, so near-zero
/// baselines don't fail on floating-point noise.
const ABS_SLACK: f64 = 1e-9;

/// The cost metrics gated by default.
pub const DEFAULT_METRICS: [&str; 4] = ["rounds", "congest_rounds", "messages", "bits"];

/// Options for [`check_files`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Relative tolerance on mean growth.
    pub tolerance: f64,
    /// Relative tolerance on memory-suite `bytes_per_node` growth.
    pub memory_tolerance: f64,
    /// Metrics to gate (empty → [`DEFAULT_METRICS`]).
    pub metrics: Vec<String>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            tolerance: DEFAULT_TOLERANCE,
            memory_tolerance: DEFAULT_MEMORY_TOLERANCE,
            metrics: Vec::new(),
        }
    }
}

/// One `(point, metric)` row of a summary CSV.
#[derive(Debug, Clone, PartialEq)]
struct SummaryRow {
    mean: f64,
    count: u64,
}

/// Splits one CSV line produced by [`Table::to_csv`] (double-quote
/// escaping, no embedded newlines).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parses a `summary.csv` into `(point, metric) → (mean, count)`.
fn parse_summary(
    text: &str,
    source: &str,
) -> Result<BTreeMap<(String, String), SummaryRow>, LabError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| LabError::BadRecord(format!("{source}: empty summary")))?;
    let cols = split_csv_line(header);
    let col = |name: &str| -> Result<usize, LabError> {
        cols.iter().position(|c| c == name).ok_or_else(|| {
            LabError::BadRecord(format!("{source}: summary lacks a '{name}' column"))
        })
    };
    let (pi, mi, meani, counti) = (col("point")?, col("metric")?, col("mean")?, col("count")?);
    let mut rows = BTreeMap::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(line);
        let need = pi.max(mi).max(meani).max(counti);
        if fields.len() <= need {
            return Err(LabError::BadRecord(format!(
                "{source}: line {}: expected at least {} columns, got {}",
                lineno + 2,
                need + 1,
                fields.len()
            )));
        }
        let mean: f64 = fields[meani].parse().map_err(|_| {
            LabError::BadRecord(format!(
                "{source}: line {}: non-numeric mean '{}'",
                lineno + 2,
                fields[meani]
            ))
        })?;
        let count: u64 = fields[counti].parse().unwrap_or(0);
        rows.insert(
            (fields[pi].clone(), fields[mi].clone()),
            SummaryRow { mean, count },
        );
    }
    Ok(rows)
}

/// Compares two summary CSV **texts**; returns the rendered report, or
/// [`LabError::Regression`] carrying it when any gated mean regressed.
///
/// # Errors
///
/// * [`LabError::BadRecord`] on malformed CSV.
/// * [`LabError::Regression`] when regressions were found.
pub fn check_text(current: &str, baseline: &str, opts: &CheckOptions) -> Result<String, LabError> {
    let cur = parse_summary(current, "current")?;
    let base = parse_summary(baseline, "baseline")?;
    check_rows(&cur, &base, opts)
}

/// Compares two parsed `(point, metric) → (mean, count)` maps — the
/// shared core behind [`check_text`] and the store-backed run-directory
/// inputs of [`check_files`].
fn check_rows(
    cur: &BTreeMap<(String, String), SummaryRow>,
    base: &BTreeMap<(String, String), SummaryRow>,
    opts: &CheckOptions,
) -> Result<String, LabError> {
    let metrics: Vec<&str> = if opts.metrics.is_empty() {
        DEFAULT_METRICS.to_vec()
    } else {
        opts.metrics.iter().map(String::as_str).collect()
    };

    let mut tbl = Table::new([
        "point",
        "metric",
        "baseline mean",
        "current mean",
        "ratio",
        "verdict",
    ]);
    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for ((point, metric), b) in base {
        if !metrics.iter().any(|m| m == metric) {
            continue;
        }
        let Some(c) = cur.get(&(point.clone(), metric.clone())) else {
            missing += 1;
            continue;
        };
        compared += 1;
        // Tolerance band scales with |mean| so negative baselines (possible
        // for user-gated extras) widen upward instead of tightening.
        let limit = b.mean + b.mean.abs() * opts.tolerance + ABS_SLACK;
        let regressed = c.mean > limit;
        if regressed {
            regressions += 1;
        }
        let ratio = if b.mean.abs() > 0.0 {
            c.mean / b.mean
        } else if c.mean.abs() > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        tbl.push_row([
            point.clone(),
            metric.clone(),
            format!("{:.2}", b.mean),
            format!("{:.2}", c.mean),
            format!("{ratio:.3}"),
            if regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    let report = format!(
        "# cost regression check (tolerance +{:.0}%)\n\n{}\n\
         {compared} (point, metric) pairs compared, {regressions} regressed, \
         {missing} baseline pairs absent from the current run.\n",
        opts.tolerance * 100.0,
        tbl.to_markdown()
    );
    if compared == 0 {
        return Err(LabError::BadRecord(
            "no comparable (point, metric) pairs between current and baseline".into(),
        ));
    }
    if regressions > 0 {
        return Err(LabError::Regression(report));
    }
    Ok(report)
}

/// Parses a memory-suite bench JSON into `case id → bytes_per_node`.
fn parse_memory(text: &str, source: &str) -> Result<BTreeMap<String, f64>, LabError> {
    let v = crate::json::parse(text).map_err(|e| LabError::BadRecord(format!("{source}: {e}")))?;
    if v.get("suite").and_then(Value::as_str) != Some("memory") {
        return Err(LabError::BadRecord(format!(
            "{source}: not a memory bench file (suite != \"memory\")"
        )));
    }
    let Some(Value::Arr(cases)) = v.get("cases") else {
        return Err(LabError::BadRecord(format!(
            "{source}: memory bench lacks a 'cases' array"
        )));
    };
    let mut rows = BTreeMap::new();
    for c in cases {
        let id = c
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| LabError::BadRecord(format!("{source}: memory case without an 'id'")))?;
        let bpn = c
            .get("bytes_per_node")
            .and_then(Value::as_f64)
            .ok_or_else(|| {
                LabError::BadRecord(format!(
                    "{source}: case '{id}' lacks a numeric 'bytes_per_node'"
                ))
            })?;
        rows.insert(id.to_string(), bpn);
    }
    Ok(rows)
}

/// Compares two memory-suite bench JSON **texts** per case id; returns
/// the rendered report, or [`LabError::Regression`] carrying it when any
/// `bytes_per_node` grew beyond the memory tolerance.
///
/// # Errors
///
/// * [`LabError::BadRecord`] on malformed JSON or disjoint case sets.
/// * [`LabError::Regression`] when regressions were found.
pub fn check_memory_text(
    current: &str,
    baseline: &str,
    opts: &CheckOptions,
) -> Result<String, LabError> {
    let cur = parse_memory(current, "current")?;
    let base = parse_memory(baseline, "baseline")?;
    let mut tbl = Table::new([
        "case",
        "baseline bytes/node",
        "current bytes/node",
        "ratio",
        "verdict",
    ]);
    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for (id, b) in &base {
        let Some(c) = cur.get(id) else {
            missing += 1;
            continue;
        };
        compared += 1;
        let limit = b + b.abs() * opts.memory_tolerance + ABS_SLACK;
        let regressed = *c > limit;
        if regressed {
            regressions += 1;
        }
        let ratio = if b.abs() > 0.0 { c / b } else { f64::INFINITY };
        tbl.push_row([
            id.clone(),
            format!("{b:.1}"),
            format!("{c:.1}"),
            format!("{ratio:.3}"),
            if regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    let report = format!(
        "# memory regression check (bytes/node, tolerance +{:.0}%)\n\n{}\n\
         {compared} cases compared, {regressions} regressed, \
         {missing} baseline cases absent from the current run.\n",
        opts.memory_tolerance * 100.0,
        tbl.to_markdown()
    );
    if compared == 0 {
        return Err(LabError::BadRecord(
            "no comparable memory cases between current and baseline".into(),
        ));
    }
    if regressions > 0 {
        return Err(LabError::Regression(report));
    }
    Ok(report)
}

/// One side of a `check` comparison, loaded from disk.
enum CheckInput {
    /// A memory-suite bench JSON (raw text; parsed by the memory gate).
    Memory(String),
    /// Summary rows — from a parsed `summary.csv` or a run directory's
    /// durable store.
    Summary(BTreeMap<(String, String), SummaryRow>),
}

/// Loads one `check` input. Run **directories** are served from the
/// durable store ([`crate::store::load_summary_rows`] over the `s/` rows
/// of `trials.db`), falling back to the directory's `summary.csv` only
/// when no store is present; **files** route by content (a JSON object
/// is a memory bench, anything else a summary CSV).
fn load_input(path: &Path, side: &str) -> Result<CheckInput, LabError> {
    if path.is_dir() {
        if let Some(rows) = crate::store::load_summary_rows(path)? {
            return Ok(CheckInput::Summary(
                rows.into_iter()
                    .map(|r| {
                        (
                            (r.point, r.metric),
                            SummaryRow {
                                mean: r.mean,
                                count: r.count,
                            },
                        )
                    })
                    .collect(),
            ));
        }
        let csv = path.join("summary.csv");
        let text = std::fs::read_to_string(&csv)
            .map_err(|e| LabError::Io(format!("{}: {e}", csv.display())))?;
        return Ok(CheckInput::Summary(parse_summary(&text, side)?));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| LabError::Io(format!("{}: {e}", path.display())))?;
    if text.trim_start().starts_with('{') {
        Ok(CheckInput::Memory(text))
    } else {
        Ok(CheckInput::Summary(parse_summary(&text, side)?))
    }
}

/// File-path front end for [`check_text`]/[`check_memory_text`] (the
/// `ale-lab check` subcommand). Either side may be a summary CSV file,
/// a memory-bench JSON file, or a **run directory** — directories are
/// served from the durable store (falling back to their `summary.csv`
/// when no `trials.db` exists), so gating no longer re-parses CSV for
/// stored runs. Incomplete (crashed) stores are rejected with a hint to
/// `run --resume` rather than silently gating partial data.
///
/// # Errors
///
/// IO failures as [`LabError::Io`]; a JSON/CSV input mix or an
/// incomplete/truncated store as [`LabError::BadRecord`]; otherwise as
/// the routed checker.
pub fn check_files(
    current: &Path,
    baseline: &Path,
    opts: &CheckOptions,
) -> Result<String, LabError> {
    let cur = load_input(current, "current")?;
    let base = load_input(baseline, "baseline")?;
    match (cur, base) {
        (CheckInput::Memory(c), CheckInput::Memory(b)) => check_memory_text(&c, &b, opts),
        (CheckInput::Summary(c), CheckInput::Summary(b)) => check_rows(&c, &b, opts),
        _ => Err(LabError::BadRecord(
            "cannot compare a memory-bench JSON against a summary CSV".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "point,family,algorithm,n,metric,count,mean,ci95,median,min,max,spilled";

    fn summary(rows: &[(&str, &str, f64)]) -> String {
        let mut s = String::from(HEADER);
        s.push('\n');
        for (point, metric, mean) in rows {
            s.push_str(&format!(
                "{point},fam,-,8,{metric},4,{mean},0,{mean},{mean},{mean},false\n"
            ));
        }
        s
    }

    #[test]
    fn identical_summaries_pass() {
        let text = summary(&[("a", "messages", 100.0), ("a", "rounds", 10.0)]);
        let report = check_text(&text, &text, &CheckOptions::default()).unwrap();
        assert!(report.contains("2 (point, metric) pairs compared, 0 regressed"));
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = summary(&[("a", "messages", 100.0)]);
        let ok = summary(&[("a", "messages", 120.0)]);
        assert!(check_text(&ok, &base, &CheckOptions::default()).is_ok());
        let bad = summary(&[("a", "messages", 130.0)]);
        let err = check_text(&bad, &base, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, LabError::Regression(_)));
        assert!(err.to_string().contains("REGRESSED"));
        // A looser tolerance admits it.
        let loose = CheckOptions {
            tolerance: 0.5,
            ..CheckOptions::default()
        };
        assert!(check_text(&bad, &base, &loose).is_ok());
    }

    #[test]
    fn improvements_and_ungated_metrics_pass() {
        let base = summary(&[("a", "messages", 100.0), ("a", "ratio", 1.0)]);
        // messages improved; 'ratio' is not a gated metric and may grow.
        let cur = summary(&[("a", "messages", 50.0), ("a", "ratio", 99.0)]);
        let report = check_text(&cur, &base, &CheckOptions::default()).unwrap();
        assert!(report.contains("1 (point, metric) pairs compared"));
    }

    #[test]
    fn custom_metric_list_is_honored() {
        let base = summary(&[("a", "ratio", 1.0)]);
        let cur = summary(&[("a", "ratio", 2.0)]);
        let opts = CheckOptions {
            metrics: vec!["ratio".into()],
            ..CheckOptions::default()
        };
        assert!(matches!(
            check_text(&cur, &base, &opts),
            Err(LabError::Regression(_))
        ));
    }

    #[test]
    fn missing_points_are_counted_not_failed() {
        let base = summary(&[("a", "messages", 100.0), ("b", "messages", 100.0)]);
        let cur = summary(&[("a", "messages", 100.0)]);
        let report = check_text(&cur, &base, &CheckOptions::default()).unwrap();
        assert!(report.contains("1 baseline pairs absent"));
    }

    #[test]
    fn negative_baselines_compare_sanely() {
        let base = summary(&[("a", "slope", -5.0)]);
        let opts = CheckOptions {
            metrics: vec!["slope".into()],
            ..CheckOptions::default()
        };
        // Identical negative means must pass...
        assert!(check_text(&base, &base, &opts).is_ok());
        // ...growth within the |mean|-scaled band passes...
        let ok = summary(&[("a", "slope", -4.0)]);
        assert!(check_text(&ok, &base, &opts).is_ok());
        // ...and growth beyond it fails.
        let bad = summary(&[("a", "slope", -3.0)]);
        assert!(matches!(
            check_text(&bad, &base, &opts),
            Err(LabError::Regression(_))
        ));
    }

    #[test]
    fn zero_baseline_tolerates_zero_but_not_growth() {
        let base = summary(&[("a", "messages", 0.0)]);
        assert!(check_text(&base, &base, &CheckOptions::default()).is_ok());
        let cur = summary(&[("a", "messages", 5.0)]);
        assert!(matches!(
            check_text(&cur, &base, &CheckOptions::default()),
            Err(LabError::Regression(_))
        ));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(check_text("", "", &CheckOptions::default()).is_err());
        let noheader = "a,b,c\n1,2,3\n";
        assert!(matches!(
            check_text(noheader, noheader, &CheckOptions::default()),
            Err(LabError::BadRecord(_))
        ));
        let base = summary(&[("a", "messages", 1.0)]);
        let bad_mean = format!("{HEADER}\na,fam,-,8,messages,4,not-a-number,0,0,0,0,false\n");
        assert!(matches!(
            check_text(&bad_mean, &base, &CheckOptions::default()),
            Err(LabError::BadRecord(_))
        ));
        // Disjoint summaries: nothing comparable.
        let other = summary(&[("z", "messages", 1.0)]);
        assert!(matches!(
            check_text(&other, &base, &CheckOptions::default()),
            Err(LabError::BadRecord(_))
        ));
    }

    fn memory_json(rows: &[(&str, f64)]) -> String {
        let cases = rows
            .iter()
            .map(|(id, bpn)| {
                format!(
                    r#"{{"id": "{id}", "n": 1000, "graph_kb": 1, "engine_kb": 1, "bytes_per_node": {bpn}}}"#
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(r#"{{"suite": "memory", "git": "abc", "quick": false, "cases": [{cases}]}}"#)
    }

    #[test]
    fn memory_gate_uses_the_tighter_tolerance() {
        let base = memory_json(&[("rss/implicit/torus:1000x1000", 1000.0)]);
        // +9% passes under the 10% memory tolerance...
        let ok = memory_json(&[("rss/implicit/torus:1000x1000", 1090.0)]);
        let report = check_memory_text(&ok, &base, &CheckOptions::default()).unwrap();
        assert!(report.contains("1 cases compared, 0 regressed"));
        // ...+12% fails, even though the CSV tolerance (25%) would admit it.
        let bad = memory_json(&[("rss/implicit/torus:1000x1000", 1120.0)]);
        let err = check_memory_text(&bad, &base, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, LabError::Regression(_)));
        assert!(err.to_string().contains("REGRESSED"));
        // Improvements and missing cases pass (missing is counted).
        let better = memory_json(&[("rss/implicit/torus:1000x1000", 500.0), ("rss/new", 1.0)]);
        assert!(check_memory_text(&better, &base, &CheckOptions::default()).is_ok());
        let other = memory_json(&[("rss/other", 1.0)]);
        assert!(matches!(
            check_memory_text(&other, &base, &CheckOptions::default()),
            Err(LabError::BadRecord(_))
        ));
        // Malformed inputs are rejected.
        assert!(check_memory_text("{}", &base, &CheckOptions::default()).is_err());
        assert!(check_memory_text(
            r#"{"suite": "simulator", "cases": []}"#,
            &base,
            &CheckOptions::default()
        )
        .is_err());
    }

    #[test]
    fn check_files_routes_json_to_the_memory_gate() {
        let dir = std::env::temp_dir().join(format!("ale-lab-memcheck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_p = dir.join("base.json");
        let cur_p = dir.join("cur.json");
        std::fs::write(&base_p, memory_json(&[("rss/x", 100.0)])).unwrap();
        std::fs::write(&cur_p, memory_json(&[("rss/x", 150.0)])).unwrap();
        let err = check_files(&cur_p, &base_p, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, LabError::Regression(_)));
        assert!(check_files(&base_p, &base_p, &CheckOptions::default()).is_ok());
        // A JSON/CSV mix is a usage error, not a silent pass.
        let csv_p = dir.join("summary.csv");
        std::fs::write(&csv_p, summary(&[("a", "messages", 1.0)])).unwrap();
        assert!(matches!(
            check_files(&cur_p, &csv_p, &CheckOptions::default()),
            Err(LabError::BadRecord(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_directories_are_served_from_the_store() {
        use crate::scenario::{GridPoint, TrialRecord};
        use crate::store;
        use ale_graph::Topology;

        let dir = std::env::temp_dir().join(format!("ale-lab-checkdir-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let grid = vec![GridPoint::new("cell-a").on(Topology::Cycle { n: 8 })];
        let mut r = TrialRecord::new("demo", &grid[0], 11);
        r.messages = 40;
        r.ok = true;
        let records = vec![r];
        let mut summary = crate::agg::RunSummary::new("demo", &grid, 1, 1, 1);
        summary.record(0, &records[0]);
        let manifest = store::RunManifest::for_run(
            "demo",
            1,
            1,
            1,
            vec!["cell-a".into()],
            false,
            "0/1",
            vec!["topo=cycle(n=8)".into()],
        );
        store::write_run(&dir, &manifest, &records, &summary).unwrap();

        // The directory gates against itself, and against its own CSV
        // view — the store rows carry the same statistics the CSV does.
        assert!(check_files(&dir, &dir, &CheckOptions::default()).is_ok());
        assert!(check_files(&dir, &dir.join("summary.csv"), &CheckOptions::default()).is_ok());

        // A directory without a store falls back to its summary.csv.
        let no_db =
            std::env::temp_dir().join(format!("ale-lab-checkdir-nodb-{}", std::process::id()));
        std::fs::create_dir_all(&no_db).unwrap();
        std::fs::copy(dir.join("summary.csv"), no_db.join("summary.csv")).unwrap();
        assert!(check_files(&no_db, &dir, &CheckOptions::default()).is_ok());

        // An incomplete (crashed) store is refused, not silently gated.
        let mut crashed = manifest.clone();
        crashed.complete = false;
        std::fs::write(
            dir.join("manifest.json"),
            crate::json::ToJson::to_json(&crashed).render_pretty() + "\n",
        )
        .unwrap();
        let err =
            check_files(&dir, &dir.join("summary.csv"), &CheckOptions::default()).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&no_db).ok();
    }

    #[test]
    fn quoted_points_roundtrip() {
        let base = format!("{HEADER}\n\"p,with,commas\",fam,-,8,messages,4,10,0,10,10,10,false\n");
        let cur =
            format!("{HEADER}\n\"p,with,commas\",fam,-,8,messages,4,100,0,100,100,100,false\n");
        assert!(matches!(
            check_text(&cur, &base, &CheckOptions::default()),
            Err(LabError::Regression(_))
        ));
    }
}
