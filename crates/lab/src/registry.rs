//! The scenario registry: name → spec resolution for the CLI and tests.

use crate::scenario::Scenario;
use crate::scenarios;

/// Every built-in scenario, in presentation order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(scenarios::Table1),
        Box::new(scenarios::Scaling),
        Box::new(scenarios::Revocable),
        Box::new(scenarios::Impossibility),
        Box::new(scenarios::Cautious),
        Box::new(scenarios::Walks),
        Box::new(scenarios::Diffusion),
        Box::new(scenarios::Thresholds),
        Box::new(scenarios::Certification),
        Box::new(scenarios::Phases),
        Box::new(scenarios::AblationCautious),
    ]
}

/// Looks a scenario up by its registry name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    all().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn registry_covers_all_legacy_experiments() {
        let names: Vec<&str> = all().iter().map(|s| s.name()).collect();
        for expected in [
            "table1",
            "scaling",
            "revocable",
            "impossibility",
            "cautious",
            "walks",
            "diffusion",
            "thresholds",
            "certification",
            "phases",
            "ablation-cautious",
        ] {
            assert!(names.contains(&expected), "missing scenario {expected}");
        }
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn names_are_unique_and_lookups_work() {
        let mut names: Vec<&str> = all().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
        assert!(find("table1").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_scenario_expands_a_nonempty_quick_grid() {
        let cfg = GridConfig {
            quick: true,
            ..GridConfig::default()
        };
        for s in all() {
            let grid = s.grid(&cfg).unwrap_or_else(|e| {
                panic!("{}: grid failed: {e}", s.name());
            });
            assert!(!grid.is_empty(), "{}: empty quick grid", s.name());
            assert!(s.default_seeds(true) >= 1);
            assert!(!s.description().is_empty());
            // Labels are unique within the scenario (result-store keys).
            let mut labels: Vec<&str> = grid.iter().map(|p| p.label.as_str()).collect();
            labels.sort_unstable();
            let before = labels.len();
            labels.dedup();
            assert_eq!(before, labels.len(), "{}: duplicate labels", s.name());
        }
    }
}
