//! The `ale-lab bench` subcommand: in-process microbenchmarks seeding the
//! repo's perf trajectory.
//!
//! Mirrors the two criterion benches in `crates/bench/benches`
//! (`simulator.rs`, `diffusion.rs`) but runs in-process with plain
//! [`Instant`] timing, so one binary can emit machine-comparable numbers
//! without a bench harness: warm up once, estimate the per-iteration
//! cost, then measure `clamp(budget / cost, 3, 100)` iterations — the
//! same strategy the workspace's criterion shim uses.
//!
//! Output is three JSON files in the chosen directory (default: the
//! current directory, i.e. the repo root in CI):
//!
//! * `BENCH_memory.json` — resident-set growth (bytes/node) of the
//!   large-n revocable engine on ladder tori, sampled from
//!   `/proc/self/status` around graph and engine construction;
//! * `BENCH_simulator.json` — CONGEST round throughput, arena vs
//!   reference engine (dense gossip + the mostly-halted beacon tail);
//! * `BENCH_diffusion.json` — `Avg` diffusion steps, dense matrix vs
//!   sparse CSR backend on tori.
//!
//! Timing schema: `{"suite", "git", "quick", "cases": [{"id", "iters",
//! "wall_ms_per_iter"}]}`; the memory suite's cases carry `{"id", "n",
//! "graph_kb", "engine_kb", "bytes_per_node"}` instead. The `git` stamp
//! is the exact short sha of `HEAD`, `-dirty`-suffixed when the work
//! tree has uncommitted changes. Numbers are wall-clock/RSS on whatever
//! machine ran them — compare across commits on one box, not across
//! boxes.

use crate::json::Value;
use crate::scenario::LabError;
use ale_congest::{congest_budget, Incoming, Network, NodeCtx, OutCtx, Process, ReferenceNetwork};
use ale_core::revocable::{RevocableParams, RevocableProcess};
use ale_graph::{transition, Topology};
use ale_markov::MarkovChain;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// One measured case.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Stable identifier (`group/engine/param`).
    pub id: String,
    /// Measured iterations (budget-derived, 3..=100).
    pub iters: u64,
    /// Mean wall-clock per iteration, in milliseconds.
    pub wall_ms_per_iter: f64,
}

/// Warm up, estimate, then time `f` under `budget`.
fn time_case(budget: Duration, mut f: impl FnMut()) -> (u64, f64) {
    f(); // warm-up: touch caches, fault pages, fill allocator pools
    let once = {
        let t = Instant::now();
        f();
        t.elapsed().max(Duration::from_micros(1))
    };
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(3, 100) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (iters, start.elapsed().as_secs_f64() * 1e3 / iters as f64)
}

fn suite_json(suite: &str, quick: bool, cases: &[Case]) -> Value {
    Value::obj(vec![
        ("suite".to_string(), Value::Str(suite.to_string())),
        ("git".to_string(), Value::Str(crate::store::git_stamp())),
        ("quick".to_string(), Value::Bool(quick)),
        (
            "cases".to_string(),
            Value::Arr(
                cases
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("id".to_string(), Value::Str(c.id.clone())),
                            ("iters".to_string(), Value::UInt(c.iters)),
                            (
                                "wall_ms_per_iter".to_string(),
                                Value::Num(c.wall_ms_per_iter),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// All-ports gossip: the simulator-overhead yardstick (mirrors the
/// criterion bench's `Gossip`).
#[derive(Debug, Clone)]
struct Gossip(u64);

impl Process for Gossip {
    type Msg = u64;
    type Output = u64;

    fn round(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<u64>],
        out: &mut OutCtx<'_, u64>,
    ) {
        for m in inbox {
            self.0 = self.0.wrapping_add(m.msg);
        }
        out.broadcast(self.0);
    }

    fn output(&self) -> u64 {
        self.0
    }
}

/// Only 1-in-`keep` nodes stay active after round 0: the long
/// mostly-halted tail of a large revocable run.
#[derive(Debug, Clone)]
struct Beacon {
    active: bool,
    value: u64,
    done: bool,
}

impl Process for Beacon {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            self.value = self.value.wrapping_add(m.msg);
        }
        out.broadcast(self.value);
        if ctx.round == 0 && !self.active {
            self.done = true;
        }
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> u64 {
        self.value
    }
}

fn simulator_cases(quick: bool, budget: Duration) -> Result<Vec<Case>, LabError> {
    let mut cases = Vec::new();

    let n = if quick { 256 } else { 1024 };
    let graph = Topology::RandomRegular { n, d: 4 }.build(1)?;
    let (iters, ms) = time_case(budget, || {
        let mut net = Network::from_fn(&graph, 1, 64, |_d, _r| Gossip(1));
        net.run_for(100).expect("gossip run");
        std::hint::black_box(net.metrics().messages);
    });
    cases.push(Case {
        id: format!("dense-gossip-100-rounds/arena/{n}"),
        iters,
        wall_ms_per_iter: ms,
    });
    let (iters, ms) = time_case(budget, || {
        let mut net = ReferenceNetwork::from_fn(&graph, 1, 64, |_d, _r| Gossip(1));
        net.run_for(100).expect("gossip run");
        std::hint::black_box(net.metrics().messages);
    });
    cases.push(Case {
        id: format!("dense-gossip-100-rounds/reference/{n}"),
        iters,
        wall_ms_per_iter: ms,
    });

    let (n, keep, rounds) = if quick {
        (2_000usize, 100u64, 200u64)
    } else {
        (20_000, 200, 1000)
    };
    let graph = Topology::RandomRegular { n, d: 4 }.build(2)?;
    let make = |_d: usize, rng: &mut rand::rngs::StdRng| {
        use rand::Rng;
        Beacon {
            active: rng.gen_range(0..keep) == 0,
            value: 1,
            done: false,
        }
    };
    let (iters, ms) = time_case(budget, || {
        let mut net = Network::from_fn(&graph, 3, 64, make);
        net.run_for(rounds).expect("beacon run");
        std::hint::black_box(net.metrics().messages);
    });
    cases.push(Case {
        id: format!("mostly-halted-{rounds}-rounds/arena/{n}"),
        iters,
        wall_ms_per_iter: ms,
    });
    let (iters, ms) = time_case(budget, || {
        let mut net = ReferenceNetwork::from_fn(&graph, 3, 64, make);
        net.run_for(rounds).expect("beacon run");
        std::hint::black_box(net.metrics().messages);
    });
    cases.push(Case {
        id: format!("mostly-halted-{rounds}-rounds/reference/{n}"),
        iters,
        wall_ms_per_iter: ms,
    });
    Ok(cases)
}

/// One memory-suite measurement: RSS growth across graph construction
/// and across engine construction + a short protocol run, per node.
#[derive(Debug, Clone, PartialEq)]
pub struct MemCase {
    /// Stable identifier (`rss/<backend>/torus:<side>x<side>`).
    pub id: String,
    /// Nodes in the measured graph.
    pub n: u64,
    /// RSS growth across graph construction, in KiB.
    pub graph_kb: u64,
    /// RSS growth across engine construction plus the measured rounds,
    /// in KiB.
    pub engine_kb: u64,
    /// Total RSS growth per node: `(graph_kb + engine_kb)·1024 / n`.
    pub bytes_per_node: f64,
}

/// Current resident set size (`VmRSS`) in KiB from `/proc/self/status`,
/// or `None` where that interface does not exist (non-Linux).
fn vm_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// Rounds the memory suite drives the revocable engine for: enough to
/// populate the staged/in-flight buffers to their dense steady state
/// (every node broadcasts every round), few enough that even the 10⁶
/// case stays in the seconds range.
const MEMORY_ROUNDS: u64 = 16;

fn memory_cases(quick: bool) -> Result<Vec<MemCase>, LabError> {
    // The ladder tori, ascending so each case's allocations are fresh
    // growth past the previous high-water mark (per-case deltas would
    // otherwise be masked by allocator reuse).
    let ns: &[usize] = if quick {
        &[20_000, 200_000]
    } else {
        &[20_000, 200_000, 1_000_000]
    };
    // The mode-4 large-n ladder configuration of the revocable scenario.
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.002, 0.05, 1.0);
    let mut cases = Vec::new();
    for &n in ns {
        let side = (n as f64).sqrt().floor() as usize;
        let before = vm_rss_kb().unwrap_or(0);
        let graph = Topology::Grid2d {
            rows: side,
            cols: side,
            torus: true,
        }
        .build(0)?;
        let after_graph = vm_rss_kb().unwrap_or(0);
        let nodes = graph.n();
        let budget = congest_budget(nodes.max(2), params.congest_factor);
        let mut net = Network::from_fn(&graph, 1, budget, |deg, _rng| {
            RevocableProcess::with_horizon(params, deg, Some(4))
        });
        net.run_for(MEMORY_ROUNDS)
            .expect("memory-suite revocable run");
        std::hint::black_box(net.metrics().messages);
        let after_run = vm_rss_kb().unwrap_or(0);
        let backend = if graph.is_implicit() {
            "implicit"
        } else {
            "explicit"
        };
        let graph_kb = after_graph.saturating_sub(before);
        let engine_kb = after_run.saturating_sub(after_graph);
        cases.push(MemCase {
            id: format!("rss/{backend}/torus:{side}x{side}"),
            n: nodes as u64,
            graph_kb,
            engine_kb,
            bytes_per_node: (graph_kb + engine_kb) as f64 * 1024.0 / nodes as f64,
        });
    }
    Ok(cases)
}

fn memory_suite_json(quick: bool, cases: &[MemCase]) -> Value {
    Value::obj(vec![
        ("suite".to_string(), Value::Str("memory".to_string())),
        ("git".to_string(), Value::Str(crate::store::git_stamp())),
        ("quick".to_string(), Value::Bool(quick)),
        (
            "cases".to_string(),
            Value::Arr(
                cases
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("id".to_string(), Value::Str(c.id.clone())),
                            ("n".to_string(), Value::UInt(c.n)),
                            ("graph_kb".to_string(), Value::UInt(c.graph_kb)),
                            ("engine_kb".to_string(), Value::UInt(c.engine_kb)),
                            ("bytes_per_node".to_string(), Value::Num(c.bytes_per_node)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

const ALPHA: f64 = 1.0 / 64.0;

fn diffusion_cases(quick: bool, budget: Duration) -> Result<Vec<Case>, LabError> {
    let torus = |side: usize| Topology::Grid2d {
        rows: side,
        cols: side,
        torus: true,
    };
    let potential =
        |n: usize| -> Vec<f64> { (0..n).map(|i| if i % 7 == 0 { 0.0 } else { 1.0 }).collect() };
    let markov = |e: ale_markov::MarkovError| LabError::BadArgs(format!("bench chain: {e}"));
    let mut cases = Vec::new();

    let dense_sides: &[usize] = if quick { &[8] } else { &[8, 32] };
    for &side in dense_sides {
        let graph = torus(side).build(1)?;
        let n = graph.n();
        let chain = MarkovChain::diffusion(&graph.adjacency(), ALPHA).map_err(markov)?;
        let pot = potential(n);
        let mut out = vec![0.0; n];
        let (iters, ms) = time_case(budget, || {
            chain.step_into(&pot, &mut out).expect("dense step");
        });
        cases.push(Case {
            id: format!("step/dense/torus:{side}x{side}"),
            iters,
            wall_ms_per_iter: ms,
        });
    }

    let sparse_sides: &[usize] = if quick { &[8, 32] } else { &[8, 32, 100, 200] };
    for &side in sparse_sides {
        let graph = torus(side).build(1)?;
        let n = graph.n();
        let chain = transition::diffusion_chain(&graph, ALPHA)?;
        let pot = potential(n);
        let mut out = vec![0.0; n];
        let (iters, ms) = time_case(budget, || {
            chain.step_into(&pot, &mut out).expect("sparse step");
        });
        cases.push(Case {
            id: format!("step/sparse/torus:{side}x{side}"),
            iters,
            wall_ms_per_iter: ms,
        });
    }
    Ok(cases)
}

/// Runs all three suites and writes `BENCH_memory.json` /
/// `BENCH_simulator.json` / `BENCH_diffusion.json` into `out_dir`;
/// returns the report text.
///
/// # Errors
///
/// [`LabError::Graph`]/[`LabError::BadArgs`] on graph/chain construction
/// failures, [`LabError::Io`] when an output file cannot be written.
pub fn run(quick: bool, out_dir: &Path) -> Result<String, LabError> {
    let budget = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(1)
    };
    std::fs::create_dir_all(out_dir)
        .map_err(|e| LabError::Io(format!("create {}: {e}", out_dir.display())))?;
    let mut report = String::new();

    // The memory suite runs first: its RSS deltas are only meaningful on
    // a heap the timing suites have not yet grown and fragmented.
    let mem = memory_cases(quick)?;
    let path = out_dir.join("BENCH_memory.json");
    std::fs::write(&path, memory_suite_json(quick, &mem).render_pretty() + "\n")
        .map_err(|e| LabError::Io(format!("write {}: {e}", path.display())))?;
    let _ = writeln!(report, "suite memory -> {}", path.display());
    for c in &mem {
        let _ = writeln!(
            report,
            "  {:<44} {:>10.1} bytes/node  (graph {} KiB, engine {} KiB)",
            c.id, c.bytes_per_node, c.graph_kb, c.engine_kb
        );
    }

    for (suite, cases) in [
        ("simulator", simulator_cases(quick, budget)?),
        ("diffusion", diffusion_cases(quick, budget)?),
    ] {
        let path = out_dir.join(format!("BENCH_{suite}.json"));
        let json = suite_json(suite, quick, &cases);
        std::fs::write(&path, json.render_pretty() + "\n")
            .map_err(|e| LabError::Io(format!("write {}: {e}", path.display())))?;
        let _ = writeln!(report, "suite {suite} -> {}", path.display());
        for c in &cases {
            let _ = writeln!(
                report,
                "  {:<44} {:>10.3} ms/iter  ({} iters)",
                c.id, c.wall_ms_per_iter, c.iters
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_case_respects_the_iteration_clamp() {
        let mut calls = 0u64;
        let (iters, ms) = time_case(Duration::from_millis(1), || calls += 1);
        assert!((3..=100).contains(&iters));
        // warm-up + estimate + measured iterations
        assert_eq!(calls, iters + 2);
        assert!(ms >= 0.0);
    }

    #[test]
    fn vm_rss_is_readable_and_positive_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        let kb = vm_rss_kb().expect("VmRSS line present");
        assert!(kb > 0);
    }

    #[test]
    fn memory_suite_json_has_the_pinned_schema() {
        let cases = [MemCase {
            id: "rss/implicit/torus:447x447".to_string(),
            n: 199_809,
            graph_kb: 12,
            engine_kb: 34_000,
            bytes_per_node: 174.3,
        }];
        let v = memory_suite_json(true, &cases);
        assert_eq!(v.get("suite").and_then(Value::as_str), Some("memory"));
        assert_eq!(v.get("quick").and_then(Value::as_bool), Some(true));
        assert!(v.get("git").and_then(Value::as_str).is_some());
        let Some(Value::Arr(cs)) = v.get("cases") else {
            panic!("cases array");
        };
        assert_eq!(
            cs[0].get("id").and_then(Value::as_str),
            Some("rss/implicit/torus:447x447")
        );
        assert_eq!(cs[0].get("n").and_then(Value::as_u64), Some(199_809));
        assert_eq!(cs[0].get("graph_kb").and_then(Value::as_u64), Some(12));
        assert_eq!(cs[0].get("engine_kb").and_then(Value::as_u64), Some(34_000));
        assert_eq!(
            cs[0].get("bytes_per_node").and_then(Value::as_f64),
            Some(174.3)
        );
    }

    #[test]
    fn suite_json_has_the_pinned_schema() {
        let cases = [Case {
            id: "a/b/8".to_string(),
            iters: 5,
            wall_ms_per_iter: 1.25,
        }];
        let v = suite_json("simulator", true, &cases);
        assert_eq!(v.get("suite").and_then(Value::as_str), Some("simulator"));
        assert_eq!(v.get("quick").and_then(Value::as_bool), Some(true));
        assert!(v.get("git").and_then(Value::as_str).is_some());
        let Some(Value::Arr(cs)) = v.get("cases") else {
            panic!("cases array");
        };
        assert_eq!(cs[0].get("id").and_then(Value::as_str), Some("a/b/8"));
        assert_eq!(cs[0].get("iters").and_then(Value::as_u64), Some(5));
        assert_eq!(
            cs[0].get("wall_ms_per_iter").and_then(Value::as_f64),
            Some(1.25)
        );
    }
}
