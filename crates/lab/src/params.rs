//! Declarative parameter spaces: the typed axes a scenario sweeps, and
//! their generic expansion into the cartesian grid the engine executes.
//!
//! Pre-redesign, every scenario hand-built its grid imperatively and new
//! sweeps meant new code. A scenario now *declares* its space instead:
//!
//! * an [`Axis`] is one sweep dimension — a name, a typed [`AxisKind`]
//!   (int / float / topology / algorithm / knowledge), the default value
//!   list, and an optional `--quick` value list;
//! * a [`Block`] is one cartesian product of axes plus a *point builder*
//!   that turns each typed combination ([`Ctx`]) into a [`GridPoint`]
//!   (or skips it — value-dependent filters like "stress points only on
//!   small graphs" live here);
//! * a [`ParamSpace`] is an ordered list of blocks, optionally sharing
//!   outer axes (so a union of regimes can interleave per topology, as
//!   the legacy grids did), plus an optional **size ladder** mapping a
//!   virtual `n` axis onto concrete topologies.
//!
//! [`ParamSpace::expand`] resolves CLI overrides (`--param key=v1,v2`,
//! with `--n`/`--topo` as sugar for `--param n=…`/`--param topo=…`),
//! validates them against the declared axes (unknown key or unparseable
//! value is [`LabError::BadArgs`], i.e. exit code 2), and expands the
//! blocks in declaration order — axis order is the loop nesting order,
//! first axis outermost. The expansion also reports the **resolved
//! space** (the value lists actually used), which run manifests record so
//! `merge` can verify that shards describe one sweep.
//!
//! ## Value resolution, per axis
//!
//! 1. a `--param` override (or its `--n`/`--topo` sugar), if given;
//! 2. the size ladder's computed topologies, for the ladder target when
//!    `n` was overridden and `topo` was not;
//! 3. an axis [link](Axis::linked) — values computed from outer axes
//!    (e.g. the thresholds scenario's `k` ladder depends on the
//!    topology's size);
//! 4. the `--quick` list when `--quick` is set and one was declared;
//! 5. the default list.
//!
//! Determinism: expansion is a pure function of the scenario and the
//! [`GridConfig`], so the positional seed streams of
//! [`crate::fleet::derive_seed`] stay byte-stable across reruns, worker
//! counts, and `--shard` slicings of the same resolved space.

use crate::runners::Algorithm;
use crate::scenario::{GridConfig, GridPoint, Knowledge, LabError};
use ale_graph::Topology;
use std::collections::BTreeMap;
use std::fmt;

/// One typed axis value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisValue {
    /// An unsigned integer (sizes, ladder rungs, enum indices).
    Int(u64),
    /// A float knob (γ, multipliers, tolerances).
    Float(f64),
    /// A topology (parsed from the `family:args` CLI form).
    Topo(Topology),
    /// An election algorithm (parsed from its display name).
    Algo(Algorithm),
    /// A knowledge regime (`full`, `size-only`, `blind`).
    Know(Knowledge),
}

impl AxisValue {
    fn kind(&self) -> AxisKind {
        match self {
            AxisValue::Int(_) => AxisKind::Int,
            AxisValue::Float(_) => AxisKind::Float,
            AxisValue::Topo(_) => AxisKind::Topology,
            AxisValue::Algo(_) => AxisKind::Algorithm,
            AxisValue::Know(_) => AxisKind::Knowledge,
        }
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Int(v) => write!(f, "{v}"),
            AxisValue::Float(v) => write!(f, "{v}"),
            AxisValue::Topo(t) => write!(f, "{t}"),
            AxisValue::Algo(a) => write!(f, "{a}"),
            AxisValue::Know(k) => write!(f, "{k}"),
        }
    }
}

/// The type of an axis — what `--param` values parse as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisKind {
    /// Unsigned integers.
    Int,
    /// Floats.
    Float,
    /// Topologies in the `family:args` form (`complete:64`, `torus:8x8`).
    Topology,
    /// Algorithm display names (`this-work`, `kutten15`, …).
    Algorithm,
    /// Knowledge regimes (`full`, `size-only`, `blind`).
    Knowledge,
}

impl AxisKind {
    /// Human name for `describe` output and error messages.
    pub fn label(self) -> &'static str {
        match self {
            AxisKind::Int => "int",
            AxisKind::Float => "float",
            AxisKind::Topology => "topology",
            AxisKind::Algorithm => "algorithm",
            AxisKind::Knowledge => "knowledge",
        }
    }

    /// Parses one raw CLI token as a value of this kind.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] naming the axis, the offending token, and
    /// the expected form.
    pub fn parse(self, axis: &str, raw: &str) -> Result<AxisValue, LabError> {
        let raw = raw.trim();
        let bad = |expected: &str| {
            LabError::BadArgs(format!(
                "--param {axis}: '{raw}' is not {expected} (axis kind: {})",
                self.label()
            ))
        };
        match self {
            AxisKind::Int => raw
                .parse::<u64>()
                .map(AxisValue::Int)
                .map_err(|_| bad("an unsigned integer")),
            AxisKind::Float => raw
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .map(AxisValue::Float)
                .ok_or_else(|| bad("a finite number")),
            AxisKind::Topology => raw
                .parse::<Topology>()
                .map(AxisValue::Topo)
                .map_err(|e| LabError::BadArgs(format!("--param {axis}: {e}"))),
            AxisKind::Algorithm => {
                Algorithm::from_name(raw)
                    .map(AxisValue::Algo)
                    .ok_or_else(|| {
                        bad(&format!(
                            "an algorithm (known: {})",
                            Algorithm::ALL
                                .iter()
                                .map(|a| a.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })
            }
            AxisKind::Knowledge => match raw {
                "full" => Ok(AxisValue::Know(Knowledge::Full)),
                "size-only" => Ok(AxisValue::Know(Knowledge::SizeOnly)),
                "blind" => Ok(AxisValue::Know(Knowledge::Blind)),
                _ => Err(bad("a knowledge regime (full, size-only, blind)")),
            },
        }
    }
}

/// A typed view over the axis values bound so far — what point builders
/// and [axis links](Axis::linked) receive, and (via
/// [`GridPoint::view`](crate::scenario::GridPoint::view)) what `bind`
/// reads instead of string-digging through `point.params`.
pub struct Ctx<'a> {
    values: &'a [(&'static str, AxisValue)],
    /// Whether `--quick` is set (shrinks value lists, caps, seed counts).
    pub quick: bool,
    /// Whether the topology values came from the size ladder (`--n` /
    /// `--param n=…` rewrote the topology axis).
    pub ladder: bool,
}

impl Ctx<'_> {
    /// The raw value of an axis, if bound.
    pub fn get(&self, name: &str) -> Option<AxisValue> {
        self.values
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    fn want(&self, name: &str, kind: AxisKind) -> Result<AxisValue, LabError> {
        let v = self.get(name).ok_or_else(|| {
            LabError::BadArgs(format!("point is missing the '{name}' axis value"))
        })?;
        if v.kind() != kind {
            return Err(LabError::BadArgs(format!(
                "axis '{name}' holds a {}, not a {}",
                v.kind().label(),
                kind.label()
            )));
        }
        Ok(v)
    }

    /// The value of an int axis.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or not an int.
    pub fn int(&self, name: &str) -> Result<u64, LabError> {
        match self.want(name, AxisKind::Int)? {
            AxisValue::Int(v) => Ok(v),
            _ => unreachable!("kind checked"),
        }
    }

    /// The value of a float axis.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or not a float.
    pub fn float(&self, name: &str) -> Result<f64, LabError> {
        match self.want(name, AxisKind::Float)? {
            AxisValue::Float(v) => Ok(v),
            _ => unreachable!("kind checked"),
        }
    }

    /// The value of a topology axis.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or not a topology.
    pub fn topology(&self, name: &str) -> Result<Topology, LabError> {
        match self.want(name, AxisKind::Topology)? {
            AxisValue::Topo(v) => Ok(v),
            _ => unreachable!("kind checked"),
        }
    }

    /// The value of an algorithm axis.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or not an algorithm.
    pub fn algorithm(&self, name: &str) -> Result<Algorithm, LabError> {
        match self.want(name, AxisKind::Algorithm)? {
            AxisValue::Algo(v) => Ok(v),
            _ => unreachable!("kind checked"),
        }
    }

    /// The value of a knowledge axis.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when the axis is unbound or not a knowledge
    /// regime.
    pub fn knowledge(&self, name: &str) -> Result<Knowledge, LabError> {
        match self.want(name, AxisKind::Knowledge)? {
            AxisValue::Know(v) => Ok(v),
            _ => unreachable!("kind checked"),
        }
    }
}

type LinkFn = Box<dyn Fn(&Ctx) -> Option<Vec<AxisValue>>>;

/// One declared sweep dimension.
pub struct Axis {
    /// The `--param` key (and `describe` row).
    pub name: &'static str,
    /// What values of this axis parse as.
    pub kind: AxisKind,
    /// The default value list (full grid).
    pub default: Vec<AxisValue>,
    /// The `--quick` value list, when it differs from the default.
    pub quick: Option<Vec<AxisValue>>,
    /// One-line description for `describe`.
    pub help: &'static str,
    link: Option<LinkFn>,
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("default", &self.default)
            .field("quick", &self.quick)
            .finish_non_exhaustive()
    }
}

impl Axis {
    fn new(name: &'static str, kind: AxisKind, default: Vec<AxisValue>) -> Self {
        Axis {
            name,
            kind,
            default,
            quick: None,
            help: "",
            link: None,
        }
    }

    /// An int axis with its default values.
    pub fn ints(name: &'static str, values: impl IntoIterator<Item = u64>) -> Self {
        Axis::new(
            name,
            AxisKind::Int,
            values.into_iter().map(AxisValue::Int).collect(),
        )
    }

    /// A float axis with its default values.
    pub fn floats(name: &'static str, values: impl IntoIterator<Item = f64>) -> Self {
        Axis::new(
            name,
            AxisKind::Float,
            values.into_iter().map(AxisValue::Float).collect(),
        )
    }

    /// A topology axis with its default values.
    pub fn topologies(name: &'static str, values: impl IntoIterator<Item = Topology>) -> Self {
        Axis::new(
            name,
            AxisKind::Topology,
            values.into_iter().map(AxisValue::Topo).collect(),
        )
    }

    /// An algorithm axis with its default values.
    pub fn algorithms(name: &'static str, values: impl IntoIterator<Item = Algorithm>) -> Self {
        Axis::new(
            name,
            AxisKind::Algorithm,
            values.into_iter().map(AxisValue::Algo).collect(),
        )
    }

    /// Sets the `--quick` int list.
    #[must_use]
    pub fn quick_ints(mut self, values: impl IntoIterator<Item = u64>) -> Self {
        self.quick = Some(values.into_iter().map(AxisValue::Int).collect());
        self
    }

    /// Sets the `--quick` float list.
    #[must_use]
    pub fn quick_floats(mut self, values: impl IntoIterator<Item = f64>) -> Self {
        self.quick = Some(values.into_iter().map(AxisValue::Float).collect());
        self
    }

    /// Sets the `--quick` topology list.
    #[must_use]
    pub fn quick_topologies(mut self, values: impl IntoIterator<Item = Topology>) -> Self {
        self.quick = Some(values.into_iter().map(AxisValue::Topo).collect());
        self
    }

    /// Sets the `describe` help line.
    #[must_use]
    pub fn help(mut self, help: &'static str) -> Self {
        self.help = help;
        self
    }

    /// Links this axis's values to outer axes: when the user did not
    /// `--param`-override it, `f` is consulted per outer combination and
    /// may return the value list to use (`None` falls through to the
    /// quick/default lists). The thresholds scenario's estimate ladder —
    /// `k` rungs bracketing the high regime of the *current topology* —
    /// is the canonical use.
    #[must_use]
    pub fn linked(mut self, f: impl Fn(&Ctx) -> Option<Vec<AxisValue>> + 'static) -> Self {
        self.link = Some(Box::new(f));
        self
    }
}

/// When a block participates in the expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum When {
    /// Always (the common case).
    Always,
    /// Only when the size ladder is *not* engaged (no `n` override) —
    /// the scenario's small-graph regime.
    SmallGrid,
    /// Only when the size ladder *is* engaged (`--n` / `--param n=…`) —
    /// the scenario's large-`n` regime.
    SizeSweep,
}

type BuildFn = Box<dyn Fn(&Ctx) -> Result<Option<GridPoint>, LabError>>;

/// One cartesian product of axes plus the builder that turns each typed
/// combination into a [`GridPoint`].
pub struct Block {
    /// Label for `describe` grouping.
    pub name: &'static str,
    /// Activation rule.
    pub when: When,
    /// The block's axes; declaration order is loop-nesting order (first
    /// axis outermost).
    pub axes: Vec<Axis>,
    build: BuildFn,
}

impl Block {
    /// A block active in every configuration.
    pub fn new(
        name: &'static str,
        axes: Vec<Axis>,
        build: impl Fn(&Ctx) -> Result<Option<GridPoint>, LabError> + 'static,
    ) -> Self {
        Block {
            name,
            when: When::Always,
            axes,
            build: Box::new(build),
        }
    }

    /// Sets the activation rule.
    #[must_use]
    pub fn when(mut self, when: When) -> Self {
        self.when = when;
        self
    }
}

type LadderFn = Box<dyn Fn(&[usize]) -> Vec<Topology>>;

/// The virtual size axis: `--param n=…` (or `--n`) rewrites the target
/// topology axis through the scenario's ladder function instead of
/// multiplying the grid.
struct SizeLadder {
    axis: &'static str,
    target: &'static str,
    help: &'static str,
    expand: LadderFn,
}

/// A scenario's declared parameter space.
pub struct ParamSpace {
    /// Axes shared by every block, iterated outermost — this is how a
    /// union of regimes (blocks) interleaves per outer value, matching
    /// the legacy per-topology grid order.
    pub shared: Vec<Axis>,
    ladder: Option<SizeLadder>,
    /// The blocks, expanded in declaration order.
    pub blocks: Vec<Block>,
}

/// The result of expanding a space under one [`GridConfig`].
pub struct Expansion {
    /// The grid, in deterministic expansion order (the seed-stream order).
    pub points: Vec<GridPoint>,
    /// The value lists actually used, per axis, in first-use order —
    /// recorded in run manifests so `merge` can check that shards
    /// describe one sweep.
    pub resolved: Vec<(String, String)>,
}

impl Expansion {
    /// The resolved space as `key=v1,v2,…` manifest lines.
    pub fn resolved_lines(&self) -> Vec<String> {
        self.resolved
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect()
    }
}

impl ParamSpace {
    /// A space of sequential blocks with no shared axes.
    pub fn new(blocks: Vec<Block>) -> Self {
        ParamSpace {
            shared: Vec::new(),
            ladder: None,
            blocks,
        }
    }

    /// Declares shared outer axes (see [`ParamSpace::shared`]).
    #[must_use]
    pub fn with_shared(mut self, axes: Vec<Axis>) -> Self {
        self.shared = axes;
        self
    }

    /// Declares the size ladder: overriding int axis `axis` (usually
    /// `n`) rewrites topology axis `target` via `expand`, unless `target`
    /// itself is overridden (explicit topologies win, as they always
    /// have).
    #[must_use]
    pub fn with_ladder(
        mut self,
        axis: &'static str,
        target: &'static str,
        help: &'static str,
        expand: impl Fn(&[usize]) -> Vec<Topology> + 'static,
    ) -> Self {
        self.ladder = Some(SizeLadder {
            axis,
            target,
            help,
            expand: Box::new(expand),
        });
        self
    }

    /// Every declared axis name with its kind (including the virtual
    /// ladder axis). Used for override validation and error messages.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] when two declarations of one name disagree
    /// on the kind (a scenario-author bug surfaced loudly).
    pub fn axis_kinds(&self) -> Result<BTreeMap<&'static str, AxisKind>, LabError> {
        let mut kinds: BTreeMap<&'static str, AxisKind> = BTreeMap::new();
        let mut add = |name: &'static str, kind: AxisKind| -> Result<(), LabError> {
            if let Some(prev) = kinds.insert(name, kind) {
                if prev != kind {
                    return Err(LabError::BadArgs(format!(
                        "scenario declares axis '{name}' as both {} and {}",
                        prev.label(),
                        kind.label()
                    )));
                }
            }
            Ok(())
        };
        if let Some(l) = &self.ladder {
            add(l.axis, AxisKind::Int)?;
        }
        for axis in self
            .shared
            .iter()
            .chain(self.blocks.iter().flat_map(|b| &b.axes))
        {
            add(axis.name, axis.kind)?;
        }
        Ok(kinds)
    }

    /// Expands the space into the concrete grid under `cfg`.
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] on unknown `--param` keys, unparseable or
    /// empty value lists, duplicate overrides, and point-builder
    /// failures.
    pub fn expand(&self, cfg: &GridConfig) -> Result<Expansion, LabError> {
        let kinds = self.axis_kinds()?;
        let known_kind = |key: &str| -> Result<AxisKind, LabError> {
            kinds.get(key).copied().ok_or_else(|| {
                LabError::BadArgs(format!(
                    "unknown parameter '{key}' (declared axes: {}; see `ale-lab describe`)",
                    kinds.keys().copied().collect::<Vec<_>>().join(", ")
                ))
            })
        };

        // Gather overrides: the --n/--topo sugar (already typed — no
        // string round-trip) plus the raw --param entries.
        let mut overrides: BTreeMap<String, Vec<AxisValue>> = BTreeMap::new();
        let mut add = |key: &str, parsed: Vec<AxisValue>| -> Result<(), LabError> {
            if overrides.insert(key.to_string(), parsed).is_some() {
                return Err(LabError::BadArgs(format!(
                    "parameter '{key}' given more than once (--n/--topo are sugar for --param n/topo)"
                )));
            }
            Ok(())
        };
        if !cfg.ns.is_empty() {
            let kind = known_kind("n")?;
            if kind != AxisKind::Int {
                return Err(LabError::BadArgs(format!(
                    "--n targets axis 'n', which is {}-kinded here",
                    kind.label()
                )));
            }
            add(
                "n",
                cfg.ns.iter().map(|&n| AxisValue::Int(n as u64)).collect(),
            )?;
        }
        if !cfg.topologies.is_empty() {
            let kind = known_kind("topo")?;
            if kind != AxisKind::Topology {
                return Err(LabError::BadArgs(format!(
                    "--topo targets axis 'topo', which is {}-kinded here",
                    kind.label()
                )));
            }
            add(
                "topo",
                cfg.topologies.iter().map(|&t| AxisValue::Topo(t)).collect(),
            )?;
        }
        for (key, values) in &cfg.params {
            let kind = known_kind(key)?;
            if values.is_empty() {
                return Err(LabError::BadArgs(format!(
                    "--param {key}: needs at least one value"
                )));
            }
            let parsed = values
                .iter()
                .map(|v| kind.parse(key, v))
                .collect::<Result<Vec<_>, _>>()?;
            add(key, parsed)?;
        }

        // The size ladder: n override rewrites the target topology axis
        // unless explicit topologies were given (those always win).
        let mut sweeping = false;
        let mut computed_topos: Option<Vec<AxisValue>> = None;
        if let Some(l) = &self.ladder {
            if let Some(sizes) = overrides.get(l.axis) {
                sweeping = true;
                if !overrides.contains_key(l.target) {
                    let ns: Vec<usize> = sizes
                        .iter()
                        .map(|v| match v {
                            AxisValue::Int(n) => *n as usize,
                            _ => unreachable!("ladder axis is int-kinded"),
                        })
                        .collect();
                    computed_topos =
                        Some((l.expand)(&ns).into_iter().map(AxisValue::Topo).collect());
                }
            }
        }
        let ladder_engaged = computed_topos.is_some();

        let mut exp = Expander {
            space: self,
            cfg,
            overrides,
            computed_topos,
            ladder_engaged,
            points: Vec::new(),
            used_order: Vec::new(),
            used: BTreeMap::new(),
            stack: Vec::new(),
        };
        if sweeping {
            if let Some(l) = &self.ladder {
                let sizes = exp.overrides.get(l.axis).cloned();
                if let Some(sizes) = sizes {
                    exp.note_used(l.axis, sizes);
                }
            }
        }
        exp.run(sweeping)?;

        // Every override must have been consumed by some active axis.
        // An override that lands only on inactive blocks (e.g. a ladder
        // topology without the `--n` that activates the ladder block)
        // would otherwise be silently ignored — the user would believe
        // they ran a sweep they did not.
        for key in exp.overrides.keys() {
            if !exp.used.contains_key(key.as_str()) {
                return Err(LabError::BadArgs(format!(
                    "parameter '{key}' has no effect here: every block declaring axis \
                     '{key}' is inactive in this configuration (size-sweep-only blocks \
                     need --n / --param n=…; default-grid blocks are disabled by it — \
                     see `ale-lab describe`)"
                )));
            }
        }

        let resolved = exp
            .used_order
            .iter()
            .map(|&name| {
                let vals = &exp.used[name];
                (
                    name.to_string(),
                    vals.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                )
            })
            .collect();
        Ok(Expansion {
            points: exp.points,
            resolved,
        })
    }

    /// Renders the declared axes for `ale-lab describe`.
    pub fn describe(&self) -> String {
        fn render_vals(vals: &[AxisValue]) -> String {
            if vals.is_empty() {
                "(from --param / the size ladder)".to_string()
            } else {
                vals.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        }
        fn render_axis(out: &mut String, axis: &Axis, indent: &str) {
            out.push_str(&format!(
                "{indent}--param {}=…  [{}]  default: {}\n",
                axis.name,
                axis.kind.label(),
                render_vals(&axis.default),
            ));
            if let Some(q) = &axis.quick {
                out.push_str(&format!("{indent}    quick: {}\n", render_vals(q)));
            }
            if axis.link.is_some() {
                out.push_str(&format!(
                    "{indent}    (values computed per outer axis unless overridden)\n"
                ));
            }
            if !axis.help.is_empty() {
                out.push_str(&format!("{indent}    {}\n", axis.help));
            }
        }
        let mut out = String::new();
        if !self.shared.is_empty() {
            out.push_str("shared axes (outermost):\n");
            for axis in &self.shared {
                render_axis(&mut out, axis, "  ");
            }
        }
        for block in &self.blocks {
            let when = match block.when {
                When::Always => "",
                When::SmallGrid => "  (default grids only — inactive under --n)",
                When::SizeSweep => "  (size sweeps only — active under --n)",
            };
            out.push_str(&format!("block '{}'{when}:\n", block.name));
            if block.axes.is_empty() {
                out.push_str("  (single point, no axes)\n");
            }
            for axis in &block.axes {
                render_axis(&mut out, axis, "  ");
            }
        }
        if let Some(l) = &self.ladder {
            out.push_str(&format!(
                "size ladder: --param {}=…  [int]  rewrites '{}' — {}\n",
                l.axis, l.target, l.help
            ));
        }
        out
    }

    /// The declared axes as a JSON value — the machine-readable face of
    /// [`ParamSpace::describe`], behind `ale-lab describe <scenario>
    /// --json`. Value lists render as their `Display` strings (the same
    /// tokens `--param` parses).
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        fn vals(vals: &[AxisValue]) -> Value {
            Value::Arr(
                vals.iter()
                    .map(|v| Value::Str(v.to_string()))
                    .collect::<Vec<_>>(),
            )
        }
        fn axis(a: &Axis) -> Value {
            Value::obj(vec![
                ("name".to_string(), Value::Str(a.name.to_string())),
                ("kind".to_string(), Value::Str(a.kind.label().to_string())),
                ("default".to_string(), vals(&a.default)),
                (
                    "quick".to_string(),
                    a.quick.as_deref().map_or(Value::Null, vals),
                ),
                ("linked".to_string(), Value::Bool(a.link.is_some())),
                ("help".to_string(), Value::Str(a.help.to_string())),
            ])
        }
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                Value::obj(vec![
                    ("name".to_string(), Value::Str(b.name.to_string())),
                    (
                        "when".to_string(),
                        Value::Str(
                            match b.when {
                                When::Always => "always",
                                When::SmallGrid => "small-grid",
                                When::SizeSweep => "size-sweep",
                            }
                            .to_string(),
                        ),
                    ),
                    (
                        "axes".to_string(),
                        Value::Arr(b.axes.iter().map(axis).collect::<Vec<_>>()),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        Value::obj(vec![
            (
                "shared".to_string(),
                Value::Arr(self.shared.iter().map(axis).collect::<Vec<_>>()),
            ),
            ("blocks".to_string(), Value::Arr(blocks)),
            (
                "ladder".to_string(),
                self.ladder.as_ref().map_or(Value::Null, |l| {
                    Value::obj(vec![
                        ("axis".to_string(), Value::Str(l.axis.to_string())),
                        ("target".to_string(), Value::Str(l.target.to_string())),
                        ("help".to_string(), Value::Str(l.help.to_string())),
                    ])
                }),
            ),
        ])
    }
}

/// The recursive expansion state.
struct Expander<'a> {
    space: &'a ParamSpace,
    cfg: &'a GridConfig,
    overrides: BTreeMap<String, Vec<AxisValue>>,
    computed_topos: Option<Vec<AxisValue>>,
    ladder_engaged: bool,
    points: Vec<GridPoint>,
    used_order: Vec<&'static str>,
    used: BTreeMap<&'static str, Vec<AxisValue>>,
    stack: Vec<(&'static str, AxisValue)>,
}

impl Expander<'_> {
    fn note_used(&mut self, name: &'static str, values: Vec<AxisValue>) {
        let entry = self.used.entry(name).or_insert_with(|| {
            self.used_order.push(name);
            Vec::new()
        });
        for v in values {
            if !entry.contains(&v) {
                entry.push(v);
            }
        }
    }

    fn ctx(&self) -> Ctx<'_> {
        Ctx {
            values: &self.stack,
            quick: self.cfg.quick,
            ladder: self.ladder_engaged,
        }
    }

    fn resolve(&self, axis: &Axis) -> Vec<AxisValue> {
        if let Some(vals) = self.overrides.get(axis.name) {
            return vals.clone();
        }
        if self.ladder_engaged {
            if let (Some(l), Some(topos)) = (&self.space.ladder, &self.computed_topos) {
                if l.target == axis.name {
                    return topos.clone();
                }
            }
        }
        if let Some(link) = &axis.link {
            if let Some(vals) = link(&self.ctx()) {
                return vals;
            }
        }
        if self.cfg.quick {
            if let Some(q) = &axis.quick {
                return q.clone();
            }
        }
        axis.default.clone()
    }

    fn run(&mut self, sweeping: bool) -> Result<(), LabError> {
        self.recurse_shared(0, sweeping)
    }

    fn recurse_shared(&mut self, depth: usize, sweeping: bool) -> Result<(), LabError> {
        let space = self.space;
        if depth == space.shared.len() {
            for bi in 0..space.blocks.len() {
                let active = match space.blocks[bi].when {
                    When::Always => true,
                    When::SmallGrid => !sweeping,
                    When::SizeSweep => sweeping,
                };
                if active {
                    self.recurse_block(bi, 0)?;
                }
            }
            return Ok(());
        }
        let values = self.resolve(&space.shared[depth]);
        let name = space.shared[depth].name;
        self.note_used(name, values.clone());
        for v in values {
            self.stack.push((name, v));
            self.recurse_shared(depth + 1, sweeping)?;
            self.stack.pop();
        }
        Ok(())
    }

    fn recurse_block(&mut self, bi: usize, depth: usize) -> Result<(), LabError> {
        let space = self.space;
        let block = &space.blocks[bi];
        if depth == block.axes.len() {
            let ctx = Ctx {
                values: &self.stack,
                quick: self.cfg.quick,
                ladder: self.ladder_engaged,
            };
            if let Some(mut point) = (block.build)(&ctx)? {
                point.values = self.stack.clone();
                // Mirror numeric axis values into the point's knob list
                // (ahead of builder-pushed knobs) so summaries keep
                // reading them by name, exactly as the legacy grids set
                // them with `.with(..)`.
                let mut params: Vec<(String, f64)> = self
                    .stack
                    .iter()
                    .filter_map(|(name, v)| match v {
                        AxisValue::Int(i) => Some(((*name).to_string(), *i as f64)),
                        AxisValue::Float(f) => Some(((*name).to_string(), *f)),
                        _ => None,
                    })
                    .collect();
                params.extend(std::mem::take(&mut point.params));
                point.params = params;
                self.points.push(point);
            }
            return Ok(());
        }
        let values = self.resolve(&block.axes[depth]);
        let name = block.axes[depth].name;
        self.note_used(name, values.clone());
        for v in values {
            self.stack.push((name, v));
            self.recurse_block(bi, depth + 1)?;
            self.stack.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GridConfig {
        GridConfig::default()
    }

    fn simple_space() -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "main",
            vec![
                Axis::topologies(
                    "topo",
                    [Topology::Cycle { n: 8 }, Topology::Complete { n: 4 }],
                ),
                Axis::floats("gamma", [0.1, 0.01]).quick_floats([0.1]),
            ],
            |ctx| {
                let topo = ctx.topology("topo")?;
                let gamma = ctx.float("gamma")?;
                Ok(Some(GridPoint::new(format!("{topo}/g={gamma}")).on(topo)))
            },
        )])
        .with_ladder("n", "topo", "cycles at each size", |ns| {
            ns.iter().map(|&n| Topology::Cycle { n }).collect()
        })
    }

    #[test]
    fn cartesian_expansion_is_row_major() {
        let exp = simple_space().expand(&cfg()).unwrap();
        let labels: Vec<&str> = exp.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "cycle(n=8)/g=0.1",
                "cycle(n=8)/g=0.01",
                "complete(n=4)/g=0.1",
                "complete(n=4)/g=0.01",
            ]
        );
        // Numeric axis values are mirrored into the knob list.
        assert_eq!(exp.points[1].param("gamma"), Some(0.01));
        // The resolved space lists the values actually used.
        assert_eq!(exp.resolved[0].0, "topo");
        assert_eq!(exp.resolved[1], ("gamma".into(), "0.1,0.01".into()));
    }

    #[test]
    fn quick_lists_and_param_overrides_apply() {
        let quick = simple_space()
            .expand(&GridConfig {
                quick: true,
                ..cfg()
            })
            .unwrap();
        assert_eq!(quick.points.len(), 2);
        let overridden = simple_space()
            .expand(&GridConfig {
                params: vec![("gamma".into(), vec!["0.5".into(), "0.25".into()])],
                ..cfg()
            })
            .unwrap();
        assert_eq!(overridden.points.len(), 4);
        assert_eq!(overridden.points[0].param("gamma"), Some(0.5));
        assert!(overridden
            .resolved
            .iter()
            .any(|(k, v)| k == "gamma" && v == "0.5,0.25"));
    }

    #[test]
    fn unknown_and_malformed_params_are_bad_args() {
        for params in [
            vec![("nope".to_string(), vec!["1".to_string()])],
            vec![("gamma".to_string(), vec!["abc".to_string()])],
            vec![("gamma".to_string(), Vec::new())],
            vec![("topo".to_string(), vec!["klein-bottle:4".to_string()])],
            vec![
                ("gamma".to_string(), vec!["1".to_string()]),
                ("gamma".to_string(), vec!["2".to_string()]),
            ],
        ] {
            let err = simple_space().expand(&GridConfig { params, ..cfg() });
            assert!(matches!(err, Err(LabError::BadArgs(_))));
        }
    }

    #[test]
    fn size_ladder_rewrites_topologies_unless_explicit() {
        let exp = simple_space()
            .expand(&GridConfig {
                ns: vec![5, 6],
                ..cfg()
            })
            .unwrap();
        let labels: Vec<&str> = exp.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "cycle(n=5)/g=0.1",
                "cycle(n=5)/g=0.01",
                "cycle(n=6)/g=0.1",
                "cycle(n=6)/g=0.01",
            ]
        );
        assert!(exp.resolved.iter().any(|(k, _)| k == "n"));
        // Explicit topologies beat the ladder.
        let exp = simple_space()
            .expand(&GridConfig {
                ns: vec![5],
                topologies: vec![Topology::Complete { n: 3 }],
                ..cfg()
            })
            .unwrap();
        assert!(exp.points.iter().all(|p| p.label.starts_with("complete")));
    }

    #[test]
    fn blocks_gate_on_the_sweep_mode_and_links_fire() {
        let space = || {
            ParamSpace::new(vec![
                Block::new("small", vec![Axis::ints("x", [1, 2])], |ctx| {
                    Ok(Some(GridPoint::new(format!("small/x={}", ctx.int("x")?))))
                })
                .when(When::SmallGrid),
                Block::new(
                    "ladder",
                    vec![
                        Axis::topologies("topo", []),
                        Axis::ints("k", [2]).linked(|ctx| {
                            let t = ctx.topology("topo").ok()?;
                            Some(vec![AxisValue::Int(t.node_count() as u64)])
                        }),
                    ],
                    |ctx| {
                        Ok(Some(GridPoint::new(format!(
                            "ladder/{}/k={}",
                            ctx.topology("topo")?,
                            ctx.int("k")?
                        ))))
                    },
                )
                .when(When::SizeSweep),
            ])
            .with_ladder("n", "topo", "cycles", |ns| {
                ns.iter().map(|&n| Topology::Cycle { n }).collect()
            })
        };
        let small = space().expand(&cfg()).unwrap();
        assert_eq!(small.points.len(), 2);
        assert!(small.points[0].label.starts_with("small/"));
        let sweep = space()
            .expand(&GridConfig {
                ns: vec![7],
                ..cfg()
            })
            .unwrap();
        assert_eq!(sweep.points.len(), 1);
        assert_eq!(sweep.points[0].label, "ladder/cycle(n=7)/k=7");
        // The link loses to an explicit override.
        let forced = space()
            .expand(&GridConfig {
                ns: vec![7],
                params: vec![("k".into(), vec!["3".into()])],
                ..cfg()
            })
            .unwrap();
        assert_eq!(forced.points[0].label, "ladder/cycle(n=7)/k=3");
        // An override that only inactive blocks could consume is an
        // error, not a silent no-op: 'topo' belongs to the SizeSweep
        // block, which is inactive without --n…
        let err = space().expand(&GridConfig {
            topologies: vec![Topology::Cycle { n: 9 }],
            ..cfg()
        });
        assert!(matches!(err, Err(LabError::BadArgs(_))));
        // …and 'x' belongs to the SmallGrid block, disabled by --n.
        let err = space().expand(&GridConfig {
            ns: vec![7],
            params: vec![("x".into(), vec!["5".into()])],
            ..cfg()
        });
        assert!(matches!(err, Err(LabError::BadArgs(_))));
    }

    #[test]
    fn shared_axes_interleave_blocks() {
        let space = ParamSpace::new(vec![
            Block::new("a", vec![Axis::ints("x", [1, 2])], |ctx| {
                Ok(Some(GridPoint::new(format!(
                    "{}/a/{}",
                    ctx.topology("topo")?,
                    ctx.int("x")?
                ))))
            }),
            Block::new("b", vec![Axis::ints("y", [9])], |ctx| {
                Ok(Some(GridPoint::new(format!(
                    "{}/b/{}",
                    ctx.topology("topo")?,
                    ctx.int("y")?
                ))))
            }),
        ])
        .with_shared(vec![Axis::topologies(
            "topo",
            [Topology::Cycle { n: 3 }, Topology::Cycle { n: 4 }],
        )]);
        let labels: Vec<String> = space
            .expand(&cfg())
            .unwrap()
            .points
            .into_iter()
            .map(|p| p.label)
            .collect();
        assert_eq!(
            labels,
            [
                "cycle(n=3)/a/1",
                "cycle(n=3)/a/2",
                "cycle(n=3)/b/9",
                "cycle(n=4)/a/1",
                "cycle(n=4)/a/2",
                "cycle(n=4)/b/9",
            ]
        );
    }

    #[test]
    fn kind_mismatch_across_blocks_is_rejected() {
        let space = ParamSpace::new(vec![
            Block::new("a", vec![Axis::ints("x", [1])], |_| Ok(None)),
            Block::new("b", vec![Axis::floats("x", [1.0])], |_| Ok(None)),
        ]);
        assert!(matches!(space.expand(&cfg()), Err(LabError::BadArgs(_))));
    }

    #[test]
    fn describe_renders_axes() {
        let text = simple_space().describe();
        assert!(text.contains("--param topo="));
        assert!(text.contains("--param gamma="));
        assert!(text.contains("quick: 0.1"));
        assert!(text.contains("size ladder"));
    }

    #[test]
    fn to_json_mirrors_the_declaration() {
        use crate::json::Value;
        let v = simple_space().to_json();
        let Some(Value::Arr(blocks)) = v.get("blocks") else {
            panic!("blocks array");
        };
        assert_eq!(blocks.len(), 1);
        assert_eq!(
            blocks[0].get("when").and_then(Value::as_str),
            Some("always")
        );
        let Some(Value::Arr(axes)) = blocks[0].get("axes") else {
            panic!("axes array");
        };
        assert_eq!(axes[0].get("name").and_then(Value::as_str), Some("topo"));
        assert_eq!(
            axes[0].get("kind").and_then(Value::as_str),
            Some("topology")
        );
        assert_eq!(axes[1].get("name").and_then(Value::as_str), Some("gamma"));
        // Value lists render as the same tokens --param parses.
        assert_eq!(
            axes[1].get("default").map(Value::render),
            Some(r#"["0.1","0.01"]"#.to_string())
        );
        assert_eq!(
            axes[1].get("quick").map(Value::render),
            Some(r#"["0.1"]"#.to_string())
        );
        assert_eq!(
            v.get("ladder")
                .and_then(|l| l.get("axis"))
                .and_then(Value::as_str),
            Some("n")
        );
        // Round-trips through the workspace JSON parser.
        let parsed = crate::json::parse(&v.render()).unwrap();
        assert_eq!(parsed.render(), v.render());
    }
}
