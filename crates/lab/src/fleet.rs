//! The fleet runner: deterministic parallel execution of indexed tasks.
//!
//! Two properties define it:
//!
//! 1. **Determinism at any worker count.** Tasks are identified by a dense
//!    index; every task's inputs (notably its RNG seed, derived by
//!    [`derive_seed`]) depend only on that index, never on scheduling.
//!    Results are returned ordered by index, so `workers = 1` and
//!    `workers = 64` produce byte-identical output.
//! 2. **No shared-lock hot path.** Workers pull indices from one atomic
//!    counter and accumulate results in *per-worker batches*, which are
//!    merged once at the end — replacing the old
//!    `Mutex<Vec<Option<T>>>`-per-result design in `ale_bench::sweep`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// SplitMix64 mixing step — the workspace-standard seed expander (the
/// same stream the CONGEST simulator uses for per-node seeds).
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the trial seed for `(stream, index)` under `master`.
///
/// Each grid point gets its own stream; each trial its own index. The
/// derivation is a pure function, so a fleet re-run with the same master
/// seed reproduces every trial bit-for-bit regardless of worker count,
/// and adding seeds to a run never perturbs existing trials.
pub fn derive_seed(master: u64, stream: u64, index: u64) -> u64 {
    splitmix64(splitmix64(master ^ splitmix64(stream.wrapping_add(0x5851_F42D_4C95_7F2D))) ^ index)
}

/// Clamps a requested worker count to something sane.
pub fn effective_workers(requested: usize) -> usize {
    requested.clamp(1, 256)
}

/// Default worker count: available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

/// Runs `f(0..tasks)` across `workers` threads, returning results ordered
/// by task index. See the module docs for the determinism contract.
///
/// # Panics
///
/// Propagates panics from `f` (the whole fleet aborts).
pub fn run_indexed<T, F>(tasks: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with_progress(tasks, workers, f, None)
}

/// [`run_indexed`] with an optional progress observer, called roughly
/// every 500ms with `(completed, total)` from a monitor thread.
pub fn run_indexed_with_progress<T, F>(
    tasks: usize,
    workers: usize,
    f: F,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = effective_workers(workers).min(tasks);
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let done = AtomicBool::new(false);

    let mut batches: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let completed = &completed;
                let f = &f;
                scope.spawn(move || {
                    // Inert unless a telemetry sink is installed.
                    let mut span =
                        ale_telemetry::Span::begin("worker-batch").attr("worker", w as u64);
                    let mut batch: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        batch.push((i, f(i)));
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    span.set_attr("tasks", batch.len());
                    drop(span);
                    batch
                })
            })
            .collect();

        if let Some(report) = progress {
            let done = &done;
            let completed = &completed;
            scope.spawn(move || {
                // Time-based throttling: one line per 500ms tick, and only
                // when the count moved since the last line — a stalled
                // fleet stays quiet instead of repeating itself.
                let mut last = 0usize;
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(500));
                    let c = completed.load(Ordering::Relaxed);
                    if c < tasks && c != last {
                        report(c, tasks);
                        last = c;
                    }
                }
            });
        }

        let batches: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect();
        done.store(true, Ordering::Relaxed);
        batches
    });

    // Merge per-worker batches into index order.
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    for batch in batches.iter_mut() {
        for (i, value) in batch.drain(..) {
            debug_assert!(slots[i].is_none(), "task {i} produced twice");
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = run_indexed(100, 8, |i| i * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn zero_tasks_and_one_worker() {
        let empty: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(empty.is_empty());
        assert_eq!(run_indexed(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let single: Vec<u64> = run_indexed(200, 1, |i| splitmix64(i as u64));
        for workers in [2, 3, 8, 32] {
            let multi: Vec<u64> = run_indexed(200, workers, |i| splitmix64(i as u64));
            assert_eq!(single, multi, "workers = {workers}");
        }
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        // Pure function: same inputs, same seed.
        assert_eq!(derive_seed(7, 3, 11), derive_seed(7, 3, 11));
        // Distinct across any single-coordinate change.
        let base = derive_seed(7, 3, 11);
        assert_ne!(base, derive_seed(8, 3, 11));
        assert_ne!(base, derive_seed(7, 4, 11));
        assert_ne!(base, derive_seed(7, 3, 12));
        // No collisions over a realistic grid.
        let mut seen = std::collections::HashSet::new();
        for stream in 0..64u64 {
            for index in 0..64u64 {
                assert!(seen.insert(derive_seed(1, stream, index)));
            }
        }
    }

    #[test]
    fn progress_observer_fires_for_slow_fleets() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out = run_indexed_with_progress(
            8,
            4,
            |i| {
                std::thread::sleep(Duration::from_millis(200));
                i
            },
            Some(&|done, total| {
                assert!(done <= total);
                calls.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(out.len(), 8);
        // 8 tasks × 200ms / 4 workers ≈ 400ms ⇒ at least one 500ms-ish tick
        // is *likely* but not guaranteed; only assert it did not crash.
    }
}
