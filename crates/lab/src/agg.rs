//! Bounded-memory streaming aggregation of trial records.
//!
//! Every metric (core cost counters plus scenario extras) is folded into a
//! Welford accumulator (mean/CI95/min/max — O(1) memory) plus a capped
//! sample buffer for exact medians. Below the cap (default 4096 samples
//! per metric per grid point — far above any realistic seed fleet) medians
//! are exact; beyond it the buffer stops growing, the median degrades to
//! the retained prefix, and [`MetricAgg::spilled`] flags it.

use crate::scenario::{GridPoint, TrialRecord};
use crate::stats::Welford;
use crate::table::Table;
use std::collections::BTreeMap;

/// Default per-metric sample cap.
pub const DEFAULT_SAMPLE_CAP: usize = 4096;

/// Streaming aggregate of one metric at one grid point.
#[derive(Debug, Clone)]
pub struct MetricAgg {
    /// Streaming moments.
    pub welford: Welford,
    samples: Vec<f64>,
    cap: usize,
    /// True when the sample buffer hit its cap (median is approximate).
    pub spilled: bool,
}

impl MetricAgg {
    fn new(cap: usize) -> Self {
        MetricAgg {
            welford: Welford::new(),
            samples: Vec::new(),
            cap,
            spilled: false,
        }
    }

    fn push(&mut self, x: f64) {
        self.welford.push(x);
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            self.spilled = true;
        }
    }

    /// Samples seen.
    pub fn count(&self) -> u64 {
        self.welford.count
    }

    /// Streaming mean.
    pub fn mean(&self) -> f64 {
        self.welford.mean
    }

    /// 95% CI half-width on the mean.
    pub fn ci95(&self) -> f64 {
        self.welford.ci95()
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.welford.max
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.welford.min
    }

    /// Median of the retained samples (exact unless [`MetricAgg::spilled`]).
    pub fn median(&self) -> f64 {
        crate::stats::median(&self.samples)
    }
}

/// All aggregates for one grid point.
#[derive(Debug, Clone)]
pub struct PointStats {
    /// Grid-point label.
    pub label: String,
    /// Topology family.
    pub family: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Network size.
    pub n: u64,
    /// The point's knobs (copied from the grid).
    pub params: Vec<(String, f64)>,
    /// Trials recorded.
    pub trials: u64,
    /// Trials with `ok = true`.
    pub ok: u64,
    metrics: BTreeMap<String, MetricAgg>,
    sample_cap: usize,
}

impl PointStats {
    /// Aggregation shell reconstructed from a stored record's header —
    /// the merge path, where the original `GridPoint` (and its parameter
    /// knobs) no longer exists. `params` stays empty; everything the
    /// summary CSV emits is present.
    fn from_record_header(r: &TrialRecord, sample_cap: usize) -> Self {
        PointStats {
            label: r.point.clone(),
            family: r.family.clone(),
            algorithm: r.algorithm.clone(),
            n: r.n,
            params: Vec::new(),
            trials: 0,
            ok: 0,
            metrics: BTreeMap::new(),
            sample_cap,
        }
    }

    fn new(point: &GridPoint, sample_cap: usize) -> Self {
        PointStats {
            label: point.label.clone(),
            family: point.family(),
            algorithm: point
                .algorithm
                .map_or_else(|| "-".to_string(), |a| a.to_string()),
            n: point.n as u64,
            params: point.params.clone(),
            trials: 0,
            ok: 0,
            metrics: BTreeMap::new(),
            sample_cap,
        }
    }

    fn record(&mut self, r: &TrialRecord) {
        self.trials += 1;
        if r.ok {
            self.ok += 1;
        }
        let cap = self.sample_cap;
        let mut push = |name: &str, value: f64| {
            self.metrics
                .entry(name.to_string())
                .or_insert_with(|| MetricAgg::new(cap))
                .push(value);
        };
        push("rounds", r.rounds as f64);
        push("congest_rounds", r.congest_rounds as f64);
        push("messages", r.messages as f64);
        push("bits", r.bits as f64);
        push("leaders", r.leaders as f64);
        for (k, v) in &r.extra {
            if v.is_finite() {
                push(k, *v);
            }
        }
    }

    /// The aggregate for a metric, if any trial reported it.
    pub fn metric(&self, name: &str) -> Option<&MetricAgg> {
        self.metrics.get(name)
    }

    /// Median shorthand (0 when the metric never appeared).
    pub fn median(&self, name: &str) -> f64 {
        self.metric(name).map_or(0.0, MetricAgg::median)
    }

    /// Mean shorthand (0 when the metric never appeared).
    pub fn mean(&self, name: &str) -> f64 {
        self.metric(name).map_or(0.0, MetricAgg::mean)
    }

    /// A point knob (copied from the grid at aggregation time).
    pub fn param(&self, key: &str) -> Option<f64> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Success rate in `[0, 1]`.
    pub fn ok_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.ok as f64 / self.trials as f64
        }
    }
}

/// The aggregated view of a whole run, point by point in grid order.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Scenario name.
    pub scenario: String,
    /// Master seed the trial seeds were derived from.
    pub master_seed: u64,
    /// Global seeds-per-point (points may override).
    pub seeds: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Per-point aggregates, in grid order.
    pub points: Vec<PointStats>,
}

impl RunSummary {
    /// Prepares empty aggregates for a grid.
    pub fn new(
        scenario: &str,
        grid: &[GridPoint],
        master_seed: u64,
        seeds: u64,
        workers: usize,
    ) -> Self {
        RunSummary {
            scenario: scenario.to_string(),
            master_seed,
            seeds,
            workers,
            points: grid
                .iter()
                .map(|p| PointStats::new(p, DEFAULT_SAMPLE_CAP))
                .collect(),
        }
    }

    /// Streams one record into its point's aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `point_index` is out of range (an engine bug).
    pub fn record(&mut self, point_index: usize, r: &TrialRecord) {
        self.points[point_index].record(r);
    }

    /// Rebuilds a summary from stored records alone (points in first-seen
    /// order) — the `merge` path, where grids survive only as manifest
    /// labels. Point parameter knobs are not stored in records, so
    /// [`PointStats::param`] returns `None` on the result; every column of
    /// [`RunSummary::summary_csv`] is reconstructed exactly.
    pub fn from_records(
        scenario: &str,
        master_seed: u64,
        seeds: u64,
        workers: usize,
        records: &[TrialRecord],
    ) -> Self {
        let mut summary = RunSummary {
            scenario: scenario.to_string(),
            master_seed,
            seeds,
            workers,
            points: Vec::new(),
        };
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for r in records {
            let pi = *index.entry(r.point.clone()).or_insert_with(|| {
                summary
                    .points
                    .push(PointStats::from_record_header(r, DEFAULT_SAMPLE_CAP));
                summary.points.len() - 1
            });
            summary.record(pi, r);
        }
        summary
    }

    /// Total trials across all points.
    pub fn total_trials(&self) -> u64 {
        self.points.iter().map(|p| p.trials).sum()
    }

    /// The generic cost table every scenario gets for free.
    pub fn generic_report(&self) -> String {
        let mut table = Table::new([
            "point",
            "n",
            "trials",
            "ok",
            "med msgs",
            "mean msgs ±95%",
            "med bits",
            "med congest rounds",
            "max rounds",
        ]);
        for p in &self.points {
            table.push_row([
                p.label.clone(),
                p.n.to_string(),
                p.trials.to_string(),
                format!("{}/{}", p.ok, p.trials),
                format!("{:.0}", p.median("messages")),
                format!(
                    "{:.0} ±{:.0}",
                    p.mean("messages"),
                    p.metric("messages").map_or(0.0, MetricAgg::ci95)
                ),
                format!("{:.0}", p.median("bits")),
                format!("{:.0}", p.median("congest_rounds")),
                format!("{:.0}", p.metric("rounds").map_or(0.0, MetricAgg::max)),
            ]);
        }
        format!(
            "# {} — {} trials, master seed {}\n\n{}",
            self.scenario,
            self.total_trials(),
            self.master_seed,
            table.to_markdown()
        )
    }

    /// Summary CSV: one row per (point, metric) with the streaming stats.
    pub fn summary_csv(&self) -> String {
        let mut table = Table::new([
            "point",
            "family",
            "algorithm",
            "n",
            "metric",
            "count",
            "mean",
            "ci95",
            "median",
            "min",
            "max",
            "spilled",
        ]);
        for p in &self.points {
            for (name, agg) in &p.metrics {
                table.push_row([
                    p.label.clone(),
                    p.family.clone(),
                    p.algorithm.clone(),
                    p.n.to_string(),
                    name.clone(),
                    agg.count().to_string(),
                    format!("{}", agg.mean()),
                    format!("{}", agg.ci95()),
                    format!("{}", agg.median()),
                    format!("{}", agg.min()),
                    format!("{}", agg.max()),
                    agg.spilled.to_string(),
                ]);
            }
        }
        table.to_csv()
    }

    /// The summary as keyed rows for the durable store: one `(point
    /// label, metric, row object)` triple per [`RunSummary::summary_csv`]
    /// line, in the same order, carrying the same fields.
    pub fn summary_rows(&self) -> Vec<(String, String, crate::json::Value)> {
        use crate::json::Value;
        let mut rows = Vec::new();
        for p in &self.points {
            for (name, agg) in &p.metrics {
                let row = Value::obj([
                    ("point".to_string(), Value::Str(p.label.clone())),
                    ("family".to_string(), Value::Str(p.family.clone())),
                    ("algorithm".to_string(), Value::Str(p.algorithm.clone())),
                    ("n".to_string(), Value::UInt(p.n)),
                    ("metric".to_string(), Value::Str(name.clone())),
                    ("count".to_string(), Value::UInt(agg.count())),
                    ("mean".to_string(), Value::Num(agg.mean())),
                    ("ci95".to_string(), Value::Num(agg.ci95())),
                    ("median".to_string(), Value::Num(agg.median())),
                    ("min".to_string(), Value::Num(agg.min())),
                    ("max".to_string(), Value::Num(agg.max())),
                    ("spilled".to_string(), Value::Bool(agg.spilled)),
                ]);
                rows.push((p.label.clone(), name.clone(), row));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridPoint;
    use ale_graph::Topology;

    fn record_with(point: &GridPoint, seed: u64, messages: u64, ok: bool) -> TrialRecord {
        let mut r = TrialRecord::new("t", point, seed);
        r.messages = messages;
        r.ok = ok;
        r.push_extra("territory", messages as f64 / 2.0);
        r
    }

    #[test]
    fn aggregates_stream_correctly() {
        let grid = vec![
            GridPoint::new("a").on(Topology::Cycle { n: 8 }),
            GridPoint::new("b").on(Topology::Complete { n: 4 }),
        ];
        let mut run = RunSummary::new("t", &grid, 1, 3, 2);
        for (i, msgs) in [10u64, 20, 30].iter().enumerate() {
            run.record(0, &record_with(&grid[0], i as u64, *msgs, true));
        }
        run.record(1, &record_with(&grid[1], 0, 100, false));
        assert_eq!(run.total_trials(), 4);
        let a = &run.points[0];
        assert_eq!(a.trials, 3);
        assert_eq!(a.ok, 3);
        assert_eq!(a.median("messages"), 20.0);
        assert_eq!(a.mean("messages"), 20.0);
        assert_eq!(a.median("territory"), 10.0);
        assert_eq!(a.metric("messages").unwrap().max(), 30.0);
        assert_eq!(run.points[1].ok_rate(), 0.0);
        let report = run.generic_report();
        assert!(report.contains("| a |"));
        let csv = run.summary_csv();
        assert!(csv.contains("a,cycle,-,8,messages,3"));
    }

    #[test]
    fn sample_cap_spills_but_keeps_moments() {
        let mut agg = MetricAgg::new(4);
        for i in 0..100 {
            agg.push(i as f64);
        }
        assert!(agg.spilled);
        assert_eq!(agg.count(), 100);
        assert!((agg.mean() - 49.5).abs() < 1e-9);
        assert_eq!(agg.max(), 99.0);
        // Median falls back to the retained prefix.
        assert_eq!(agg.median(), 1.5);
    }
}
