//! Table/series emitters: markdown for EXPERIMENTS.md, CSV and JSON for
//! downstream plotting.

use crate::json::ToJson;
use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (naive quoting: fields containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(quote).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(quote).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Serializes any experiment record to pretty JSON (for archival next to
/// the printed tables).
pub fn to_json<T: ToJson>(value: &T) -> String {
    value.to_json().render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["n", "messages"]);
        t.push_row(["16", "1234"]);
        t.push_row(["32", "5678"]);
        let md = t.to_markdown();
        assert!(md.contains("| n | messages |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 32 | 5678 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn json_roundtrip() {
        use crate::json::Value;
        struct R {
            n: usize,
            rate: f64,
        }
        impl ToJson for R {
            fn to_json(&self) -> Value {
                Value::obj([
                    ("n".to_string(), Value::UInt(self.n as u64)),
                    ("rate".to_string(), Value::Num(self.rate)),
                ])
            }
        }
        let s = to_json(&R { n: 4, rate: 0.5 });
        assert!(s.contains("\"n\": 4"));
    }
}
