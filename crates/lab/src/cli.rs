//! The `ale-lab` command-line interface, also backing the legacy
//! per-figure binaries (which call [`legacy_main`]).
//!
//! ```text
//! ale-lab list
//! ale-lab run <scenario> [--seeds N] [--workers N] [--master-seed S]
//!                        [--quick] [--n 64,128] [--topo complete:64,...]
//!                        [--out DIR] [--quiet]
//! ale-lab export <trials.jsonl> [--csv PATH]
//! ```

use crate::engine::{execute, RunSpec};
use crate::registry;
use crate::scenario::LabError;
use ale_graph::Topology;
use std::path::PathBuf;

/// Usage text (also the README example source).
pub const USAGE: &str = "\
ale-lab — deterministic parallel experiment orchestration

USAGE:
    ale-lab list                       list registered scenarios
    ale-lab run <scenario> [options]   run a scenario's grid × seed fleet
    ale-lab export <trials.jsonl> [--csv PATH]
                                       convert a stored JSONL log to CSV
    ale-lab help                       this text

RUN OPTIONS:
    --seeds N         seeds per grid point (default: scenario-specific)
    --workers N       worker threads (default: available parallelism)
    --master-seed S   master seed for the trial-seed stream (default 1)
    --quick           shrink the grid and seed counts for a smoke run
    --n A,B,...       override the scenario's size sweep
    --topo T,...      override the topology list (e.g. complete:64,
                      torus:8x8, rregular:64x4, cycle:32)
    --out DIR         persist manifest.json, trials.jsonl, trials.csv,
                      summary.csv under DIR
    --quiet           suppress progress lines on stderr

EXAMPLES:
    ale-lab run table1 --n 64 --seeds 32 --workers 8 --out runs/table1
    ale-lab run cautious --quick
    ale-lab export runs/table1/trials.jsonl --csv runs/table1/flat.csv
";

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, LabError> {
    value
        .ok_or_else(|| LabError::BadArgs(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| LabError::BadArgs(format!("{flag} needs an unsigned integer")))
}

fn parse_args(args: &[String]) -> Result<(String, RunSpec), LabError> {
    let mut it = args.iter().cloned();
    let scenario = it
        .next()
        .ok_or_else(|| LabError::BadArgs("run needs a scenario name".into()))?;
    let mut spec = RunSpec {
        progress: true,
        ..RunSpec::default()
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => spec.seeds = Some(parse_u64("--seeds", it.next())?),
            "--workers" => spec.workers = parse_u64("--workers", it.next())? as usize,
            "--master-seed" => spec.master_seed = parse_u64("--master-seed", it.next())?,
            "--quick" => spec.grid.quick = true,
            "--quiet" => spec.progress = false,
            "--n" => {
                let list = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--n needs a value".into()))?;
                for piece in list.split(',') {
                    spec.grid.ns.push(
                        piece.trim().parse().map_err(|_| {
                            LabError::BadArgs(format!("--n: '{piece}' is not a size"))
                        })?,
                    );
                }
            }
            "--topo" => {
                let list = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--topo needs a value".into()))?;
                for piece in list.split(',') {
                    let topo: Topology = piece
                        .trim()
                        .parse()
                        .map_err(|e| LabError::BadArgs(format!("--topo: {e}")))?;
                    spec.grid.topologies.push(topo);
                }
            }
            "--out" => {
                spec.out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LabError::BadArgs("--out needs a directory".into())
                    })?));
            }
            other => {
                return Err(LabError::BadArgs(format!(
                    "unknown run option '{other}' (see `ale-lab help`)"
                )))
            }
        }
    }
    Ok((scenario, spec))
}

fn cmd_list() -> String {
    let mut out = String::from("registered scenarios:\n");
    for s in registry::all() {
        out.push_str(&format!("  {:<20} {}\n", s.name(), s.description()));
    }
    out.push_str("\nrun one with: ale-lab run <scenario> [--quick] [--seeds N] ...\n");
    out
}

fn cmd_run(args: &[String]) -> Result<String, LabError> {
    let (name, spec) = parse_args(args)?;
    let scenario = registry::find(&name).ok_or_else(|| LabError::UnknownScenario(name.clone()))?;
    let output = execute(scenario.as_ref(), &spec)?;
    let mut text = output.report;
    if let Some(dir) = &spec.out {
        text.push_str(&format!(
            "\nresults stored under {} (manifest.json, trials.jsonl, trials.csv, summary.csv)\n",
            dir.display()
        ));
    }
    Ok(text)
}

fn cmd_export(args: &[String]) -> Result<String, LabError> {
    let mut it = args.iter().cloned();
    let jsonl = PathBuf::from(
        it.next()
            .ok_or_else(|| LabError::BadArgs("export needs a trials.jsonl path".into()))?,
    );
    let mut csv_out: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => {
                csv_out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LabError::BadArgs("--csv needs a path".into())
                    })?));
            }
            other => {
                return Err(LabError::BadArgs(format!(
                    "unknown export option '{other}'"
                )))
            }
        }
    }
    let csv = crate::store::csv_from_jsonl(&jsonl)?;
    match csv_out {
        Some(path) => {
            std::fs::write(&path, &csv)
                .map_err(|e| LabError::Io(format!("{}: {e}", path.display())))?;
            Ok(format!("wrote {}\n", path.display()))
        }
        None => Ok(csv),
    }
}

/// Runs the CLI on pre-split arguments (no `argv[0]`), returning the text
/// to print on success.
///
/// # Errors
///
/// All argument/scenario/IO failures as [`LabError`].
pub fn run(args: &[String]) -> Result<String, LabError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_string()),
        Some("list") => Ok(cmd_list()),
        Some("run") => cmd_run(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some(other) => Err(LabError::BadArgs(format!(
            "unknown command '{other}' (see `ale-lab help`)"
        ))),
    }
}

/// Prints to stdout, swallowing `EPIPE` so `ale-lab ... | head` exits
/// quietly instead of panicking mid-`println!`.
fn emit(text: &str) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{text}");
}

/// Entry point for `main`: parses `std::env::args`, prints, returns the
/// process exit code.
pub fn main_from_env() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(text) => {
            emit(&text);
            0
        }
        Err(e) => {
            eprintln!("ale-lab: {e}");
            2
        }
    }
}

/// Entry point for the legacy per-figure binaries: `<bin> [--quick]`
/// becomes `ale-lab run <scenario> [--quick]` with the legacy defaults
/// (auto workers, master seed 1, scenario-default seeds).
pub fn legacy_main(scenario: &str) -> i32 {
    // Legacy binaries only ever took `--quick`; every flag (it and the
    // lab's own) passes straight through to `run`.
    let mut args = vec!["run".to_string(), scenario.to_string()];
    args.extend(std::env::args().skip(1));
    match run(&args) {
        Ok(text) => {
            emit(&text);
            0
        }
        Err(e) => {
            eprintln!("{scenario}: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_list() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        let list = run(&strs(&["list"])).unwrap();
        assert!(list.contains("table1"));
        assert!(list.contains("ablation-cautious"));
    }

    #[test]
    fn rejects_unknown_commands_and_scenarios() {
        assert!(matches!(
            run(&strs(&["frobnicate"])),
            Err(LabError::BadArgs(_))
        ));
        assert!(matches!(
            run(&strs(&["run", "nope"])),
            Err(LabError::UnknownScenario(_))
        ));
        assert!(matches!(
            run(&strs(&["run", "table1", "--bogus"])),
            Err(LabError::BadArgs(_))
        ));
    }

    #[test]
    fn parses_run_options() {
        let (name, spec) = parse_args(&strs(&[
            "table1",
            "--seeds",
            "32",
            "--workers",
            "8",
            "--master-seed",
            "99",
            "--quick",
            "--n",
            "64,128",
            "--topo",
            "complete:16,cycle:12",
            "--out",
            "runs/x",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(name, "table1");
        assert_eq!(spec.seeds, Some(32));
        assert_eq!(spec.workers, 8);
        assert_eq!(spec.master_seed, 99);
        assert!(spec.grid.quick);
        assert_eq!(spec.grid.ns, vec![64, 128]);
        assert_eq!(spec.grid.topologies.len(), 2);
        assert_eq!(spec.out.as_deref(), Some(std::path::Path::new("runs/x")));
        assert!(!spec.progress);
    }

    #[test]
    fn bad_numbers_are_rejected() {
        assert!(parse_args(&strs(&["t", "--seeds", "many"])).is_err());
        assert!(parse_args(&strs(&["t", "--n", "64,x"])).is_err());
        assert!(parse_args(&strs(&["t", "--topo", "klein-bottle:4"])).is_err());
    }
}
