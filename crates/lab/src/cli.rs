//! The `ale-lab` command-line interface, also backing the legacy
//! per-figure binaries (which call [`legacy_main`]).
//!
//! ```text
//! ale-lab list
//! ale-lab describe <scenario> [--json]
//! ale-lab run <scenario> [--seeds N] [--workers N] [--master-seed S]
//!                        [--quick] [--param key=v1,v2,...]
//!                        [--n 64,128] [--topo complete:64,...]
//!                        [--algo this-work,kutten15] [--shard i/k]
//!                        [--out DIR] [--telemetry PATH] [--quiet]
//! ale-lab run --resume <run-dir> [--workers N] [--quiet]
//! ale-lab export <trials.jsonl> [--csv PATH]
//! ale-lab merge <run-dir> <run-dir> ... [--out DIR]
//! ale-lab check <summary.csv|run-dir> --baseline <summary.csv|run-dir>
//!               [--tolerance 0.25] [--metrics rounds,messages]
//! ale-lab report <telemetry.jsonl>
//! ale-lab bench [--quick] [--out DIR]
//! ```

use crate::check::{check_files, CheckOptions};
use crate::engine::{execute, RunSpec};
use crate::registry;
use crate::runners::Algorithm;
use crate::scenario::LabError;
use ale_graph::Topology;
use std::path::PathBuf;

/// Usage text (also the README example source).
pub const USAGE: &str = "\
ale-lab — deterministic parallel experiment orchestration

USAGE:
    ale-lab list                       list registered scenarios
    ale-lab describe <scenario> [--json]
                                       show a scenario's declared parameter
                                       space (axes, kinds, defaults);
                                       --json emits a machine-readable dump
    ale-lab run <scenario> [options]   run a scenario's grid × seed fleet
    ale-lab run --resume <run-dir> [--workers N] [--quiet]
                                       complete an interrupted run in
                                       place: the invocation is rebuilt
                                       from the stored manifest, trials
                                       already durable in the trials.db
                                       journal are skipped, and the
                                       finished store is byte-identical
                                       to an uninterrupted run
    ale-lab export <trials.jsonl> [--csv PATH]
                                       convert a stored JSONL log to CSV
    ale-lab merge <run-dir> <run-dir> ... [--out DIR]
                                       union sharded run directories after
                                       validating their manifests agree; a
                                       complete shard set restores the
                                       unsharded run byte for byte (omit
                                       --out for a dry-run validation)
    ale-lab check <summary.csv|run-dir> --baseline <summary.csv|run-dir> [options]
                                       fail (exit 1) on cost regressions
                                       vs a stored baseline summary; run
                                       directories are read from their
                                       durable store (trials.db) and
                                       incomplete runs refused; two
                                       BENCH_memory.json files instead
                                       gate bytes/node (tolerance 0.10)
    ale-lab report <telemetry.jsonl>   per-phase wall-clock breakdown of a
                                       `run --telemetry` event stream (top
                                       spans, per-point throughput,
                                       histograms)
    ale-lab bench [--quick] [--out DIR]
                                       in-process microbenchmarks; writes
                                       BENCH_memory.json (bytes/node of
                                       the large-n revocable engine),
                                       BENCH_simulator.json and
                                       BENCH_diffusion.json (default: the
                                       current directory)
    ale-lab serve <run-dir>... [--addr host:port] [--workers N]
                                       serve mounted run directories
                                       read-only over HTTP (default
                                       127.0.0.1:7878): GET /runs,
                                       /runs/{id}/manifest, …/summary,
                                       …/trials?point=…&seed=…, …/space,
                                       …/tail?from=N&wait=S (live journal
                                       tail with a byte cursor), /healthz,
                                       /metrics; incomplete runs are
                                       served with \"complete\": false
    ale-lab help                       this text

RUN OPTIONS:
    --seeds N         seeds per grid point (default: scenario-specific)
    --workers N       worker threads (default: available parallelism)
    --master-seed S   master seed for the trial-seed stream (default 1)
    --quick           shrink the grid and seed counts for a smoke run
    --param K=V1,V2   override any declared axis of the scenario's
                      parameter space (see `ale-lab describe <scenario>`);
                      repeatable, validated — unknown keys and unparseable
                      values exit 2. New sweeps need no code. The
                      engine-level pseudo-axis seeds-per-point=N sets
                      the per-point seed count like --seeds (exactly
                      one positive integer; conflicts with --seeds);
                      graph-seed=S1,S2 sweeps the random-topology
                      build seed (distinct u64s), multiplying every
                      grid point per listed seed
    --n A,B,...       sugar for --param n=A,B — engages the scenario's
                      size ladder (diffusion/thresholds/walks/revocable
                      build sparse large-n ladders)
    --topo T,...      sugar for --param topo=T,... (e.g. complete:64,
                      torus:8x8, rregular:64x4, cycle:32); explicit
                      topologies win over the size ladder
    --algo A,B,...    run only these algorithms of an algorithm-grid
                      scenario (this-work, gilbert18, kutten15,
                      flood-chg, flood-all); seeds stay aligned with
                      the unfiltered run
    --shard I/K       run every K-th grid point starting at I; the K
                      shards of a sweep union to the full run byte for
                      byte (manifest records the shard)
    --out DIR         persist the durable run store under DIR:
                      manifest.json, the trials.db keyed journal (each
                      trial durable the moment it completes — the state
                      `run --resume` recovers), trials.jsonl, trials.csv,
                      summary.csv
    --telemetry PATH  stream structured events (spans, counters,
                      histograms) to PATH as JSONL; with --out the stream
                      is also copied to DIR/telemetry.jsonl — a
                      side-channel outside the byte-identical store
                      guarantees (inspect with `ale-lab report PATH`)
    --quiet           suppress progress lines on stderr

CHECK OPTIONS:
    --baseline PATH   the baseline summary.csv or BENCH_memory.json
                      (required)
    --tolerance T     allowed relative mean growth (default 0.25 for
                      summaries, 0.10 for memory benches; setting it
                      overrides both)
    --metrics A,B     metrics to gate (default rounds, congest_rounds,
                      messages, bits; ignored for memory benches)

EXAMPLES:
    ale-lab run table1 --n 64 --seeds 32 --workers 8 --out runs/table1
    ale-lab run table1 --algo this-work,kutten15 --quick
    ale-lab describe diffusion
    ale-lab run diffusion --param gamma=0.1,0.3 --param n=512 --quick
    ale-lab run diffusion --n 20000 --quick
    ale-lab run revocable --n 20000 --quick
    ale-lab run scaling --shard 0/4 --out runs/shard0
    ale-lab run --resume runs/shard0
    ale-lab merge runs/shard0 runs/shard1 runs/shard2 runs/shard3 --out runs/full
    ale-lab export runs/table1/trials.jsonl --csv runs/table1/flat.csv
    ale-lab check runs/new/summary.csv --baseline runs/base/summary.csv
    ale-lab run diffusion --quick --telemetry /tmp/t.jsonl
    ale-lab report /tmp/t.jsonl
    ale-lab describe revocable --json
    ale-lab bench --quick
    ale-lab serve runs/table1 runs/shard0 --addr 127.0.0.1:7878
";

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, LabError> {
    value
        .ok_or_else(|| LabError::BadArgs(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| LabError::BadArgs(format!("{flag} needs an unsigned integer")))
}

fn parse_args(args: &[String]) -> Result<(String, RunSpec), LabError> {
    let mut it = args.iter().cloned();
    let scenario = it
        .next()
        .ok_or_else(|| LabError::BadArgs("run needs a scenario name".into()))?;
    let mut spec = RunSpec {
        progress: true,
        ..RunSpec::default()
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => spec.seeds = Some(parse_u64("--seeds", it.next())?),
            "--workers" => spec.workers = parse_u64("--workers", it.next())? as usize,
            "--master-seed" => spec.master_seed = parse_u64("--master-seed", it.next())?,
            "--quick" => spec.grid.quick = true,
            "--quiet" => spec.progress = false,
            "--n" => {
                let list = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--n needs a value".into()))?;
                for piece in list.split(',') {
                    spec.grid.ns.push(
                        piece.trim().parse().map_err(|_| {
                            LabError::BadArgs(format!("--n: '{piece}' is not a size"))
                        })?,
                    );
                }
            }
            "--topo" => {
                let list = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--topo needs a value".into()))?;
                for piece in list.split(',') {
                    let topo: Topology = piece
                        .trim()
                        .parse()
                        .map_err(|e| LabError::BadArgs(format!("--topo: {e}")))?;
                    spec.grid.topologies.push(topo);
                }
            }
            "--algo" => {
                let list = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--algo needs a value".into()))?;
                for piece in list.split(',') {
                    let algo = Algorithm::from_name(piece.trim()).ok_or_else(|| {
                        LabError::BadArgs(format!(
                            "--algo: unknown algorithm '{}' (known: {})",
                            piece.trim(),
                            Algorithm::ALL
                                .iter()
                                .map(|a| a.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })?;
                    spec.algos.push(algo);
                }
            }
            "--param" => {
                let value = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--param needs key=v1,v2,...".into()))?;
                let (key, list) = value.split_once('=').ok_or_else(|| {
                    LabError::BadArgs(format!("--param: '{value}' is not key=v1,v2,..."))
                })?;
                let key = key.trim();
                if key.is_empty() {
                    return Err(LabError::BadArgs("--param: empty key".into()));
                }
                // Values stay raw strings here; the engine validates them
                // against the scenario's declared space (kind-aware).
                spec.grid.params.push((
                    key.to_string(),
                    list.split(',')
                        .map(|v| v.trim().to_string())
                        .filter(|v| !v.is_empty())
                        .collect(),
                ));
            }
            "--shard" => {
                let value = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--shard needs a value (i/k)".into()))?;
                spec.shard = parse_shard(&value)?;
            }
            "--out" => {
                spec.out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LabError::BadArgs("--out needs a directory".into())
                    })?));
            }
            "--telemetry" => {
                spec.telemetry =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LabError::BadArgs("--telemetry needs a file path".into())
                    })?));
            }
            other => {
                return Err(LabError::BadArgs(format!(
                    "unknown run option '{other}' (see `ale-lab help`)"
                )))
            }
        }
    }
    Ok((scenario, spec))
}

fn parse_shard(value: &str) -> Result<(u64, u64), LabError> {
    let bad = || LabError::BadArgs(format!("--shard: '{value}' is not i/k with i < k"));
    let (i, k) = value.split_once('/').ok_or_else(bad)?;
    let i: u64 = i.trim().parse().map_err(|_| bad())?;
    let k: u64 = k.trim().parse().map_err(|_| bad())?;
    if k == 0 || i >= k {
        return Err(bad());
    }
    Ok((i, k))
}

fn cmd_list() -> String {
    let mut out = String::from("registered scenarios:\n");
    for s in registry::all() {
        out.push_str(&format!("  {:<20} {}\n", s.name(), s.description()));
    }
    out.push_str("\nrun one with: ale-lab run <scenario> [--quick] [--seeds N] ...\n");
    out
}

fn cmd_describe(args: &[String]) -> Result<String, LabError> {
    let name = args
        .first()
        .ok_or_else(|| LabError::BadArgs("describe needs a scenario name".into()))?;
    let mut json = false;
    for extra in &args[1..] {
        match extra.as_str() {
            "--json" => json = true,
            other => {
                return Err(LabError::BadArgs(format!(
                    "unknown describe option '{other}'"
                )))
            }
        }
    }
    let scenario = registry::find(name).ok_or_else(|| LabError::UnknownScenario(name.clone()))?;
    let space = scenario.space();
    // Validate the declaration while we are here (duplicate names with
    // conflicting kinds would otherwise only surface on `run`).
    space.axis_kinds()?;
    if json {
        // Shared with `GET /runs/{id}/space` so the served space stays
        // byte-identical to this dump.
        return Ok(crate::serve::describe_json(scenario.as_ref()).render_pretty());
    }
    Ok(format!(
        "{} — {}
default seeds/point: {} (quick: {})

{}
override any axis with: ale-lab run {} --param <axis>=v1,v2,...
",
        scenario.name(),
        scenario.description(),
        scenario.default_seeds(false),
        scenario.default_seeds(true),
        space.describe(),
        scenario.name(),
    ))
}

fn cmd_run(args: &[String]) -> Result<String, LabError> {
    if args.first().map(String::as_str) == Some("--resume") {
        return cmd_resume(&args[1..]);
    }
    let (name, spec) = parse_args(args)?;
    let scenario = registry::find(&name).ok_or_else(|| LabError::UnknownScenario(name.clone()))?;
    let output = execute(scenario.as_ref(), &spec)?;
    let mut text = output.report;
    if let Some(dir) = &spec.out {
        text.push_str(&format!(
            "\nresults stored under {} (manifest.json, trials.db, trials.jsonl, trials.csv, \
             summary.csv)\n",
            dir.display()
        ));
    }
    Ok(text)
}

fn cmd_resume(args: &[String]) -> Result<String, LabError> {
    let mut it = args.iter().cloned();
    let dir = PathBuf::from(
        it.next()
            .ok_or_else(|| LabError::BadArgs("run --resume needs a run directory".into()))?,
    );
    let mut workers: Option<usize> = None;
    let mut progress = true;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => workers = Some(parse_u64("--workers", it.next())? as usize),
            "--quiet" => progress = false,
            other => {
                return Err(LabError::BadArgs(format!(
                    "unknown resume option '{other}' — --resume reuses the stored invocation \
                     (only --workers and --quiet apply)"
                )))
            }
        }
    }
    let output = crate::engine::resume(&dir, workers, progress)?;
    let mut text = output.report;
    text.push_str(&format!(
        "\nresumed run completed in place under {} (manifest.json, trials.db, trials.jsonl, \
         trials.csv, summary.csv)\n",
        dir.display()
    ));
    Ok(text)
}

fn cmd_export(args: &[String]) -> Result<String, LabError> {
    let mut it = args.iter().cloned();
    let jsonl = PathBuf::from(
        it.next()
            .ok_or_else(|| LabError::BadArgs("export needs a trials.jsonl path".into()))?,
    );
    let mut csv_out: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => {
                csv_out =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LabError::BadArgs("--csv needs a path".into())
                    })?));
            }
            other => {
                return Err(LabError::BadArgs(format!(
                    "unknown export option '{other}'"
                )))
            }
        }
    }
    let csv = crate::store::csv_from_jsonl(&jsonl)?;
    match csv_out {
        Some(path) => {
            std::fs::write(&path, &csv)
                .map_err(|e| LabError::Io(format!("{}: {e}", path.display())))?;
            Ok(format!("wrote {}\n", path.display()))
        }
        None => Ok(csv),
    }
}

fn cmd_merge(args: &[String]) -> Result<String, LabError> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or_else(|| {
                    LabError::BadArgs("--out needs a directory".into())
                })?));
            }
            flag if flag.starts_with("--") => {
                return Err(LabError::BadArgs(format!("unknown merge option '{flag}'")))
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    crate::merge::merge_dirs(&dirs, out.as_deref())
}

fn cmd_check(args: &[String]) -> Result<String, LabError> {
    let mut it = args.iter().cloned();
    let current = PathBuf::from(
        it.next()
            .ok_or_else(|| LabError::BadArgs("check needs a summary.csv path".into()))?,
    );
    let mut baseline: Option<PathBuf> = None;
    let mut opts = CheckOptions::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        LabError::BadArgs("--baseline needs a path".into())
                    })?));
            }
            "--tolerance" => {
                let v = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--tolerance needs a value".into()))?;
                opts.tolerance = v.parse().map_err(|_| {
                    LabError::BadArgs(format!("--tolerance: '{v}' is not a number"))
                })?;
                if opts.tolerance.is_nan() || opts.tolerance < 0.0 {
                    return Err(LabError::BadArgs("--tolerance must be non-negative".into()));
                }
                // An explicit tolerance overrides both gates; the tighter
                // memory default only applies when the flag is absent.
                opts.memory_tolerance = opts.tolerance;
            }
            "--metrics" => {
                let list = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--metrics needs a value".into()))?;
                opts.metrics
                    .extend(list.split(',').map(|m| m.trim().to_string()));
            }
            other => return Err(LabError::BadArgs(format!("unknown check option '{other}'"))),
        }
    }
    let baseline =
        baseline.ok_or_else(|| LabError::BadArgs("check requires --baseline <path>".into()))?;
    check_files(&current, &baseline, &opts)
}

fn cmd_report(args: &[String]) -> Result<String, LabError> {
    let path = args
        .first()
        .ok_or_else(|| LabError::BadArgs("report needs a telemetry.jsonl path".into()))?;
    if let Some(extra) = args.get(1) {
        return Err(LabError::BadArgs(format!(
            "unknown report option '{extra}'"
        )));
    }
    crate::report::report_file(std::path::Path::new(path))
}

fn cmd_bench(args: &[String]) -> Result<String, LabError> {
    let mut quick = false;
    let mut out = PathBuf::from(".");
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = PathBuf::from(
                    it.next()
                        .ok_or_else(|| LabError::BadArgs("--out needs a directory".into()))?,
                );
            }
            other => return Err(LabError::BadArgs(format!("unknown bench option '{other}'"))),
        }
    }
    crate::bench::run(quick, &out)
}

fn cmd_serve(args: &[String]) -> Result<String, LabError> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = ale_serve::ServerConfig::default().workers;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .ok_or_else(|| LabError::BadArgs("--addr needs host:port".into()))?;
            }
            "--workers" => {
                workers = parse_u64("--workers", it.next())? as usize;
                if workers == 0 {
                    return Err(LabError::BadArgs("--workers must be at least 1".into()));
                }
            }
            flag if flag.starts_with("--") => {
                return Err(LabError::BadArgs(format!("unknown serve option '{flag}'")))
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    let app = crate::serve::ServeApp::new(&dirs)?;
    let cfg = ale_serve::ServerConfig {
        workers,
        ..ale_serve::ServerConfig::default()
    };
    // Bad addresses and ports already in use are usage errors (exit 2),
    // same as an unservable run directory.
    let server = ale_serve::Server::bind(&addr, cfg)
        .map_err(|e| LabError::BadArgs(format!("cannot listen on '{addr}': {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| LabError::Io(format!("{addr}: {e}")))?;
    for (id, dir) in app.mounts() {
        eprintln!("mounted {} from {}", id, dir.display());
    }
    eprintln!("serving on http://{local} (GET /runs; ctrl-c to stop)");
    let handler: ale_serve::Handler = std::sync::Arc::new(move |req| app.handle(req));
    server
        .run(handler)
        .map_err(|e| LabError::Io(format!("serve: {e}")))?;
    Ok(String::new())
}

/// Runs the CLI on pre-split arguments (no `argv\[0\]`), returning the text
/// to print on success.
///
/// # Errors
///
/// All argument/scenario/IO failures as [`LabError`].
pub fn run(args: &[String]) -> Result<String, LabError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_string()),
        Some("list") => Ok(cmd_list()),
        Some("describe") => cmd_describe(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some(other) => Err(LabError::BadArgs(format!(
            "unknown command '{other}' (see `ale-lab help`)"
        ))),
    }
}

/// Prints to stdout, swallowing `EPIPE` so `ale-lab ... | head` exits
/// quietly instead of panicking mid-`println!`.
fn emit(text: &str) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{text}");
}

/// Entry point for `main`: parses `std::env::args`, prints, returns the
/// process exit code — 0 on success, 1 when `check` found regressions,
/// 2 on usage/runtime errors.
pub fn main_from_env() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(text) => {
            emit(&text);
            0
        }
        Err(e @ LabError::Regression(_)) => {
            eprintln!("ale-lab: {e}");
            1
        }
        Err(e) => {
            eprintln!("ale-lab: {e}");
            2
        }
    }
}

/// Entry point for the legacy per-figure binaries: `<bin> [--quick]`
/// becomes `ale-lab run <scenario> [--quick]` with the legacy defaults
/// (auto workers, master seed 1, scenario-default seeds).
pub fn legacy_main(scenario: &str) -> i32 {
    // Legacy binaries only ever took `--quick`; every flag (it and the
    // lab's own) passes straight through to `run`.
    let mut args = vec!["run".to_string(), scenario.to_string()];
    args.extend(std::env::args().skip(1));
    match run(&args) {
        Ok(text) => {
            emit(&text);
            0
        }
        Err(e) => {
            eprintln!("{scenario}: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_list() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        let list = run(&strs(&["list"])).unwrap();
        assert!(list.contains("table1"));
        assert!(list.contains("ablation-cautious"));
    }

    #[test]
    fn rejects_unknown_commands_and_scenarios() {
        assert!(matches!(
            run(&strs(&["frobnicate"])),
            Err(LabError::BadArgs(_))
        ));
        assert!(matches!(
            run(&strs(&["run", "nope"])),
            Err(LabError::UnknownScenario(_))
        ));
        assert!(matches!(
            run(&strs(&["run", "table1", "--bogus"])),
            Err(LabError::BadArgs(_))
        ));
    }

    #[test]
    fn parses_run_options() {
        let (name, spec) = parse_args(&strs(&[
            "table1",
            "--seeds",
            "32",
            "--workers",
            "8",
            "--master-seed",
            "99",
            "--quick",
            "--n",
            "64,128",
            "--topo",
            "complete:16,cycle:12",
            "--out",
            "runs/x",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(name, "table1");
        assert_eq!(spec.seeds, Some(32));
        assert_eq!(spec.workers, 8);
        assert_eq!(spec.master_seed, 99);
        assert!(spec.grid.quick);
        assert_eq!(spec.grid.ns, vec![64, 128]);
        assert_eq!(spec.grid.topologies.len(), 2);
        assert_eq!(spec.out.as_deref(), Some(std::path::Path::new("runs/x")));
        assert!(!spec.progress);
    }

    #[test]
    fn resume_usage_errors() {
        // Missing directory.
        assert!(matches!(
            run(&strs(&["run", "--resume"])),
            Err(LabError::BadArgs(_))
        ));
        // Run flags other than --workers/--quiet are refused: the stored
        // invocation is authoritative.
        assert!(matches!(
            run(&strs(&["run", "--resume", "/tmp", "--seeds", "3"])),
            Err(LabError::BadArgs(_))
        ));
        // A directory with no manifest is an IO error.
        assert!(matches!(
            run(&strs(&["run", "--resume", "/nonexistent-run-dir"])),
            Err(LabError::Io(_))
        ));
    }

    #[test]
    fn bad_numbers_are_rejected() {
        assert!(parse_args(&strs(&["t", "--seeds", "many"])).is_err());
        assert!(parse_args(&strs(&["t", "--n", "64,x"])).is_err());
        assert!(parse_args(&strs(&["t", "--topo", "klein-bottle:4"])).is_err());
    }

    #[test]
    fn parses_algo_and_shard() {
        let (_, spec) = parse_args(&strs(&[
            "table1",
            "--algo",
            "this-work,kutten15",
            "--shard",
            "2/4",
        ]))
        .unwrap();
        assert_eq!(
            spec.algos,
            vec![
                crate::runners::Algorithm::ThisWork,
                crate::runners::Algorithm::Kutten
            ]
        );
        assert_eq!(spec.shard, (2, 4));
        assert!(parse_args(&strs(&["t", "--algo", "nonesuch"])).is_err());
        for bad in ["4/4", "x/2", "1", "2/0"] {
            assert!(parse_args(&strs(&["t", "--shard", bad])).is_err(), "{bad}");
        }
    }

    #[test]
    fn describe_json_and_new_subcommands_parse() {
        use crate::json::Value;
        let text = run(&strs(&["describe", "diffusion", "--json"])).unwrap();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("scenario").and_then(Value::as_str), Some("diffusion"));
        assert!(v.get("space").and_then(|s| s.get("blocks")).is_some());
        assert!(matches!(
            run(&strs(&["describe", "diffusion", "--frob"])),
            Err(LabError::BadArgs(_))
        ));
        // run --telemetry threads through to the spec.
        let (_, spec) = parse_args(&strs(&["table1", "--telemetry", "/tmp/t.jsonl"])).unwrap();
        assert_eq!(
            spec.telemetry.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        // report/bench usage errors.
        assert!(matches!(run(&strs(&["report"])), Err(LabError::BadArgs(_))));
        assert!(matches!(
            run(&strs(&["report", "/nonexistent/t.jsonl"])),
            Err(LabError::Io(_))
        ));
        assert!(matches!(
            run(&strs(&["bench", "--frob"])),
            Err(LabError::BadArgs(_))
        ));
    }

    #[test]
    fn merge_subcommand_unions_sharded_runs() {
        use crate::engine::{execute, RunSpec};
        let base = std::env::temp_dir().join(format!("ale-lab-cli-merge-{}", std::process::id()));
        let scenario = registry::find("impossibility").unwrap();
        let mut dirs = Vec::new();
        for i in 0..2u64 {
            let dir = base.join(format!("s{i}"));
            execute(
                scenario.as_ref(),
                &RunSpec {
                    shard: (i, 2),
                    seeds: Some(1),
                    workers: 1,
                    grid: crate::scenario::GridConfig {
                        quick: true,
                        ..Default::default()
                    },
                    out: Some(dir.clone()),
                    ..RunSpec::default()
                },
            )
            .unwrap();
            dirs.push(dir.to_string_lossy().to_string());
        }
        let merged = base.join("merged").to_string_lossy().to_string();
        let report = run(&strs(&["merge", &dirs[0], &dirs[1], "--out", &merged])).unwrap();
        assert!(report.contains("complete sweep"), "{report}");
        assert!(base.join("merged/trials.jsonl").exists());
        // Usage errors.
        assert!(matches!(
            run(&strs(&["merge", &dirs[0]])),
            Err(LabError::BadArgs(_))
        ));
        assert!(matches!(
            run(&strs(&["merge", &dirs[0], &dirs[1], "--frob"])),
            Err(LabError::BadArgs(_))
        ));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn check_subcommand_gates_regressions() {
        let dir = std::env::temp_dir().join(format!("ale-lab-cli-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let header = "point,family,algorithm,n,metric,count,mean,ci95,median,min,max,spilled";
        let base = dir.join("base.csv");
        let cur = dir.join("cur.csv");
        std::fs::write(
            &base,
            format!("{header}\np,f,-,8,messages,4,100,0,100,100,100,false\n"),
        )
        .unwrap();
        std::fs::write(
            &cur,
            format!("{header}\np,f,-,8,messages,4,300,0,300,300,300,false\n"),
        )
        .unwrap();
        let base_s = base.to_string_lossy().to_string();
        let cur_s = cur.to_string_lossy().to_string();
        // Self-check passes.
        assert!(run(&strs(&["check", &base_s, "--baseline", &base_s])).is_ok());
        // 3x growth fails with the Regression variant...
        let err = run(&strs(&["check", &cur_s, "--baseline", &base_s])).unwrap_err();
        assert!(matches!(err, LabError::Regression(_)));
        // ...unless the tolerance admits it.
        assert!(run(&strs(&[
            "check",
            &cur_s,
            "--baseline",
            &base_s,
            "--tolerance",
            "5.0"
        ]))
        .is_ok());
        // Gating a different metric ignores messages.
        assert!(run(&strs(&[
            "check",
            &cur_s,
            "--baseline",
            &base_s,
            "--metrics",
            "bits"
        ]))
        .is_err()); // nothing comparable -> BadRecord, still an error
                    // Missing --baseline and unknown options are usage errors.
        assert!(matches!(
            run(&strs(&["check", &cur_s])),
            Err(LabError::BadArgs(_))
        ));
        assert!(matches!(
            run(&strs(&["check", &cur_s, "--frob"])),
            Err(LabError::BadArgs(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_subcommand_routes_memory_benches() {
        let dir = std::env::temp_dir().join(format!("ale-lab-cli-mem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mem = |bpn: f64| {
            format!(
                "{{\"suite\":\"memory\",\"cases\":[{{\"id\":\"rss/implicit/torus:10x10\",\
                 \"n\":100,\"graph_kb\":1,\"engine_kb\":1,\"bytes_per_node\":{bpn}}}]}}"
            )
        };
        let base = dir.join("BENCH_memory_base.json");
        let cur = dir.join("BENCH_memory_cur.json");
        std::fs::write(&base, mem(100.0)).unwrap();
        std::fs::write(&cur, mem(115.0)).unwrap();
        let base_s = base.to_string_lossy().to_string();
        let cur_s = cur.to_string_lossy().to_string();
        // Self-check passes; +15% bytes/node breaks the tighter 10% default...
        assert!(run(&strs(&["check", &base_s, "--baseline", &base_s])).is_ok());
        let err = run(&strs(&["check", &cur_s, "--baseline", &base_s])).unwrap_err();
        assert!(matches!(err, LabError::Regression(_)));
        // ...and --tolerance overrides the memory gate too.
        assert!(run(&strs(&[
            "check",
            &cur_s,
            "--baseline",
            &base_s,
            "--tolerance",
            "0.2"
        ]))
        .is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
