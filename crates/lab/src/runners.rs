//! Uniform driver layer over every election algorithm in the workspace —
//! the harness needs "same graph, same seed, different algorithm" rows.

use ale_baselines::flood_max::{run_flood_max, FloodDiscipline, FloodMaxConfig};
use ale_baselines::gilbert::{run_gilbert, GilbertConfig};
use ale_baselines::kutten::{run_kutten, KuttenConfig};
use ale_core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale_core::{CoreError, ElectionOutcome};
use ale_graph::{Graph, GraphProps, NetworkKnowledge, Topology};
use std::fmt;

/// The algorithms compared in the Table 1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// This paper's irrevocable protocol (Theorem 1).
    ThisWork,
    /// Gilbert–Robinson–Sourav (PODC'18) style baseline.
    Gilbert,
    /// Kutten et al. (J.ACM'15) style candidate flooding.
    Kutten,
    /// All-nodes flood-max, forwarding improvements only.
    FloodOnChange,
    /// All-nodes flood-max, re-broadcasting every round.
    FloodEveryRound,
}

impl Algorithm {
    /// All algorithms, in presentation order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::ThisWork,
        Algorithm::Gilbert,
        Algorithm::Kutten,
        Algorithm::FloodOnChange,
        Algorithm::FloodEveryRound,
    ];

    /// Parses the display name back into the enum (for CLI filters and
    /// record round-trips).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        Algorithm::ALL
            .iter()
            .copied()
            .find(|a| a.to_string() == name)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Algorithm::ThisWork => "this-work",
            Algorithm::Gilbert => "gilbert18",
            Algorithm::Kutten => "kutten15",
            Algorithm::FloodOnChange => "flood-chg",
            Algorithm::FloodEveryRound => "flood-all",
        };
        write!(f, "{s}")
    }
}

/// Pre-computed per-graph context shared by all algorithms (so property
/// computation is paid once per sweep point, not once per trial).
#[derive(Debug, Clone)]
pub struct GraphContext {
    /// The topology that generated the graph.
    pub topology: Topology,
    /// The concrete graph.
    pub graph: Graph,
    /// Its computed properties.
    pub props: GraphProps,
    /// The knowledge bundle for knowledge-taking algorithms.
    pub knowledge: NetworkKnowledge,
}

impl GraphContext {
    /// Builds the graph and computes its properties.
    ///
    /// # Errors
    ///
    /// Propagates generation/property failures.
    pub fn build(topology: Topology, graph_seed: u64) -> Result<Self, CoreError> {
        let span = ale_telemetry::Span::begin("graph-build").attr("topology", topology.to_string());
        let graph = topology.build(graph_seed)?;
        let span = span.attr("n", graph.n());
        let props = GraphProps::compute_for(&graph, &topology)?;
        drop(span);
        let knowledge = NetworkKnowledge::from_props(&props);
        Ok(GraphContext {
            topology,
            graph,
            props,
            knowledge,
        })
    }

    /// Runs `alg` on this graph with the given seed.
    ///
    /// # Errors
    ///
    /// Propagates the underlying runner's failures.
    pub fn run(&self, alg: Algorithm, seed: u64) -> Result<ElectionOutcome, CoreError> {
        match alg {
            Algorithm::ThisWork => {
                let cfg = IrrevocableConfig::from_knowledge(self.knowledge);
                run_irrevocable(&self.graph, &cfg, seed)
            }
            Algorithm::Gilbert => {
                let cfg = GilbertConfig::new(self.knowledge.n, self.knowledge.tmix);
                run_gilbert(&self.graph, &cfg, seed)
            }
            Algorithm::Kutten => {
                let mut cfg = KuttenConfig::for_graph(&self.graph);
                cfg.diameter = self.props.diameter as u64;
                run_kutten(&self.graph, &cfg, seed)
            }
            Algorithm::FloodOnChange => {
                let cfg = FloodMaxConfig::for_graph(&self.graph);
                run_flood_max(&self.graph, &cfg, seed)
            }
            Algorithm::FloodEveryRound => {
                let mut cfg = FloodMaxConfig::for_graph(&self.graph);
                cfg.discipline = FloodDiscipline::EveryRound;
                run_flood_max(&self.graph, &cfg, seed)
            }
        }
    }
}

/// Aggregated cost/success summary for one (graph, algorithm) cell.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Trials run.
    pub trials: usize,
    /// Trials with exactly one leader.
    pub unique: usize,
    /// Median messages.
    pub median_messages: f64,
    /// Median payload bits.
    pub median_bits: f64,
    /// Median CONGEST-charged rounds.
    pub median_congest_rounds: f64,
}

impl CellSummary {
    /// Summarizes a batch of outcomes.
    pub fn from_outcomes(algorithm: Algorithm, outcomes: &[ElectionOutcome]) -> Self {
        let msgs: Vec<f64> = outcomes.iter().map(|o| o.metrics.messages as f64).collect();
        let bits: Vec<f64> = outcomes.iter().map(|o| o.metrics.bits as f64).collect();
        let rounds: Vec<f64> = outcomes
            .iter()
            .map(|o| o.metrics.congest_rounds as f64)
            .collect();
        CellSummary {
            algorithm,
            trials: outcomes.len(),
            unique: outcomes.iter().filter(|o| o.is_successful()).count(),
            median_messages: crate::stats::median(&msgs),
            median_bits: crate::stats::median(&bits),
            median_congest_rounds: crate::stats::median(&rounds),
        }
    }

    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.unique as f64 / self.trials as f64
        }
    }
}

impl crate::json::ToJson for CellSummary {
    fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        Value::obj([
            (
                "algorithm".to_string(),
                Value::Str(self.algorithm.to_string()),
            ),
            ("trials".to_string(), Value::UInt(self.trials as u64)),
            ("unique".to_string(), Value::UInt(self.unique as u64)),
            (
                "median_messages".to_string(),
                Value::Num(self.median_messages),
            ),
            ("median_bits".to_string(), Value::Num(self.median_bits)),
            (
                "median_congest_rounds".to_string(),
                Value::Num(self.median_congest_rounds),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_runs_every_algorithm() {
        let ctx = GraphContext::build(Topology::Complete { n: 16 }, 0).unwrap();
        for alg in Algorithm::ALL {
            let o = ctx.run(alg, 5).unwrap();
            assert!(
                o.leader_count() <= 2,
                "{alg}: unexpectedly many leaders ({})",
                o.leader_count()
            );
            assert!(o.metrics.rounds > 0);
        }
    }

    #[test]
    fn summary_statistics() {
        let ctx = GraphContext::build(Topology::Hypercube { dim: 3 }, 0).unwrap();
        let outcomes: Vec<_> = (0..5)
            .map(|s| ctx.run(Algorithm::Kutten, s).unwrap())
            .collect();
        let cell = CellSummary::from_outcomes(Algorithm::Kutten, &outcomes);
        assert_eq!(cell.trials, 5);
        assert!(cell.success_rate() >= 0.0 && cell.success_rate() <= 1.0);
        assert!(cell.median_messages >= 0.0);
    }

    #[test]
    fn algorithm_display_names_are_stable() {
        assert_eq!(Algorithm::ThisWork.to_string(), "this-work");
        assert_eq!(Algorithm::ALL.len(), 5);
    }
}
