//! Scalar sample statistics shared by the fleet aggregator and the
//! legacy `ale_bench::sweep` helpers (which re-export these).

/// Mean of a float sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator; 0 for fewer than 2 points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Median (averaging the middle pair for even sizes).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in experiment data"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Streaming mean/variance/min/max (Welford) — the bounded-memory core of
/// the fleet aggregator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    /// Samples seen.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    m2: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorbs one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean (0 for fewer than 2 samples).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count, 8);
        assert!((w.mean - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(w.min, 2.0);
        assert_eq!(w.max, 9.0);
        assert!(w.ci95() > 0.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.count, 0);
        assert_eq!(w.std_dev(), 0.0);
        w.push(3.5);
        assert_eq!(w.mean, 3.5);
        assert_eq!(w.ci95(), 0.0);
    }
}
