//! Lab-side telemetry glue: the JSONL sink, the engine round-batch
//! adapter, and the guards the run engine uses to scope instrumentation.
//!
//! `ale-telemetry` itself is serialization-free; this module is where its
//! events become JSON lines, rendered with [`crate::json`] — the same
//! encoder `describe --json` and the result store use, so the workspace
//! has exactly one JSON writer.
//!
//! # Event schema (one JSON object per line)
//!
//! | `ev`      | extra keys                              |
//! |-----------|------------------------------------------|
//! | `span`    | `id`, `parent` (nullable), `wall_us`     |
//! | `counter` | `value`                                  |
//! | `hist`    | `buckets` (array of `[upper_bound, n]`)  |
//!
//! All events carry `name`, `ts_us` (microseconds since process start)
//! and an `attrs` object. The stream is a *side-channel*: wall-clock
//! values are machine-dependent, so telemetry files are excluded from the
//! store's byte-identical guarantees (`merge` unions them without
//! validation). Per-trial event subsequences are still deterministic —
//! see the `telemetry` integration tests.

use crate::json::Value;
use crate::scenario::LabError;
use ale_congest::{Metrics, RoundInfo, TraceSink};
use ale_telemetry::{AttrValue, Event, EventKind, Sink};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Renders one telemetry event as a (single-line) JSON value.
pub fn event_to_json(event: &Event) -> Value {
    let mut pairs: Vec<(String, Value)> = Vec::with_capacity(8);
    let ev = match event.kind {
        EventKind::Span { .. } => "span",
        EventKind::Counter { .. } => "counter",
        EventKind::Hist { .. } => "hist",
    };
    pairs.push(("ev".to_string(), Value::Str(ev.to_string())));
    pairs.push(("name".to_string(), Value::Str(event.name.clone())));
    pairs.push(("ts_us".to_string(), Value::UInt(event.ts_us)));
    match &event.kind {
        EventKind::Span {
            id,
            parent,
            wall_us,
        } => {
            pairs.push(("id".to_string(), Value::UInt(*id)));
            pairs.push((
                "parent".to_string(),
                parent.map_or(Value::Null, Value::UInt),
            ));
            pairs.push(("wall_us".to_string(), Value::UInt(*wall_us)));
        }
        EventKind::Counter { value } => {
            pairs.push(("value".to_string(), Value::UInt(*value)));
        }
        EventKind::Hist { buckets } => {
            pairs.push((
                "buckets".to_string(),
                Value::Arr(
                    buckets
                        .iter()
                        .map(|&(bound, count)| {
                            Value::Arr(vec![Value::UInt(bound), Value::UInt(count)])
                        })
                        .collect(),
                ),
            ));
        }
    }
    pairs.push((
        "attrs".to_string(),
        Value::obj(
            event
                .attrs
                .iter()
                .map(|(k, v)| (k.clone(), attr_to_json(v)))
                .collect::<Vec<_>>(),
        ),
    ));
    Value::obj(pairs)
}

fn attr_to_json(v: &AttrValue) -> Value {
    match v {
        AttrValue::U64(u) => Value::UInt(*u),
        AttrValue::I64(i) => Value::Int(*i),
        AttrValue::F64(f) => Value::Num(*f),
        AttrValue::Str(s) => Value::Str(s.clone()),
        AttrValue::Bool(b) => Value::Bool(*b),
    }
}

/// An [`ale_telemetry::Sink`] that writes one JSON line per event through
/// a buffered writer. Flushed on [`Sink::flush`] (which
/// [`ale_telemetry::uninstall`] calls) and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncates) the event file at `path`.
    ///
    /// # Errors
    ///
    /// [`LabError::Io`] when the file cannot be created.
    pub fn create(path: &Path) -> Result<JsonlSink, LabError> {
        let file = File::create(path)
            .map_err(|e| LabError::Io(format!("create {}: {e}", path.display())))?;
        Ok(JsonlSink {
            out: BufWriter::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        // Telemetry is best-effort: a full disk must not fail the run.
        let _ = writeln!(self.out, "{}", event_to_json(event).render());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Scopes a run's telemetry: installs a [`JsonlSink`] on creation and
/// uninstalls (flushing) on drop, so the engine cannot leave the global
/// sink dangling on an error path.
#[derive(Debug)]
pub struct TelemetryGuard {
    path: PathBuf,
}

impl TelemetryGuard {
    /// Starts streaming events to `path`.
    ///
    /// # Errors
    ///
    /// [`LabError::Io`] when the file cannot be created.
    pub fn install(path: &Path) -> Result<TelemetryGuard, LabError> {
        let sink = JsonlSink::create(path)?;
        ale_telemetry::install(Box::new(sink));
        Ok(TelemetryGuard {
            path: path.to_path_buf(),
        })
    }

    /// The event file this guard streams to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        ale_telemetry::uninstall();
    }
}

/// How many engine rounds one `round-batch` event covers.
const ROUND_BATCH: u64 = 256;

/// An [`ale_congest::TraceSink`] that coalesces per-round engine
/// observations into `round-batch` span events (every `ROUND_BATCH` = 256
/// rounds and at run end) plus one final `engine-rounds` counter with the
/// run's total metrics. Every event is tagged with the trial's task index
/// so per-trial subsequences stay comparable across worker counts.
#[derive(Debug)]
pub struct RoundBatchSink {
    trial: u64,
    first_round: u64,
    rounds: u64,
    messages: u64,
    bits: u64,
    max_bits: usize,
    active: usize,
    buffer_cap: usize,
    batch_start: Instant,
}

impl RoundBatchSink {
    /// A sink tagging its events with `trial` (the engine task index).
    pub fn new(trial: u64) -> RoundBatchSink {
        RoundBatchSink {
            trial,
            first_round: 0,
            rounds: 0,
            messages: 0,
            bits: 0,
            max_bits: 0,
            active: 0,
            buffer_cap: 0,
            batch_start: Instant::now(),
        }
    }

    fn flush_batch(&mut self) {
        if self.rounds == 0 {
            return;
        }
        let wall_us = self.batch_start.elapsed().as_micros() as u64;
        ale_telemetry::emit_span(
            "round-batch",
            wall_us,
            vec![
                ("trial".to_string(), AttrValue::U64(self.trial)),
                ("first_round".to_string(), AttrValue::U64(self.first_round)),
                ("rounds".to_string(), AttrValue::U64(self.rounds)),
                ("messages".to_string(), AttrValue::U64(self.messages)),
                ("bits".to_string(), AttrValue::U64(self.bits)),
                ("max_bits".to_string(), AttrValue::U64(self.max_bits as u64)),
                ("active".to_string(), AttrValue::U64(self.active as u64)),
                (
                    "buffer_cap".to_string(),
                    AttrValue::U64(self.buffer_cap as u64),
                ),
            ],
        );
        self.first_round += self.rounds;
        self.rounds = 0;
        self.messages = 0;
        self.bits = 0;
        self.max_bits = 0;
        self.batch_start = Instant::now();
    }
}

impl TraceSink for RoundBatchSink {
    fn on_round(&mut self, info: &RoundInfo) {
        if self.rounds == 0 {
            self.first_round = info.round;
        }
        self.rounds += 1;
        self.messages += info.messages;
        self.bits += info.bits;
        self.max_bits = self.max_bits.max(info.max_bits);
        self.active = info.active;
        self.buffer_cap = self.buffer_cap.max(info.buffer_cap);
        if self.rounds >= ROUND_BATCH {
            self.flush_batch();
        }
    }

    fn on_run_end(&mut self, metrics: &Metrics) {
        self.flush_batch();
        ale_telemetry::emit_counter(
            "engine-rounds",
            metrics.rounds,
            vec![
                ("trial".to_string(), AttrValue::U64(self.trial)),
                (
                    "congest_rounds".to_string(),
                    AttrValue::U64(metrics.congest_rounds),
                ),
                ("messages".to_string(), AttrValue::U64(metrics.messages)),
                ("bits".to_string(), AttrValue::U64(metrics.bits)),
            ],
        );
    }
}

/// Scopes the thread-local engine trace factory to one trial: every
/// network the trial constructs (even deep inside `ale-core`) gets a
/// [`RoundBatchSink`] tagged with the trial's task index. Cleared on
/// drop, including the error path.
#[derive(Debug)]
pub struct TrialTraceGuard(());

impl TrialTraceGuard {
    /// Installs the factory for `trial` on this thread.
    pub fn install(trial: u64) -> TrialTraceGuard {
        ale_congest::install_trace_factory(move || Box::new(RoundBatchSink::new(trial)));
        TrialTraceGuard(())
    }
}

impl Drop for TrialTraceGuard {
    fn drop(&mut self) {
        ale_congest::clear_trace_factory();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shapes() {
        let span = Event {
            name: "trial".to_string(),
            ts_us: 12,
            kind: EventKind::Span {
                id: 3,
                parent: None,
                wall_us: 450,
            },
            attrs: vec![
                ("seed".to_string(), AttrValue::U64(9)),
                ("ok".to_string(), AttrValue::Bool(true)),
            ],
        };
        assert_eq!(
            event_to_json(&span).render(),
            r#"{"ev":"span","name":"trial","ts_us":12,"id":3,"parent":null,"wall_us":450,"attrs":{"seed":9,"ok":true}}"#
        );
        let hist = Event {
            name: "wall".to_string(),
            ts_us: 0,
            kind: EventKind::Hist {
                buckets: vec![(1, 2), (7, 1)],
            },
            attrs: Vec::new(),
        };
        assert_eq!(
            event_to_json(&hist).render(),
            r#"{"ev":"hist","name":"wall","ts_us":0,"buckets":[[1,2],[7,1]],"attrs":{}}"#
        );
        let counter = Event {
            name: "trials".to_string(),
            ts_us: 5,
            kind: EventKind::Counter { value: 17 },
            attrs: Vec::new(),
        };
        let rendered = event_to_json(&counter).render();
        let back = crate::json::parse(&rendered).unwrap();
        assert_eq!(back.get("value").and_then(Value::as_u64), Some(17));
        assert_eq!(back.get("ev").and_then(Value::as_str), Some("counter"));
    }
}
