//! HTTP routes over the durable run store — the `ale-lab serve` mode.
//!
//! The transport (worker pool, request parsing, chunked streaming) is
//! `ale-serve`; this module owns the route table and the store read
//! paths. Everything is read-only and re-reads the run directory per
//! request, so a dashboard polling an in-progress run always sees the
//! journal's current valid prefix (see the concurrency contract in
//! [`crate::db`]).
//!
//! Routes:
//!
//! | Route | Serves |
//! |---|---|
//! | `GET /runs` | manifest index across the mounted run dirs |
//! | `GET /runs/{id}/manifest` | the on-disk `manifest.json`, byte-identical |
//! | `GET /runs/{id}/summary` | raw `s/` rows from `trials.db`, key order |
//! | `GET /runs/{id}/trials?point=…&seed=…` | `t/` prefix scan as JSONL (chunked) |
//! | `GET /runs/{id}/space` | the scenario's `describe --json` object |
//! | `GET /runs/{id}/tail?from=N&wait=S` | live journal tail with a cursor |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | `ale-telemetry` counter/histogram snapshot |
//!
//! Incomplete stores are served with `"complete": false` (and a
//! `"missing"` trial count) rather than refused.
//!
//! ## The tail-cursor protocol
//!
//! `/runs/{id}/tail?from=N` reads `trials.db`, parses the valid framed
//! prefix, and returns every `t/` entry at byte offset ≥ `N` plus
//! `"cursor"`: the length of the valid prefix. While the run is
//! incomplete the journal is append-only, so a returned cursor is a
//! stable entry boundary and the next poll (`from=cursor`) yields only
//! newer trials. `wait=S` long-polls: the handler re-reads for up to
//! `S` seconds (capped) until new entries or completion arrive. When a
//! finished run compacts the journal, old offsets die; a cursor that no
//! longer lands on an entry boundary is answered with `"resync": true`
//! and an empty batch — the client rescans from 0 or switches to
//! `/summary`, which is the natural endpoint once `"complete": true`.

use crate::db::{scan_entries, AofDb, Db, ScannedEntry};
use crate::json::Value;
use crate::registry;
use crate::scenario::{LabError, Scenario};
use crate::store::{load_manifest, missing_trials};
use ale_serve::{Body, Request, Response};
use ale_telemetry::{
    register_counter, register_histogram, Counter, MetricSnapshot, SharedHistogram,
};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Requests handled, across all routes (including 404s).
static REQUESTS: Counter = Counter::new("serve_requests_total");
/// Response payload bytes written (full bodies and streamed chunks).
static BYTES_SERVED: Counter = Counter::new("serve_response_bytes_total");
/// Journal scan latency per store read, in microseconds.
static SCAN_MICROS: SharedHistogram = SharedHistogram::new("serve_store_scan_micros");

/// Longest `wait=` a tail request may long-poll, seconds.
const MAX_TAIL_WAIT_SECS: u64 = 25;
/// Re-read interval while a tail request long-polls.
const TAIL_POLL_INTERVAL: Duration = Duration::from_millis(100);

/// The `describe --json` object for a scenario — also served verbatim
/// by `GET /runs/{id}/space`, so the two stay byte-identical.
pub(crate) fn describe_json(scenario: &dyn Scenario) -> Value {
    Value::obj(vec![
        (
            "scenario".to_string(),
            Value::Str(scenario.name().to_string()),
        ),
        (
            "description".to_string(),
            Value::Str(scenario.description().to_string()),
        ),
        (
            "default_seeds".to_string(),
            Value::UInt(scenario.default_seeds(false)),
        ),
        (
            "quick_seeds".to_string(),
            Value::UInt(scenario.default_seeds(true)),
        ),
        ("space".to_string(), scenario.space().to_json()),
    ])
}

/// One run directory mounted under `/runs/{id}`.
struct MountedRun {
    id: String,
    dir: PathBuf,
}

/// The route table: maps requests onto read-only views of the mounted
/// run directories. Shared by all server workers.
pub struct ServeApp {
    runs: Vec<MountedRun>,
}

impl ServeApp {
    /// Mounts `dirs`, each under its directory name. Every directory
    /// must hold a `manifest.json` and a `trials.db` (incomplete runs
    /// are fine — they are served with `"complete": false`).
    ///
    /// # Errors
    ///
    /// [`LabError::BadArgs`] (the exit-2 contract) when no directory is
    /// given, a directory is not a run directory, or two directories
    /// share a name.
    pub fn new(dirs: &[PathBuf]) -> Result<ServeApp, LabError> {
        register_counter(&REQUESTS);
        register_counter(&BYTES_SERVED);
        register_histogram(&SCAN_MICROS);
        if dirs.is_empty() {
            return Err(LabError::BadArgs(
                "serve needs at least one run directory".into(),
            ));
        }
        let mut runs: Vec<MountedRun> = Vec::new();
        for dir in dirs {
            let id = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| {
                    LabError::BadArgs(format!("{}: run directory has no name", dir.display()))
                })?;
            if !dir.join("manifest.json").is_file() {
                return Err(LabError::BadArgs(format!(
                    "{}: no manifest.json — not a run directory",
                    dir.display()
                )));
            }
            if !dir.join("trials.db").is_file() {
                return Err(LabError::BadArgs(format!(
                    "{}: no trials.db — run (or re-run) the sweep with --out to get \
                     a durable store",
                    dir.display()
                )));
            }
            if runs.iter().any(|r| r.id == id) {
                return Err(LabError::BadArgs(format!(
                    "two run directories both mount as '{id}' — rename one"
                )));
            }
            runs.push(MountedRun {
                id,
                dir: dir.clone(),
            });
        }
        Ok(ServeApp { runs })
    }

    /// Mounted `(id, dir)` pairs, in mount order.
    pub fn mounts(&self) -> Vec<(String, PathBuf)> {
        self.runs
            .iter()
            .map(|r| (r.id.clone(), r.dir.clone()))
            .collect()
    }

    /// Dispatches one request. Never panics; internal errors become
    /// `500`, bad parameters `400`, unknown paths `404`.
    pub fn handle(&self, req: &Request) -> Response {
        REQUESTS.add(1);
        if req.method != "GET" {
            return Response::text(405, "read-only service: GET only\n");
        }
        let resp = match self.route(req) {
            Ok(resp) => resp,
            Err(LabError::BadArgs(msg)) => Response::bad_request(&msg),
            Err(e) => Response::text(500, format!("internal error: {e}\n")),
        };
        if let Body::Full(bytes) = &resp.body {
            BYTES_SERVED.add(bytes.len() as u64);
        }
        resp
    }

    fn route(&self, req: &Request) -> Result<Response, LabError> {
        let path = req.path.trim_end_matches('/');
        match path {
            "/healthz" => Ok(Response::text(200, "ok\n")),
            "/metrics" => Ok(metrics_response()),
            "/runs" => self.runs_index(),
            _ => {
                let Some(rest) = path.strip_prefix("/runs/") else {
                    return Ok(Response::not_found(&req.path));
                };
                let Some((id, route)) = rest.split_once('/') else {
                    return Ok(Response::not_found(&req.path));
                };
                let Some(run) = self.runs.iter().find(|r| r.id == id) else {
                    return Ok(Response::not_found(&format!("no run mounted as '{id}'")));
                };
                match route {
                    "manifest" => manifest_response(&run.dir),
                    "summary" => summary_response(&run.id, &run.dir),
                    "space" => space_response(&run.dir),
                    "trials" => trials_response(&run.dir, req),
                    "tail" => tail_response(&run.id, &run.dir, req),
                    _ => Ok(Response::not_found(&req.path)),
                }
            }
        }
    }

    fn runs_index(&self) -> Result<Response, LabError> {
        let mut entries = Vec::new();
        for run in &self.runs {
            let manifest = load_manifest(&run.dir.join("manifest.json"))?;
            let expected: u64 = manifest.effective_counts().iter().sum();
            let missing = missing_trials(&run.dir, &manifest)?;
            entries.push(Value::obj(vec![
                ("id".to_string(), Value::Str(run.id.clone())),
                ("scenario".to_string(), Value::Str(manifest.scenario)),
                ("complete".to_string(), Value::Bool(manifest.complete)),
                ("quick".to_string(), Value::Bool(manifest.quick)),
                ("shard".to_string(), Value::Str(manifest.shard)),
                (
                    "points".to_string(),
                    Value::UInt(manifest.grid.len() as u64),
                ),
                ("trials".to_string(), Value::UInt(expected)),
                ("missing".to_string(), Value::UInt(missing)),
            ]));
        }
        let body = Value::obj(vec![("runs".to_string(), Value::Arr(entries))]);
        Ok(Response::json(body.render_pretty() + "\n"))
    }
}

/// Opens the journal read-only, timing the scan into [`SCAN_MICROS`].
fn open_journal(dir: &Path) -> Result<AofDb, LabError> {
    let start = Instant::now();
    let db = AofDb::open_read(&dir.join("trials.db"))?;
    SCAN_MICROS.record(start.elapsed().as_micros() as u64);
    Ok(db)
}

fn metrics_response() -> Response {
    let metrics = ale_telemetry::snapshot()
        .into_iter()
        .map(|m| match m {
            MetricSnapshot::Counter { name, value } => Value::obj(vec![
                ("name".to_string(), Value::Str(name.to_string())),
                ("kind".to_string(), Value::Str("counter".to_string())),
                ("value".to_string(), Value::UInt(value)),
            ]),
            MetricSnapshot::Histogram {
                name,
                count,
                buckets,
            } => Value::obj(vec![
                ("name".to_string(), Value::Str(name.to_string())),
                ("kind".to_string(), Value::Str("histogram".to_string())),
                ("count".to_string(), Value::UInt(count)),
                (
                    "buckets".to_string(),
                    Value::Arr(
                        buckets
                            .into_iter()
                            .map(|(bound, c)| Value::Arr(vec![Value::UInt(bound), Value::UInt(c)]))
                            .collect(),
                    ),
                ),
            ]),
        })
        .collect();
    let body = Value::obj(vec![("metrics".to_string(), Value::Arr(metrics))]);
    Response::json(body.render_pretty() + "\n")
}

/// Serves the on-disk manifest bytes verbatim (it is already rendered
/// JSON, and byte-identity with the stored view is the point).
fn manifest_response(dir: &Path) -> Result<Response, LabError> {
    let path = dir.join("manifest.json");
    let bytes =
        std::fs::read(&path).map_err(|e| LabError::Io(format!("{}: {e}", path.display())))?;
    Ok(Response::json(bytes))
}

/// Serves the stored `s/` rows as raw bytes spliced into a JSON array,
/// so served rows are byte-identical to the journaled ones (re-encoding
/// floats could drift). Incomplete runs get `"complete": false` and
/// whatever rows exist (normally none until `finish` writes them).
fn summary_response(id: &str, dir: &Path) -> Result<Response, LabError> {
    let manifest = load_manifest(&dir.join("manifest.json"))?;
    let missing = missing_trials(dir, &manifest)?;
    let db = open_journal(dir)?;
    let mut body = Vec::new();
    write!(
        body,
        "{{\"run\":{},\"scenario\":{},\"complete\":{},\"missing\":{},\"rows\":[",
        Value::Str(id.to_string()).render(),
        Value::Str(manifest.scenario.clone()).render(),
        manifest.complete,
        missing
    )
    .expect("write to vec");
    for (i, (_, value)) in db.iter_prefix(b"s/").into_iter().enumerate() {
        if i > 0 {
            body.push(b',');
        }
        body.extend_from_slice(&value);
    }
    body.extend_from_slice(b"]}\n");
    Ok(Response::json(body))
}

/// Serves the mounted run's scenario as the `describe --json` object.
fn space_response(dir: &Path) -> Result<Response, LabError> {
    let manifest = load_manifest(&dir.join("manifest.json"))?;
    let scenario = registry::find(&manifest.scenario)
        .ok_or_else(|| LabError::UnknownScenario(manifest.scenario.clone()))?;
    Ok(Response::json(
        describe_json(scenario.as_ref()).render_pretty() + "\n",
    ))
}

/// Streams trial records as JSONL via a `t/` prefix scan. `point=`
/// narrows to one grid point (by label), `seed=` (requires `point=`)
/// to one seed index.
fn trials_response(dir: &Path, req: &Request) -> Result<Response, LabError> {
    let manifest = load_manifest(&dir.join("manifest.json"))?;
    let mut prefix = format!("t/{}/{:016x}/", manifest.scenario, manifest.space_hash);
    match (req.query_param("point"), req.query_param("seed")) {
        (None, Some(_)) => {
            return Err(LabError::BadArgs(
                "the seed filter needs a point filter too".into(),
            ))
        }
        (None, None) => {}
        (Some(point), seed) => {
            let positions = manifest.effective_positions();
            let pos = manifest
                .grid
                .iter()
                .position(|label| label == point)
                .map(|i| positions[i])
                .ok_or_else(|| {
                    LabError::BadArgs(format!("no grid point labelled '{point}' in this run"))
                })?;
            write!(prefix, "{pos:08x}/").expect("write to string");
            if let Some(seed) = seed {
                let seed_index: u64 = seed.parse().map_err(|_| {
                    LabError::BadArgs(format!("seed filter '{seed}' is not a seed index"))
                })?;
                write!(prefix, "{seed_index:08x}").expect("write to string");
            }
        }
    }
    let db = open_journal(dir)?;
    let values: Vec<Vec<u8>> = db
        .iter_prefix(prefix.as_bytes())
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    Ok(Response::stream(
        "application/x-ndjson",
        Box::new(move |w: &mut dyn std::io::Write| {
            let mut written = 0u64;
            for value in &values {
                w.write_all(value)?;
                w.write_all(b"\n")?;
                written += value.len() as u64 + 1;
            }
            BYTES_SERVED.add(written);
            Ok(written)
        }),
    ))
}

/// The tail route: serves the journal's valid prefix from a byte
/// cursor, long-polling while the run is in progress. See the module
/// docs for the protocol.
fn tail_response(id: &str, dir: &Path, req: &Request) -> Result<Response, LabError> {
    let from: u64 = match req.query_param("from") {
        None => 0,
        Some(raw) => raw
            .parse()
            .map_err(|_| LabError::BadArgs(format!("from cursor '{raw}' is not a byte offset")))?,
    };
    let wait_secs: u64 = match req.query_param("wait") {
        None => 0,
        Some(raw) => raw
            .parse()
            .map_err(|_| LabError::BadArgs(format!("wait '{raw}' is not a number of seconds")))?,
    };
    let deadline = Instant::now() + Duration::from_secs(wait_secs.min(MAX_TAIL_WAIT_SECS));
    let db_path = dir.join("trials.db");
    loop {
        // Fresh reads each poll: a concurrent `run`/`run --resume` may
        // append trials or flip the manifest to complete at any time.
        let manifest = load_manifest(&dir.join("manifest.json"))?;
        let data = std::fs::read(&db_path)
            .map_err(|e| LabError::Io(format!("{}: {e}", db_path.display())))?;
        let start = Instant::now();
        let (entries, valid_len) = scan_entries(&data);
        SCAN_MICROS.record(start.elapsed().as_micros() as u64);
        let valid_len = valid_len as u64;
        let on_boundary =
            from == 0 || from == valid_len || entries.iter().any(|e| e.offset == from);
        let batch: Vec<&ScannedEntry> = if on_boundary {
            entries
                .iter()
                .filter(|e| e.offset >= from && e.key.starts_with(b"t/"))
                .collect()
        } else {
            Vec::new()
        };
        if !on_boundary || !batch.is_empty() || manifest.complete || Instant::now() >= deadline {
            let missing = missing_trials(dir, &manifest)?;
            let mut body = Vec::new();
            write!(
                body,
                "{{\"run\":{},\"complete\":{},\"from\":{},\"cursor\":{},\"missing\":{},\
                 \"resync\":{},\"records\":[",
                Value::Str(id.to_string()).render(),
                manifest.complete,
                from,
                valid_len,
                missing,
                !on_boundary
            )
            .expect("write to vec");
            for (i, entry) in batch.iter().enumerate() {
                if i > 0 {
                    body.push(b',');
                }
                body.extend_from_slice(&entry.value);
            }
            body.extend_from_slice(b"]}\n");
            return Ok(Response::json(body));
        }
        std::thread::sleep(TAIL_POLL_INTERVAL);
    }
}
