//! A pluggable key/value store behind the run directory.
//!
//! The lab's durable state — every trial record, plus the summary rows
//! derived from them — lives behind one small [`Db`] trait (get/put/
//! iterate over keyed batches), so the engine, `merge`, and `check` can
//! share a single keyed view of a run regardless of backend:
//!
//! * [`MemDb`] — a sorted in-memory map, for tests and scratch unions;
//! * [`AofDb`] — an append-only file (`trials.db` in a run directory).
//!   Every [`Db::put`] appends one length-framed entry and reaches the
//!   OS immediately, so a killed run loses at most the entry being
//!   written; reopening recovers the valid prefix and reports whether a
//!   torn tail was dropped. [`AofDb::compact`] rewrites the log sorted
//!   by key (last put wins) via temp-file + rename, which is what makes
//!   a finished store byte-identical across run/resume/merge paths.
//!
//! Keys are ordered bytes; [`Db::iter_prefix`] returns entries sorted by
//! key, so fixed-width encodings (see `store::TrialKey`) make
//! lexicographic order equal numeric order.
//!
//! ## Entry framing
//!
//! ```text
//! entry := '#' <key-len> ' ' <value-len> '\n' <key-bytes> <value-bytes> '\n'
//! ```
//!
//! Lengths are ASCII decimals, so the file stays greppable for the JSON
//! values it carries while still supporting arbitrary bytes. A reader
//! stops at the first entry that is malformed or runs past end-of-file:
//! everything before it is the recovered prefix, everything after is the
//! torn tail a crash left behind.
//!
//! ## Concurrent readers (the tail contract)
//!
//! `ale-lab serve` tails in-progress runs, so one process may append to
//! `trials.db` while others read it. The contract that makes this safe
//! without locks:
//!
//! 1. **Appends are atomic per entry.** [`Db::put`] on [`AofDb`] issues
//!    exactly one `write` call carrying one fully framed entry, so a
//!    concurrent reader observes either none or all of an entry's
//!    bytes — except possibly the *last* entry, which may be mid-write.
//! 2. **Bytes below the journal's length are immutable while the run's
//!    manifest says `"complete": false`.** The writer only ever appends;
//!    it never rewrites or truncates published bytes (crash recovery in
//!    [`AofDb::open`] truncates only a torn tail that no reader can have
//!    parsed as valid).
//! 3. **Readers parse the valid prefix.** [`scan_entries`] (and
//!    [`AofDb::open_read`], which uses the same parser) stop at the
//!    first incomplete entry. The returned valid-prefix length is
//!    therefore always an entry boundary, and — by (1) and (2) — remains
//!    a stable cursor: a later read from that offset yields only whole,
//!    newer entries.
//! 4. **Compaction happens only at completion.** [`AofDb::compact`]
//!    (called when a run finishes or resumes to completion) rewrites the
//!    log via temp-file + rename, so a concurrent reader sees either the
//!    old inode or the complete new file, never a partial rewrite. After
//!    compaction old byte offsets are meaningless; readers detect this
//!    by the manifest flipping to `"complete": true` (or by their cursor
//!    no longer landing on an entry boundary) and must rescan from 0.

use crate::scenario::LabError;
use std::collections::BTreeMap;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

/// A keyed batch store: the persistence seam between the engine and its
/// backends. Implementations keep keys sorted so prefix scans stream in
/// key order.
pub trait Db {
    /// The value last [`Db::put`] under `key`, if any.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Inserts or overwrites `key` (last put wins).
    ///
    /// # Errors
    ///
    /// Backend write failures as [`LabError::Io`].
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), LabError>;

    /// Every `(key, value)` whose key starts with `prefix`, sorted by key.
    fn iter_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Number of distinct keys.
    fn len(&self) -> usize;

    /// True when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes buffered writes to the backend.
    ///
    /// # Errors
    ///
    /// Backend sync failures as [`LabError::Io`].
    fn flush(&mut self) -> Result<(), LabError>;
}

/// In-memory [`Db`] backend (a sorted map).
#[derive(Debug, Default)]
pub struct MemDb {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemDb {
    /// An empty store.
    pub fn new() -> Self {
        MemDb::default()
    }
}

impl Db for MemDb {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), LabError> {
        self.map.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn iter_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn flush(&mut self) -> Result<(), LabError> {
        Ok(())
    }
}

fn io_err(path: &Path, e: std::io::Error) -> LabError {
    LabError::Io(format!("{}: {e}", path.display()))
}

/// Renders one length-framed entry.
fn frame(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + value.len() + 24);
    out.extend_from_slice(format!("#{} {}\n", key.len(), value.len()).as_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out.push(b'\n');
    out
}

/// Parses entries from `data`; returns the recovered index and the byte
/// offset of the first malformed/torn entry (== `data.len()` when the
/// whole file parsed).
fn replay(data: &[u8]) -> (BTreeMap<Vec<u8>, Vec<u8>>, usize) {
    let mut index = BTreeMap::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let Some((key, value, entry_len)) = parse_entry(&data[offset..]) else {
            break;
        };
        index.insert(key.to_vec(), value.to_vec());
        offset += entry_len;
    }
    (index, offset)
}

/// Parses one entry at the start of `data`; returns its key and value
/// slices plus its total length, or `None` when the entry is malformed
/// or incomplete.
fn parse_entry(data: &[u8]) -> Option<(&[u8], &[u8], usize)> {
    if data.first() != Some(&b'#') {
        return None;
    }
    // Header: "#<klen> <vlen>\n" — lengths are short, so cap the scan.
    let header_end = data.iter().take(40).position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&data[1..header_end]).ok()?;
    let (klen, vlen) = header.split_once(' ')?;
    let klen: usize = klen.parse().ok()?;
    let vlen: usize = vlen.parse().ok()?;
    let body = header_end + 1;
    let total = body.checked_add(klen)?.checked_add(vlen)?.checked_add(1)?;
    if data.len() < total || data[total - 1] != b'\n' {
        return None;
    }
    Some((
        &data[body..body + klen],
        &data[body + klen..body + klen + vlen],
        total,
    ))
}

/// One journal entry recovered in file order by [`scan_entries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedEntry {
    /// Byte offset of the entry's `#` header within the journal.
    pub offset: u64,
    /// The entry's key bytes.
    pub key: Vec<u8>,
    /// The entry's value bytes.
    pub value: Vec<u8>,
}

/// Scans raw journal bytes in **file order** (append order, duplicates
/// preserved), returning every complete entry with its byte offset plus
/// the length of the valid prefix. This is the tail-cursor read path:
/// per the concurrency contract above, the returned prefix length is a
/// stable entry boundary in any journal whose run is still incomplete,
/// so a later scan can resume from it.
pub fn scan_entries(data: &[u8]) -> (Vec<ScannedEntry>, usize) {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let Some((key, value, entry_len)) = parse_entry(&data[offset..]) else {
            break;
        };
        entries.push(ScannedEntry {
            offset: offset as u64,
            key: key.to_vec(),
            value: value.to_vec(),
        });
        offset += entry_len;
    }
    (entries, offset)
}

/// Append-only-file [`Db`] backend.
pub struct AofDb {
    path: PathBuf,
    /// `None` in read-only snapshots; puts then fail.
    file: Option<std::fs::File>,
    index: BTreeMap<Vec<u8>, Vec<u8>>,
    truncated: bool,
}

impl AofDb {
    /// Creates (or truncates) the log at `path`, writable.
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`LabError::Io`].
    pub fn create(path: &Path) -> Result<AofDb, LabError> {
        let file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
        Ok(AofDb {
            path: path.to_path_buf(),
            file: Some(file),
            index: BTreeMap::new(),
            truncated: false,
        })
    }

    /// Opens an existing log for appending, recovering the valid prefix.
    /// A torn tail (a crash mid-[`Db::put`]) is dropped — the file is
    /// truncated back to the last complete entry — and
    /// [`AofDb::truncated`] reports that it happened. A missing file
    /// starts empty.
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`LabError::Io`].
    pub fn open(path: &Path) -> Result<AofDb, LabError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(|e| io_err(path, e))?;
        let (index, good_len) = replay(&data);
        let truncated = good_len < data.len();
        if truncated {
            file.set_len(good_len as u64).map_err(|e| io_err(path, e))?;
        }
        file.seek(std::io::SeekFrom::Start(good_len as u64))
            .map_err(|e| io_err(path, e))?;
        Ok(AofDb {
            path: path.to_path_buf(),
            file: Some(file),
            index,
            truncated,
        })
    }

    /// Opens a read-only snapshot: the valid prefix is indexed, the file
    /// is left untouched (a torn tail stays on disk), and [`Db::put`]
    /// fails. This is the `check`/`merge` read path.
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`LabError::Io`].
    pub fn open_read(path: &Path) -> Result<AofDb, LabError> {
        let data = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let (index, good_len) = replay(&data);
        Ok(AofDb {
            path: path.to_path_buf(),
            file: None,
            index,
            truncated: good_len < data.len(),
        })
    }

    /// True when opening dropped (or, read-only, skipped) a torn tail.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites the log as one entry per key, sorted — the canonical
    /// byte-deterministic form a finished run stores. Written to a temp
    /// file and renamed into place, so a crash mid-compaction leaves the
    /// old log intact.
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`LabError::Io`].
    pub fn compact(&mut self) -> Result<(), LabError> {
        let file_name = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_else(|| "db".to_string());
        let tmp = self.path.with_file_name(format!("{file_name}.tmp"));
        {
            let mut out =
                std::io::BufWriter::new(std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?);
            for (k, v) in &self.index {
                out.write_all(&frame(k, v)).map_err(|e| io_err(&tmp, e))?;
            }
            out.flush().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        if self.file.is_some() {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&self.path)
                .map_err(|e| io_err(&self.path, e))?;
            file.seek(std::io::SeekFrom::End(0))
                .map_err(|e| io_err(&self.path, e))?;
            self.file = Some(file);
        }
        self.truncated = false;
        Ok(())
    }
}

impl Db for AofDb {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.index.get(key).cloned()
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), LabError> {
        let Some(file) = self.file.as_mut() else {
            return Err(LabError::Io(format!(
                "{}: store opened read-only",
                self.path.display()
            )));
        };
        // One write call per entry: a kill between puts never tears an
        // already-written entry, and a kill mid-write tears only this one
        // (recovered and dropped by the next open).
        file.write_all(&frame(key, value))
            .map_err(|e| io_err(&self.path, e))?;
        self.index.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn iter_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.index
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn flush(&mut self) -> Result<(), LabError> {
        if let Some(file) = self.file.as_mut() {
            file.flush().map_err(|e| io_err(&self.path, e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ale-lab-db-{}-{name}", std::process::id()))
    }

    /// The shared put script the equivalence tests replay: inserts,
    /// overwrites, and two key prefixes.
    fn script(db: &mut dyn Db) {
        db.put(b"t/a/01", b"one").unwrap();
        db.put(b"t/a/00", b"zero").unwrap();
        db.put(b"s/a/rounds", b"{\"mean\":1.0}").unwrap();
        db.put(b"t/a/01", b"one-rewritten").unwrap();
        db.put(b"t/b/00", b"other").unwrap();
        db.flush().unwrap();
    }

    fn snapshot(db: &dyn Db) -> Vec<(Vec<u8>, Vec<u8>)> {
        db.iter_prefix(b"")
    }

    #[test]
    fn mem_and_aof_backends_are_equivalent() {
        let path = tmp("equiv.db");
        std::fs::remove_file(&path).ok();
        let mut mem = MemDb::new();
        let mut aof = AofDb::create(&path).unwrap();
        script(&mut mem);
        script(&mut aof);
        assert_eq!(snapshot(&mem), snapshot(&aof));
        assert_eq!(mem.len(), 4);
        assert_eq!(mem.get(b"t/a/01"), Some(b"one-rewritten".to_vec()));
        assert_eq!(aof.get(b"t/a/01"), Some(b"one-rewritten".to_vec()));
        assert_eq!(mem.get(b"t/nope"), None);
        // Prefix scans agree and are sorted.
        let t_mem = mem.iter_prefix(b"t/");
        let t_aof = aof.iter_prefix(b"t/");
        assert_eq!(t_mem, t_aof);
        assert_eq!(t_mem.len(), 3);
        assert!(t_mem.windows(2).all(|w| w[0].0 < w[1].0));
        // Reopening the file replays to the same state.
        drop(aof);
        let reopened = AofDb::open(&path).unwrap();
        assert!(!reopened.truncated());
        assert_eq!(snapshot(&reopened), snapshot(&mem));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recovered_and_dropped() {
        let path = tmp("torn.db");
        std::fs::remove_file(&path).ok();
        {
            let mut db = AofDb::create(&path).unwrap();
            script(&mut db);
        }
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the final entry.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        // Read-only open reports the tear without touching the file.
        let ro = AofDb::open_read(&path).unwrap();
        assert!(ro.truncated());
        assert_eq!(ro.len(), 3);
        assert_eq!(std::fs::read(&path).unwrap().len(), full.len() - 3);
        // Writable open drops the tail; appends land cleanly after it.
        let mut db = AofDb::open(&path).unwrap();
        assert!(db.truncated());
        assert_eq!(db.get(b"t/b/00"), None, "torn entry dropped");
        db.put(b"t/b/00", b"other").unwrap();
        drop(db);
        let back = AofDb::open(&path).unwrap();
        assert!(!back.truncated());
        assert_eq!(back.get(b"t/b/00"), Some(b"other".to_vec()));
        assert_eq!(back.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_prefix_recovers_nothing() {
        let path = tmp("garbage.db");
        std::fs::write(&path, b"not an aof\n").unwrap();
        let db = AofDb::open_read(&path).unwrap();
        assert!(db.truncated());
        assert_eq!(db.len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_is_sorted_deduplicated_and_deterministic() {
        let a = tmp("compact-a.db");
        let b = tmp("compact-b.db");
        for p in [&a, &b] {
            std::fs::remove_file(p).ok();
        }
        // Same final state via different put orders.
        let mut da = AofDb::create(&a).unwrap();
        script(&mut da);
        let mut db_b = AofDb::create(&b).unwrap();
        db_b.put(b"t/b/00", b"other").unwrap();
        db_b.put(b"s/a/rounds", b"{\"mean\":1.0}").unwrap();
        db_b.put(b"t/a/00", b"zero").unwrap();
        db_b.put(b"t/a/01", b"one-rewritten").unwrap();
        da.compact().unwrap();
        db_b.compact().unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        // Compacted logs replay to the same index, and stay appendable.
        da.put(b"z/tail", b"post-compact").unwrap();
        drop(da);
        let back = AofDb::open(&a).unwrap();
        assert!(!back.truncated());
        assert_eq!(back.get(b"z/tail"), Some(b"post-compact".to_vec()));
        assert_eq!(back.len(), 5);
        for p in [&a, &b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn values_with_newlines_and_tabs_survive_framing() {
        let path = tmp("binary.db");
        std::fs::remove_file(&path).ok();
        let mut db = AofDb::create(&path).unwrap();
        let value = b"line1\nline2\tcol\n#fake 0 0\n";
        db.put(b"k\n1", value).unwrap();
        drop(db);
        let back = AofDb::open(&path).unwrap();
        assert!(!back.truncated());
        assert_eq!(back.get(b"k\n1"), Some(value.to_vec()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_entries_preserves_file_order_offsets_and_duplicates() {
        let path = tmp("scan.db");
        std::fs::remove_file(&path).ok();
        {
            let mut db = AofDb::create(&path).unwrap();
            script(&mut db);
        }
        let data = std::fs::read(&path).unwrap();
        let (entries, valid_len) = scan_entries(&data);
        assert_eq!(valid_len, data.len());
        // File order, not key order; the overwrite appears twice.
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(
            keys,
            vec![
                b"t/a/01".as_slice(),
                b"t/a/00",
                b"s/a/rounds",
                b"t/a/01",
                b"t/b/00"
            ]
        );
        assert_eq!(entries[0].offset, 0);
        assert_eq!(entries[3].value, b"one-rewritten");
        // Every offset is a parse boundary: rescanning from it yields
        // exactly the remaining suffix.
        for (i, e) in entries.iter().enumerate() {
            let (rest, len) = scan_entries(&data[e.offset as usize..]);
            assert_eq!(rest.len(), entries.len() - i);
            assert_eq!(e.offset as usize + len, data.len());
        }
        std::fs::remove_file(&path).ok();
    }

    /// The serve/tail concurrency contract: a reader opened with
    /// [`AofDb::open_read`] (or scanning raw bytes) while a writer
    /// appends only ever sees the valid framed prefix, and any valid
    /// prefix length it observes stays an entry boundary as the journal
    /// grows — including across a torn (partially written) tail.
    #[test]
    fn concurrent_reader_sees_only_the_valid_framed_prefix() {
        let path = tmp("tail.db");
        std::fs::remove_file(&path).ok();
        let mut writer = AofDb::create(&path).unwrap();
        let mut cursors = vec![0u64];
        for i in 0..5u32 {
            writer
                .put(format!("t/x/{i:02}").as_bytes(), b"{\"rounds\":1}")
                .unwrap();
            writer.flush().unwrap();
            // A second handle tails the same file mid-run.
            let reader = AofDb::open_read(&path).unwrap();
            assert!(!reader.truncated());
            assert_eq!(reader.len(), i as usize + 1);
            let data = std::fs::read(&path).unwrap();
            let (entries, valid_len) = scan_entries(&data);
            assert_eq!(entries.len(), i as usize + 1);
            assert_eq!(valid_len, data.len());
            cursors.push(valid_len as u64);
        }
        // Simulate a torn tail mid-write: append only the first half of
        // a framed entry, as a kill mid-`write` would leave behind.
        let full_entry = frame(b"t/x/05", b"{\"rounds\":2}");
        let torn = &full_entry[..full_entry.len() / 2];
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(torn).unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        let (entries, valid_len) = scan_entries(&data);
        assert_eq!(entries.len(), 5, "torn tail is not an entry");
        assert_eq!(valid_len, data.len() - torn.len());
        let reader = AofDb::open_read(&path).unwrap();
        assert!(reader.truncated());
        assert_eq!(reader.len(), 5);
        // The write completes; the reader's old cursor is still a valid
        // boundary and yields exactly the new entry.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&full_entry[torn.len()..]).unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        let (entries, full_len) = scan_entries(&data);
        assert_eq!(entries.len(), 6);
        assert_eq!(full_len, data.len());
        for cursor in cursors {
            let (suffix, _) = scan_entries(&data[cursor as usize..]);
            assert!(
                suffix.is_empty() || suffix[0].key.starts_with(b"t/x/"),
                "cursor {cursor} no longer on an entry boundary"
            );
            let expect = entries.iter().filter(|e| e.offset >= cursor).count();
            assert_eq!(suffix.len(), expect);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_only_snapshots_refuse_puts() {
        let path = tmp("ro.db");
        std::fs::remove_file(&path).ok();
        {
            let mut db = AofDb::create(&path).unwrap();
            db.put(b"a", b"1").unwrap();
        }
        let mut ro = AofDb::open_read(&path).unwrap();
        assert!(matches!(ro.put(b"b", b"2"), Err(LabError::Io(_))));
        std::fs::remove_file(&path).ok();
    }
}
