//! The run engine: parameter-space expansion (`--param`/`--n`/`--topo`
//! overrides applied and recorded) → point selection (`--algo` filter,
//! `--shard` slicing) → parallel binding → seed-fleet execution →
//! streaming aggregation → persistence.
//!
//! Determinism contract: given the same scenario, grid config, master
//! seed, and seed counts, two runs produce identical `Vec<TrialRecord>`
//! at *any* worker count — trial seeds are derived positionally
//! ([`crate::fleet::derive_seed`]) and results are merged in task order.
//! Selection composes with that contract: seeds derive from a point's
//! position in the **full** grid, so a filtered or sharded run reproduces
//! exactly the trials the full run would have produced for those points —
//! the shards of a `--shard 0/k .. (k-1)/k` sweep union to the full run
//! byte for byte.

use crate::agg::RunSummary;
use crate::fleet;
use crate::runners::Algorithm;
use crate::scenario::{GridConfig, LabError, Scenario, TrialRecord};
use crate::store::{RunConfig, RunManifest, RunWriter, TrialKey};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

/// Everything needed to execute one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Master seed; every trial seed derives from it.
    pub master_seed: u64,
    /// Seeds per grid point (`None` → the scenario default).
    pub seeds: Option<u64>,
    /// Worker threads.
    pub workers: usize,
    /// Grid-shaping flags.
    pub grid: GridConfig,
    /// `--algo` filter: run only grid points whose algorithm is listed
    /// (empty → no filter).
    pub algos: Vec<Algorithm>,
    /// `--shard i/k`: run every `k`-th selected point starting at `i`.
    /// `(0, 1)` is the whole run.
    pub shard: (u64, u64),
    /// Output directory for the result store (`None` → in-memory only).
    pub out: Option<PathBuf>,
    /// Emit progress lines to stderr.
    pub progress: bool,
    /// Stream telemetry events (JSONL) to this path for the duration of
    /// the run. The stream is a side-channel: it never participates in
    /// the store's byte-identical guarantees (see [`crate::telemetry`]).
    pub telemetry: Option<PathBuf>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            master_seed: 1,
            seeds: None,
            workers: fleet::default_workers(),
            grid: GridConfig::default(),
            algos: Vec::new(),
            shard: (0, 1),
            out: None,
            progress: false,
            telemetry: None,
        }
    }
}

/// A completed run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Every trial, ordered by (grid point, seed index).
    pub records: Vec<TrialRecord>,
    /// Streaming aggregates per grid point.
    pub summary: RunSummary,
    /// The scenario's rendered report.
    pub report: String,
}

/// Splits the engine-level `seeds-per-point` pseudo-axis out of the grid
/// config: returns the config without it plus the parsed count, if given.
///
/// # Errors
///
/// [`LabError::BadArgs`] when the key is repeated, carries anything but
/// exactly one value, or the value is not a positive integer — the same
/// exit-2 contract real `--param` axes have.
fn extract_seeds_per_point(grid: &GridConfig) -> Result<(GridConfig, Option<u64>), LabError> {
    let mut cfg = grid.clone();
    let mut seeds: Option<u64> = None;
    let mut rest = Vec::with_capacity(cfg.params.len());
    for (key, values) in std::mem::take(&mut cfg.params) {
        if key != "seeds-per-point" {
            rest.push((key, values));
            continue;
        }
        if seeds.is_some() {
            return Err(LabError::BadArgs(
                "parameter 'seeds-per-point' given more than once".into(),
            ));
        }
        let [value] = values.as_slice() else {
            return Err(LabError::BadArgs(format!(
                "--param seeds-per-point: expected exactly one value, got {}",
                values.len()
            )));
        };
        let parsed: u64 = value.parse().map_err(|_| {
            LabError::BadArgs(format!(
                "--param seeds-per-point: '{value}' is not an unsigned integer"
            ))
        })?;
        if parsed == 0 {
            return Err(LabError::BadArgs(
                "--param seeds-per-point must be at least 1".into(),
            ));
        }
        seeds = Some(parsed);
    }
    cfg.params = rest;
    Ok((cfg, seeds))
}

/// Extracts the engine-level `graph-seed` pseudo-axis: `--param
/// graph-seed=s1,s2` multiplies every grid point per listed
/// random-topology build seed (scenarios read it through
/// [`crate::scenario::PointView::graph_seed`]; absent, their fixed
/// per-scenario constants remain the defaults and the grid is
/// untouched).
///
/// # Errors
///
/// [`LabError::BadArgs`] when the key is repeated, a value is not an
/// unsigned integer, or the same seed is listed twice — the same exit-2
/// contract real `--param` axes have.
fn extract_graph_seeds(grid: &GridConfig) -> Result<(GridConfig, Option<Vec<u64>>), LabError> {
    let mut cfg = grid.clone();
    let mut seeds: Option<Vec<u64>> = None;
    let mut rest = Vec::with_capacity(cfg.params.len());
    for (key, values) in std::mem::take(&mut cfg.params) {
        if key != "graph-seed" {
            rest.push((key, values));
            continue;
        }
        if seeds.is_some() {
            return Err(LabError::BadArgs(
                "parameter 'graph-seed' given more than once".into(),
            ));
        }
        if values.is_empty() {
            return Err(LabError::BadArgs(
                "--param graph-seed needs at least one seed".into(),
            ));
        }
        let mut parsed = Vec::with_capacity(values.len());
        for value in &values {
            let seed: u64 = value.parse().map_err(|_| {
                LabError::BadArgs(format!(
                    "--param graph-seed: '{value}' is not an unsigned integer"
                ))
            })?;
            if parsed.contains(&seed) {
                return Err(LabError::BadArgs(format!(
                    "--param graph-seed lists seed {seed} twice"
                )));
            }
            parsed.push(seed);
        }
        seeds = Some(parsed);
    }
    cfg.params = rest;
    Ok((cfg, seeds))
}

/// Executes `scenario` under `spec`.
///
/// # Errors
///
/// Propagates grid/bind/trial failures and result-store IO errors.
pub fn execute(scenario: &dyn Scenario, spec: &RunSpec) -> Result<RunOutput, LabError> {
    execute_inner(scenario, spec, None)
}

/// Completes an interrupted (or torn) run directory in place: rebuilds
/// the [`RunSpec`] from the manifest's stored invocation config,
/// re-expands the parameter space, verifies it hashes to the stored
/// sweep identity, recovers every already-durable trial from the
/// `trials.db` journal (and any valid `trials.jsonl` prefix), executes
/// only the missing trials, and finishes the store — producing a
/// directory byte-identical to an uninterrupted run, at any worker
/// count. `workers` overrides the thread count for the remaining work
/// only; the manifest keeps the original value.
///
/// # Errors
///
/// [`LabError::BadArgs`] when the directory is not resumable (pre-v2
/// manifest with no config, a merged multi-slice store, or a parameter
/// space that no longer matches the stored one);
/// [`LabError::BadRecord`] on corrupt journal/log contents; trial and
/// IO failures propagate.
pub fn resume(dir: &Path, workers: Option<usize>, progress: bool) -> Result<RunOutput, LabError> {
    let manifest = crate::store::load_manifest(&dir.join("manifest.json"))?;
    let Some(config) = manifest.config.clone() else {
        return Err(LabError::BadArgs(format!(
            "{}: manifest records no invocation config (store written before resume support) — \
             re-run the sweep instead",
            dir.display()
        )));
    };
    let shard = parse_resumable_shard(&manifest.shard, dir)?;
    let scenario = crate::registry::find(&manifest.scenario).ok_or_else(|| {
        LabError::UnknownScenario(format!(
            "{} (named by {}/manifest.json)",
            manifest.scenario,
            dir.display()
        ))
    })?;
    let mut topologies = Vec::with_capacity(config.topos.len());
    for t in &config.topos {
        topologies.push(
            t.parse().map_err(|e| {
                LabError::BadRecord(format!("manifest topology override '{t}': {e}"))
            })?,
        );
    }
    let mut algos = Vec::with_capacity(config.algos.len());
    for name in &config.algos {
        algos.push(Algorithm::from_name(name).ok_or_else(|| {
            LabError::BadRecord(format!("manifest names unknown algorithm '{name}'"))
        })?);
    }
    let spec = RunSpec {
        master_seed: manifest.master_seed,
        seeds: Some(manifest.seeds),
        workers: workers.unwrap_or(manifest.workers),
        grid: GridConfig {
            quick: manifest.quick,
            ns: config.ns.iter().map(|&n| n as usize).collect(),
            topologies,
            params: config.params.clone(),
        },
        algos,
        shard,
        out: Some(dir.to_path_buf()),
        progress,
        telemetry: None,
    };
    execute_inner(scenario.as_ref(), &spec, Some(&manifest))
}

/// Parses a manifest shard label back into `(i, k)`. Merged partial
/// stores carry multi-index labels (`"0,2/3"`) — those are unions, not
/// executable slices, so they are not resumable.
fn parse_resumable_shard(label: &str, dir: &Path) -> Result<(u64, u64), LabError> {
    let parse = |s: &str| s.parse::<u64>().ok();
    if let Some((i, k)) = label.split_once('/') {
        if let (Some(i), Some(k)) = (parse(i), parse(k)) {
            return Ok((i, k));
        }
        if i.contains(',') {
            return Err(LabError::BadArgs(format!(
                "{}: shard '{label}' is a merged partial union — resume the remaining original \
                 shards and merge again instead",
                dir.display()
            )));
        }
    }
    Err(LabError::BadArgs(format!(
        "{}: manifest shard '{label}' is not an 'i/k' slice",
        dir.display()
    )))
}

fn execute_inner(
    scenario: &dyn Scenario,
    spec: &RunSpec,
    resume_from: Option<&RunManifest>,
) -> Result<RunOutput, LabError> {
    // Declared before any span so it drops last: spans emitted during
    // unwinding/return still reach the sink before it is uninstalled.
    let telemetry_guard = match &spec.telemetry {
        Some(path) => Some(crate::telemetry::TelemetryGuard::install(path)?),
        None => None,
    };
    let mut sweep = ale_telemetry::Span::begin("sweep")
        .attr("scenario", scenario.name())
        .attr("master_seed", spec.master_seed)
        .attr("quick", spec.grid.quick);

    // `seeds-per-point` is an engine-level pseudo-axis: `--param
    // seeds-per-point=N` sets the per-point seed count exactly like
    // `--seeds N`, but rides the `--param` channel so declarative sweep
    // invocations need no dedicated flag. It is extracted (and validated
    // with the same BadArgs/exit-2 contract as real axes) before space
    // expansion — scenarios do not declare it.
    let (grid_cfg, seeds_param) = extract_seeds_per_point(&spec.grid)?;
    if seeds_param.is_some() && spec.seeds.is_some() {
        return Err(LabError::BadArgs(
            "--param seeds-per-point conflicts with --seeds (give one)".into(),
        ));
    }
    // The replayable config keeps `graph-seed` (unlike `seeds-per-point`,
    // which `resume` re-injects via `--seeds`): a resumed run must
    // re-multiply the grid exactly as the original invocation did.
    let config_params = grid_cfg.params.clone();
    let (grid_cfg, graph_seeds) = extract_graph_seeds(&grid_cfg)?;

    let expand_span = ale_telemetry::Span::begin("expand");
    let expansion = scenario.space().expand(&grid_cfg)?;
    drop(expand_span);
    let mut resolved_space = expansion.resolved_lines();
    let mut full_grid = expansion.points;
    if let Some(graph_seeds) = &graph_seeds {
        // Point-major × seed-minor, so a point's graph-seed variants are
        // adjacent in the grid (and in every report).
        let mut multiplied = Vec::with_capacity(full_grid.len() * graph_seeds.len());
        for point in &full_grid {
            for &seed in graph_seeds {
                let mut p = point.clone();
                p.label = format!("{}/gs={seed}", p.label);
                p.values
                    .push(("graph-seed", crate::params::AxisValue::Int(seed)));
                p.params.push(("graph-seed".to_string(), seed as f64));
                multiplied.push(p);
            }
        }
        full_grid = multiplied;
        // Recorded in the resolved space: the sweep identity (space_hash)
        // and the manifest both see the axis.
        resolved_space.push(format!(
            "graph-seed={}",
            graph_seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    if full_grid.is_empty() {
        return Err(LabError::BadArgs(format!(
            "scenario '{}' produced an empty grid for these arguments",
            scenario.name()
        )));
    }
    let (shard_i, shard_k) = spec.shard;
    if shard_k == 0 || shard_i >= shard_k {
        return Err(LabError::BadArgs(format!(
            "--shard {shard_i}/{shard_k}: the index must be below the count"
        )));
    }

    // Selection: keep each point's ORIGINAL grid index — the seed stream
    // discriminator — so filtered/sharded runs reproduce the full run's
    // trials for the points they execute.
    let mut selected: Vec<usize> = (0..full_grid.len()).collect();
    if !spec.algos.is_empty() {
        selected.retain(|&i| {
            full_grid[i]
                .algorithm
                .is_some_and(|a| spec.algos.contains(&a))
        });
        if selected.is_empty() {
            return Err(LabError::BadArgs(format!(
                "--algo matched no grid points of scenario '{}' (does it have an algorithm axis?)",
                scenario.name()
            )));
        }
    }
    if shard_k > 1 {
        selected = selected
            .into_iter()
            .enumerate()
            .filter(|(pos, _)| *pos as u64 % shard_k == shard_i)
            .map(|(_, i)| i)
            .collect();
        if selected.is_empty() {
            return Err(LabError::BadArgs(format!(
                "shard {shard_i}/{shard_k} selects no grid points"
            )));
        }
    }
    let grid: Vec<_> = selected.iter().map(|&i| full_grid[i].clone()).collect();

    let seeds_global = spec
        .seeds
        .or(seeds_param)
        .unwrap_or_else(|| scenario.default_seeds(grid_cfg.quick));
    if seeds_global == 0 {
        return Err(LabError::BadArgs("--seeds must be at least 1".into()));
    }
    let workers = fleet::effective_workers(spec.workers);

    sweep.set_attr("points", grid.len());

    // One-time per-point preparation, itself fleet-parallel (property
    // computation dominates for large grids).
    let bind_span = ale_telemetry::Span::begin("bind").attr("points", grid.len());
    let bound = fleet::run_indexed(grid.len(), workers, |i| scenario.bind(&grid[i]));
    let mut binders = Vec::with_capacity(bound.len());
    for b in bound {
        binders.push(b?);
    }
    drop(bind_span);

    // Flatten (point × seed-index) into a dense task list.
    let counts: Vec<u64> = grid
        .iter()
        .map(|p| p.seeds.unwrap_or(seeds_global))
        .collect();
    let mut offsets = Vec::with_capacity(grid.len() + 1);
    let mut total = 0u64;
    for c in &counts {
        offsets.push(total);
        total += c;
    }
    offsets.push(total);
    let total = usize::try_from(total)
        .map_err(|_| LabError::BadArgs("trial count overflows usize".into()))?;

    let scenario_name = scenario.name();
    let master = spec.master_seed;
    let telemetry_on = spec.telemetry.is_some();

    // Persist as we go: the manifest (marked incomplete) and the keyed
    // trials.db journal exist BEFORE the first trial executes, and every
    // worker makes its record durable the moment it finishes — a kill at
    // any point leaves a directory `run --resume` can complete.
    let labels: Vec<String> = grid.iter().map(|p| p.label.clone()).collect();
    let store_hash = crate::store::space_hash(
        scenario_name,
        master,
        seeds_global,
        grid_cfg.quick,
        &resolved_space,
    );
    let mut durable: BTreeMap<usize, TrialRecord> = BTreeMap::new();
    let writer = match &spec.out {
        Some(dir) => Some(match resume_from {
            None => {
                let mut m = RunManifest::for_run(
                    scenario_name,
                    master,
                    seeds_global,
                    workers,
                    labels.clone(),
                    grid_cfg.quick,
                    &format!("{shard_i}/{shard_k}"),
                    resolved_space,
                );
                m.positions = selected.iter().map(|&i| i as u64).collect();
                m.counts = counts.clone();
                m.config = Some(RunConfig {
                    ns: grid_cfg.ns.iter().map(|&n| n as u64).collect(),
                    topos: grid_cfg.topologies.iter().map(|t| t.spec()).collect(),
                    params: config_params.clone(),
                    algos: spec.algos.iter().map(|a| a.to_string()).collect(),
                });
                RunWriter::create(dir, &m)?
            }
            Some(stored) => {
                let positions: Vec<u64> = selected.iter().map(|&i| i as u64).collect();
                verify_resumable(
                    stored,
                    &labels,
                    &positions,
                    &counts,
                    &resolved_space,
                    seeds_global,
                    store_hash,
                )?;
                // Keep the stored manifest verbatim (its `workers`, git
                // stamps, …) so the finished store is byte-identical to
                // the uninterrupted run's.
                let (w, entries) = RunWriter::resume(dir, stored)?;
                durable = recover_durable(
                    dir,
                    &w,
                    entries,
                    scenario_name,
                    store_hash,
                    master,
                    &selected,
                    &labels,
                    &counts,
                    &offsets,
                )?;
                w
            }
        }),
        None => None,
    };
    let missing: Vec<usize> = (0..total).filter(|t| !durable.contains_key(t)).collect();

    let grid_ref = &grid;
    let writer_ref = writer.as_ref();
    let binders_ref = &binders;
    let offsets_ref = &offsets;
    let selected_ref = &selected;
    let trials_done = ale_telemetry::Counter::new("trials_completed");
    let trials_done_ref = &trials_done;
    let task = move |t: usize| -> Result<(usize, TrialRecord), LabError> {
        let t = t as u64;
        // partition_point: first offset beyond t identifies the point.
        let pi = offsets_ref.partition_point(|&o| o <= t) - 1;
        let si = t - offsets_ref[pi];
        // Seed stream = the point's position in the FULL grid.
        let seed = fleet::derive_seed(master, selected_ref[pi] as u64, si);
        // Tag every network this trial builds with the task index, so its
        // round-batch events stay attributable across worker schedules.
        let _trace = telemetry_on.then(|| crate::telemetry::TrialTraceGuard::install(t));
        let start = std::time::Instant::now();
        let mut record = binders_ref[pi](seed)?;
        let wall = start.elapsed().as_secs_f64();
        record.wall_ms = Some(wall * 1e3);
        if wall > 0.0 {
            record.msgs_per_sec = Some(record.messages as f64 / wall);
        }
        // Durable the moment the trial ends: once the journal append
        // returns, a crash cannot lose this record.
        if let Some(w) = writer_ref {
            w.put(
                &TrialKey {
                    scenario: scenario_name.to_string(),
                    space_hash: store_hash,
                    position: selected_ref[pi] as u64,
                    seed_index: si,
                },
                &record,
            )?;
        }
        trials_done_ref.add(1);
        Ok((pi, record))
    };

    let run_start = std::time::Instant::now();
    let progress_fn = move |done: usize, all: usize| {
        // ETA from the throughput counter: completed trials over elapsed
        // wall-clock, assuming the remaining trials cost the same.
        let completed = (trials_done_ref.value() as usize).max(done).min(all);
        let elapsed = run_start.elapsed().as_secs_f64();
        trials_done_ref.sample();
        if completed > 0 && elapsed > 0.0 {
            let rate = completed as f64 / elapsed;
            let eta = (all - completed) as f64 / rate;
            eprintln!("[{scenario_name}] {completed}/{all} trials ({rate:.1}/s, ETA {eta:.0}s)");
        } else {
            eprintln!("[{scenario_name}] {completed}/{all} trials");
        }
    };
    // Only the tasks the journal does not already hold execute; a fresh
    // run has them all missing, a resume typically few.
    let missing_ref = &missing;
    let raw = fleet::run_indexed_with_progress(
        missing_ref.len(),
        workers,
        move |j| task(missing_ref[j]),
        spec.progress
            .then_some(&progress_fn as &(dyn Fn(usize, usize) + Sync)),
    );

    // Merge in task order. Trial/point spans are emitted HERE, not from
    // the workers, so the event sequence is deterministic at any worker
    // count (wall-clock attribute values still vary, sequences do not).
    let mut summary = RunSummary::new(scenario_name, &grid, master, seeds_global, workers);
    let mut records = Vec::with_capacity(total);
    let mut wall_hist = ale_telemetry::Histogram::new("trial_wall_us");
    // (point index, wall_ms, messages, rounds, trials) of the point
    // currently being merged.
    let mut open_point: Option<(usize, f64, u64, u64, u64)> = None;
    let emit_point = |pi: usize, wall_ms: f64, messages: u64, rounds: u64, trials: u64| {
        let wall_s = wall_ms / 1e3;
        let mut attrs = vec![
            (
                "point".to_string(),
                ale_telemetry::AttrValue::Str(grid_ref[pi].label.clone()),
            ),
            (
                "n".to_string(),
                ale_telemetry::AttrValue::U64(grid_ref[pi].n as u64),
            ),
            ("trials".to_string(), ale_telemetry::AttrValue::U64(trials)),
            (
                "messages".to_string(),
                ale_telemetry::AttrValue::U64(messages),
            ),
            ("rounds".to_string(), ale_telemetry::AttrValue::U64(rounds)),
        ];
        if wall_s > 0.0 {
            attrs.push((
                "msgs_per_sec".to_string(),
                ale_telemetry::AttrValue::F64(messages as f64 / wall_s),
            ));
            attrs.push((
                "rounds_per_sec".to_string(),
                ale_telemetry::AttrValue::F64(rounds as f64 / wall_s),
            ));
        }
        ale_telemetry::emit_span("point", (wall_ms * 1e3) as u64, attrs);
    };
    // Merge durable (journal-recovered) and fresh (fleet) results back
    // into the dense task order: `missing` is ascending and the fleet
    // returns results in task-submission order, so pulling the next
    // fresh result exactly when a task is not durable reproduces the
    // uninterrupted run's record sequence.
    let mut fresh = raw.into_iter();
    for t in 0..total {
        let record = match durable.remove(&t) {
            Some(r) => r,
            None => {
                let (_, r) = fresh
                    .next()
                    .expect("fleet returned fewer results than missing tasks")?;
                r
            }
        };
        let pi = offsets.partition_point(|&o| o <= t as u64) - 1;
        if ale_telemetry::enabled() {
            let wall_ms = record.wall_ms.unwrap_or(0.0);
            wall_hist.record((wall_ms * 1e3) as u64);
            let mut attrs = vec![
                (
                    "point".to_string(),
                    ale_telemetry::AttrValue::Str(record.point.clone()),
                ),
                (
                    "seed".to_string(),
                    ale_telemetry::AttrValue::U64(record.seed),
                ),
                ("n".to_string(), ale_telemetry::AttrValue::U64(record.n)),
                (
                    "rounds".to_string(),
                    ale_telemetry::AttrValue::U64(record.rounds),
                ),
                (
                    "congest_rounds".to_string(),
                    ale_telemetry::AttrValue::U64(record.congest_rounds),
                ),
                (
                    "messages".to_string(),
                    ale_telemetry::AttrValue::U64(record.messages),
                ),
                (
                    "bits".to_string(),
                    ale_telemetry::AttrValue::U64(record.bits),
                ),
                ("ok".to_string(), ale_telemetry::AttrValue::Bool(record.ok)),
            ];
            if let Some(mps) = record.msgs_per_sec {
                attrs.push((
                    "msgs_per_sec".to_string(),
                    ale_telemetry::AttrValue::F64(mps),
                ));
            }
            ale_telemetry::emit_span("trial", (wall_ms * 1e3) as u64, attrs);
            open_point = match open_point.take() {
                Some((open_pi, wall, msgs, rounds, trials)) if open_pi == pi => Some((
                    pi,
                    wall + wall_ms,
                    msgs + record.messages,
                    rounds + record.rounds,
                    trials + 1,
                )),
                Some((open_pi, wall, msgs, rounds, trials)) => {
                    emit_point(open_pi, wall, msgs, rounds, trials);
                    Some((pi, wall_ms, record.messages, record.rounds, 1))
                }
                None => Some((pi, wall_ms, record.messages, record.rounds, 1)),
            };
        }
        summary.record(pi, &record);
        records.push(record);
    }
    if let Some((pi, wall, msgs, rounds, trials)) = open_point.take() {
        emit_point(pi, wall, msgs, rounds, trials);
    }
    wall_hist.sample(Vec::new());
    trials_done.sample();

    let report = scenario.summarize(&summary);

    if let Some(w) = writer {
        w.finish(&records, &summary)?;
    }

    // End the sweep span, then tear the sink down (flushing the file)
    // before the side-channel copy below reads it.
    sweep.set_attr("trials", records.len());
    sweep.end();
    drop(telemetry_guard);
    if let (Some(src), Some(dir)) = (&spec.telemetry, &spec.out) {
        let dst = dir.join("telemetry.jsonl");
        if src != &dst {
            std::fs::copy(src, &dst)
                .map_err(|e| LabError::Io(format!("copy telemetry to {}: {e}", dst.display())))?;
        }
    }

    Ok(RunOutput {
        records,
        summary,
        report,
    })
}

/// Checks that a re-expanded sweep matches the manifest it resumes:
/// already-durable records keyed under the stored identity must mean the
/// same trials today, or completing the run would silently mix sweeps.
fn verify_resumable(
    stored: &RunManifest,
    labels: &[String],
    positions: &[u64],
    counts: &[u64],
    resolved_space: &[String],
    seeds_global: u64,
    hash: u64,
) -> Result<(), LabError> {
    let drift = |what: &str| {
        LabError::BadArgs(format!(
            "--resume: the re-expanded parameter space does not match the stored manifest \
             ({what} changed) — the scenario or its overrides drifted since the run started, \
             so its records cannot be completed; start a fresh run"
        ))
    };
    if stored.space != resolved_space {
        return Err(drift("resolved space"));
    }
    if stored.seeds != seeds_global {
        return Err(drift("seed count"));
    }
    if stored.space_hash != 0 && stored.space_hash != hash {
        return Err(drift("space hash"));
    }
    if stored.grid != labels {
        return Err(drift("grid labels"));
    }
    if stored.effective_positions() != positions {
        return Err(drift("grid positions"));
    }
    if stored.effective_counts() != counts {
        return Err(drift("per-point trial counts"));
    }
    Ok(())
}

/// Collects every already-durable trial of a resumed run, keyed by dense
/// task index: the `trials.db` journal's recovered prefix, plus any
/// valid `trials.jsonl` prefix (a finished store whose journal was lost,
/// or a log truncated by the crash) — jsonl-only records are re-put into
/// the journal so they stay durable through the resumed run too. Every
/// record is validated against the sweep identity (key fields, derived
/// seed, point label) before being trusted.
#[allow(clippy::too_many_arguments)]
fn recover_durable(
    dir: &Path,
    writer: &RunWriter,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    scenario_name: &str,
    hash: u64,
    master: u64,
    selected: &[usize],
    labels: &[String],
    counts: &[u64],
    offsets: &[u64],
) -> Result<BTreeMap<usize, TrialRecord>, LabError> {
    let mut durable: BTreeMap<usize, TrialRecord> = BTreeMap::new();
    let pos_to_pi: HashMap<u64, usize> = selected
        .iter()
        .enumerate()
        .map(|(pi, &i)| (i as u64, pi))
        .collect();
    let bad = |key: &[u8], why: &str| {
        LabError::BadRecord(format!(
            "{}/trials.db: entry '{}' {why}",
            dir.display(),
            String::from_utf8_lossy(key)
        ))
    };
    for (key, value) in entries {
        let k = TrialKey::decode(&key)?;
        if k.scenario != scenario_name || k.space_hash != hash {
            return Err(bad(&key, "belongs to a different sweep"));
        }
        let Some(&pi) = pos_to_pi.get(&k.position) else {
            return Err(bad(&key, "names a grid position outside this shard"));
        };
        if k.seed_index >= counts[pi] {
            return Err(bad(&key, "has a seed index beyond the point's trial count"));
        }
        let text =
            std::str::from_utf8(&value).map_err(|_| bad(&key, "holds a non-UTF-8 payload"))?;
        let record = crate::json::parse(text)
            .map_err(LabError::BadRecord)
            .and_then(|v| TrialRecord::from_json(&v))
            .map_err(|e| bad(&key, &format!("does not parse: {e}")))?;
        let seed = fleet::derive_seed(master, k.position, k.seed_index);
        if record.seed != seed || record.point != labels[pi] {
            return Err(bad(&key, "payload disagrees with its key (corruption)"));
        }
        durable.insert((offsets[pi] + k.seed_index) as usize, record);
    }
    let jsonl = dir.join("trials.jsonl");
    if jsonl.exists() {
        let (recovered, _truncated) = crate::store::load_jsonl_recover(&jsonl)?;
        let mut task_of: HashMap<(String, u64), usize> = HashMap::new();
        for (pi, label) in labels.iter().enumerate() {
            for si in 0..counts[pi] {
                let seed = fleet::derive_seed(master, selected[pi] as u64, si);
                task_of.insert((label.clone(), seed), (offsets[pi] + si) as usize);
            }
        }
        for record in recovered {
            let Some(&task) = task_of.get(&(record.point.clone(), record.seed)) else {
                return Err(LabError::BadRecord(format!(
                    "{}/trials.jsonl: record for point '{}' seed {} is outside this sweep",
                    dir.display(),
                    record.point,
                    record.seed
                )));
            };
            match durable.entry(task) {
                std::collections::btree_map::Entry::Occupied(slot) => {
                    if slot.get() != &record {
                        return Err(LabError::BadRecord(format!(
                            "{}: trials.jsonl and trials.db disagree on point '{}' seed {}",
                            dir.display(),
                            record.point,
                            record.seed
                        )));
                    }
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    let pi = offsets.partition_point(|&o| o <= task as u64) - 1;
                    writer.put(
                        &TrialKey {
                            scenario: scenario_name.to_string(),
                            space_hash: hash,
                            position: selected[pi] as u64,
                            seed_index: task as u64 - offsets[pi],
                        },
                        &record,
                    )?;
                    slot.insert(record);
                }
            }
        }
    }
    Ok(durable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Axis, Block, ParamSpace};
    use crate::scenario::{GridPoint, TrialFn};
    use ale_graph::Topology;

    /// A synthetic scenario: messages = f(seed) on two points.
    struct Synthetic;

    impl Scenario for Synthetic {
        fn name(&self) -> &'static str {
            "synthetic"
        }
        fn description(&self) -> &'static str {
            "test scenario"
        }
        fn default_seeds(&self, _quick: bool) -> u64 {
            5
        }
        fn space(&self) -> ParamSpace {
            ParamSpace::new(vec![
                Block::new("p0", vec![], |_| {
                    Ok(Some(GridPoint::new("p0").on(Topology::Cycle { n: 8 })))
                }),
                Block::new("p1", vec![], |_| {
                    Ok(Some(
                        GridPoint::new("p1")
                            .on(Topology::Complete { n: 4 })
                            .seeds(3),
                    ))
                }),
            ])
        }
        fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
            let point = point.clone();
            Ok(Box::new(move |seed| {
                let mut r = TrialRecord::new("synthetic", &point, seed);
                r.messages = seed % 1000;
                r.ok = true;
                Ok(r)
            }))
        }
    }

    #[test]
    fn executes_and_respects_per_point_seed_overrides() {
        let out = execute(&Synthetic, &RunSpec::default()).unwrap();
        // p0: 5 global seeds; p1: 3 overridden.
        assert_eq!(out.records.len(), 8);
        assert_eq!(out.summary.points[0].trials, 5);
        assert_eq!(out.summary.points[1].trials, 3);
        assert!(out.report.contains("synthetic"));
        // Records are (point, seed-index) ordered.
        assert!(out.records[..5].iter().all(|r| r.point == "p0"));
        assert!(out.records[5..].iter().all(|r| r.point == "p1"));
    }

    #[test]
    fn deterministic_across_worker_counts_and_reruns() {
        let base = execute(
            &Synthetic,
            &RunSpec {
                workers: 1,
                ..RunSpec::default()
            },
        )
        .unwrap();
        for workers in [2, 8] {
            let other = execute(
                &Synthetic,
                &RunSpec {
                    workers,
                    ..RunSpec::default()
                },
            )
            .unwrap();
            assert_eq!(base.records, other.records, "workers = {workers}");
        }
        let rerun = execute(
            &Synthetic,
            &RunSpec {
                workers: 1,
                ..RunSpec::default()
            },
        )
        .unwrap();
        assert_eq!(base.records, rerun.records);
        let reseeded = execute(
            &Synthetic,
            &RunSpec {
                master_seed: 2,
                ..RunSpec::default()
            },
        )
        .unwrap();
        assert_ne!(base.records, reseeded.records);
    }

    /// A scenario with an algorithm axis, for filter/shard tests.
    struct AlgoGrid;

    impl Scenario for AlgoGrid {
        fn name(&self) -> &'static str {
            "algo-grid"
        }
        fn description(&self) -> &'static str {
            "test scenario with algorithms"
        }
        fn default_seeds(&self, _quick: bool) -> u64 {
            4
        }
        fn space(&self) -> ParamSpace {
            ParamSpace::new(vec![Block::new(
                "grid",
                vec![Axis::algorithms("algo", crate::runners::Algorithm::ALL)],
                |ctx| {
                    let a = ctx.algorithm("algo")?;
                    Ok(Some(
                        GridPoint::new(format!("p/{a}"))
                            .on(Topology::Cycle { n: 8 })
                            .algo(a),
                    ))
                },
            )])
        }
        fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
            let point = point.clone();
            Ok(Box::new(move |seed| {
                let mut r = TrialRecord::new("algo-grid", &point, seed);
                r.ok = true;
                Ok(r)
            }))
        }
    }

    #[test]
    fn algo_filter_preserves_full_run_seeds() {
        use crate::runners::Algorithm;
        let full = execute(&AlgoGrid, &RunSpec::default()).unwrap();
        let filtered = execute(
            &AlgoGrid,
            &RunSpec {
                algos: vec![Algorithm::Kutten],
                ..RunSpec::default()
            },
        )
        .unwrap();
        assert_eq!(filtered.records.len(), 4);
        let full_kutten: Vec<_> = full
            .records
            .iter()
            .filter(|r| r.algorithm == "kutten15")
            .cloned()
            .collect();
        // Same seeds (and everything else) as the full run's kutten rows.
        assert_eq!(filtered.records, full_kutten);
    }

    #[test]
    fn algo_filter_with_no_matches_errors() {
        use crate::runners::Algorithm;
        let err = execute(
            &Synthetic,
            &RunSpec {
                algos: vec![Algorithm::Kutten],
                ..RunSpec::default()
            },
        );
        assert!(matches!(err, Err(LabError::BadArgs(_))));
    }

    #[test]
    fn shards_union_to_the_full_run() {
        let full = execute(&AlgoGrid, &RunSpec::default()).unwrap();
        let mut unioned: Vec<TrialRecord> = Vec::new();
        for i in 0..3u64 {
            let shard = execute(
                &AlgoGrid,
                &RunSpec {
                    shard: (i, 3),
                    ..RunSpec::default()
                },
            )
            .unwrap();
            unioned.extend(shard.records);
        }
        // Same multiset of trials; order differs (interleaved points).
        let key = |r: &TrialRecord| (r.point.clone(), r.seed);
        let mut a: Vec<_> = full.records.iter().map(key).collect();
        let mut b: Vec<_> = unioned.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // And the records themselves are bit-identical per (point, seed).
        let by_key: std::collections::HashMap<_, _> =
            unioned.iter().map(|r| (key(r), r.clone())).collect();
        for r in &full.records {
            assert_eq!(&by_key[&key(r)], r);
        }
    }

    #[test]
    fn bad_shards_are_rejected() {
        for shard in [(1, 1), (3, 3), (0, 0)] {
            let err = execute(
                &AlgoGrid,
                &RunSpec {
                    shard,
                    ..RunSpec::default()
                },
            );
            assert!(matches!(err, Err(LabError::BadArgs(_))), "shard {shard:?}");
        }
        // A shard index beyond the grid size selects nothing.
        let err = execute(
            &Synthetic,
            &RunSpec {
                shard: (2, 3),
                ..RunSpec::default()
            },
        );
        assert!(matches!(err, Err(LabError::BadArgs(_))));
    }

    #[test]
    fn zero_seeds_is_rejected() {
        let err = execute(
            &Synthetic,
            &RunSpec {
                seeds: Some(0),
                ..RunSpec::default()
            },
        );
        assert!(matches!(err, Err(LabError::BadArgs(_))));
    }

    fn seeds_param_spec(values: &[&str]) -> RunSpec {
        RunSpec {
            grid: GridConfig {
                params: vec![(
                    "seeds-per-point".into(),
                    values.iter().map(|v| v.to_string()).collect(),
                )],
                ..GridConfig::default()
            },
            ..RunSpec::default()
        }
    }

    #[test]
    fn seeds_per_point_param_sets_the_global_seed_count() {
        let out = execute(&Synthetic, &seeds_param_spec(&["2"])).unwrap();
        // p0: 2 seeds from the pseudo-axis; p1 keeps its override of 3.
        assert_eq!(out.summary.points[0].trials, 2);
        assert_eq!(out.summary.points[1].trials, 3);
        // Identical to the same run via --seeds, record for record.
        let flagged = execute(
            &Synthetic,
            &RunSpec {
                seeds: Some(2),
                ..RunSpec::default()
            },
        )
        .unwrap();
        assert_eq!(out.records, flagged.records);
    }

    #[test]
    fn seeds_per_point_param_is_validated() {
        for values in [
            &["0"][..],      // zero seeds
            &["x"][..],      // not an integer
            &["2", "3"][..], // multi-value: one count, not a sweep axis
            &[][..],         // empty value list
        ] {
            let err = execute(&Synthetic, &seeds_param_spec(values));
            assert!(matches!(err, Err(LabError::BadArgs(_))), "{values:?}");
        }
        // Repeated key.
        let mut spec = seeds_param_spec(&["2"]);
        spec.grid
            .params
            .push(("seeds-per-point".into(), vec!["3".into()]));
        assert!(matches!(
            execute(&Synthetic, &spec),
            Err(LabError::BadArgs(_))
        ));
        // Conflict with --seeds.
        let mut spec = seeds_param_spec(&["2"]);
        spec.seeds = Some(4);
        assert!(matches!(
            execute(&Synthetic, &spec),
            Err(LabError::BadArgs(_))
        ));
    }

    fn graph_seed_spec(values: &[&str]) -> RunSpec {
        RunSpec {
            grid: GridConfig {
                params: vec![(
                    "graph-seed".into(),
                    values.iter().map(|v| v.to_string()).collect(),
                )],
                ..GridConfig::default()
            },
            ..RunSpec::default()
        }
    }

    #[test]
    fn graph_seed_param_multiplies_the_grid_point_major() {
        let out = execute(&Synthetic, &graph_seed_spec(&["7", "9"])).unwrap();
        let labels: Vec<&str> = out
            .summary
            .points
            .iter()
            .map(|p| p.label.as_str())
            .collect();
        assert_eq!(labels, ["p0/gs=7", "p0/gs=9", "p1/gs=7", "p1/gs=9"]);
        // Per-point seed overrides survive the multiplication.
        let trials: Vec<u64> = out.summary.points.iter().map(|p| p.trials).collect();
        assert_eq!(trials, [5, 5, 3, 3]);
        // Every variant carries the seed as a knob, so reports can split
        // on it.
        for p in &out.summary.points {
            let gs = p.params.iter().find(|(k, _)| k == "graph-seed").unwrap().1;
            assert!(p.label.ends_with(&format!("/gs={gs}")));
        }
        // Absent axis: the default expansion is untouched.
        let base = execute(&Synthetic, &RunSpec::default()).unwrap();
        let base_labels: Vec<&str> = base
            .summary
            .points
            .iter()
            .map(|p| p.label.as_str())
            .collect();
        assert_eq!(base_labels, ["p0", "p1"]);
    }

    #[test]
    fn graph_seed_value_reaches_the_point_view() {
        let mut point = GridPoint::new("x");
        assert_eq!(point.view().graph_seed(3), 3, "absent axis → default");
        point
            .values
            .push(("graph-seed", crate::params::AxisValue::Int(9)));
        assert_eq!(point.view().graph_seed(3), 9);
    }

    #[test]
    fn graph_seed_param_is_validated() {
        for values in [
            &["x"][..],      // not an integer
            &["-1"][..],     // not unsigned
            &["2", "2"][..], // the same seed twice
            &[][..],         // empty value list
        ] {
            let err = execute(&Synthetic, &graph_seed_spec(values));
            assert!(matches!(err, Err(LabError::BadArgs(_))), "{values:?}");
        }
        // Repeated key.
        let mut spec = graph_seed_spec(&["2"]);
        spec.grid
            .params
            .push(("graph-seed".into(), vec!["3".into()]));
        assert!(matches!(
            execute(&Synthetic, &spec),
            Err(LabError::BadArgs(_))
        ));
    }

    #[test]
    fn graph_seed_is_recorded_in_space_and_replayable_config() {
        let dir = std::env::temp_dir().join(format!("ale-lab-engine-gs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut spec = graph_seed_spec(&["7", "9"]);
        spec.out = Some(dir.clone());
        execute(&Synthetic, &spec).unwrap();
        let manifest = crate::store::load_manifest(&dir.join("manifest.json")).unwrap();
        // The resolved space names the axis (so it feeds the sweep's
        // space_hash), and the replayable config keeps it so `resume`
        // re-multiplies the grid identically.
        assert!(manifest.space.iter().any(|l| l == "graph-seed=7,9"));
        assert_eq!(manifest.grid.len(), 4);
        let config = manifest.config.expect("config stored");
        assert!(config
            .params
            .iter()
            .any(|(k, v)| k == "graph-seed" && v == &["7".to_string(), "9".to_string()]));
        // A sweep with a different graph-seed list is a different sweep.
        let hash_a = manifest.space_hash;
        std::fs::remove_dir_all(&dir).ok();
        let mut spec_b = graph_seed_spec(&["7"]);
        spec_b.out = Some(dir.clone());
        execute(&Synthetic, &spec_b).unwrap();
        let manifest_b = crate::store::load_manifest(&dir.join("manifest.json")).unwrap();
        assert_ne!(hash_a, manifest_b.space_hash);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_runs_stream_to_a_complete_store() {
        let dir =
            std::env::temp_dir().join(format!("ale-lab-engine-stream-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let out = execute(
            &Synthetic,
            &RunSpec {
                out: Some(dir.clone()),
                ..RunSpec::default()
            },
        )
        .unwrap();
        let loaded = crate::store::load_jsonl(&dir.join("trials.jsonl")).unwrap();
        assert_eq!(loaded, out.records);
        let manifest = crate::store::load_manifest(&dir.join("manifest.json")).unwrap();
        assert_eq!(manifest.scenario, "synthetic");
        assert!(dir.join("trials.csv").exists());
        assert!(dir.join("summary.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
