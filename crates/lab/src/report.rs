//! The `ale-lab report` subcommand: per-phase wall-clock breakdown of a
//! telemetry stream.
//!
//! Input is a `telemetry.jsonl` file written by `run --telemetry` (see
//! [`crate::telemetry`] for the event schema). Unparseable lines are
//! counted and skipped, never fatal — the stream is a best-effort
//! side-channel, and a merge may have unioned files from different
//! versions.
//!
//! The report has three parts:
//!
//! 1. **Spans** — per span name: count, total/mean/max wall-clock, and
//!    the share of the sweep's wall-clock (when a `sweep` span exists);
//! 2. **Per-point throughput** — from `point` spans: trials, messages,
//!    rounds, messages/s and rounds/s;
//! 3. **Histograms and counters** — the final snapshot of each, with
//!    log-2 bucket bars for the histograms.

use crate::json::Value;
use crate::scenario::LabError;
use crate::table::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Wall-clock aggregate of one span name.
#[derive(Debug, Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// One `point` span's throughput row.
#[derive(Debug, Clone)]
struct PointRow {
    label: String,
    trials: u64,
    messages: u64,
    rounds: u64,
    msgs_per_sec: Option<f64>,
    rounds_per_sec: Option<f64>,
}

fn pretty_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn pretty_rate(r: Option<f64>) -> String {
    match r {
        Some(r) if r >= 1e6 => format!("{:.2}M", r / 1e6),
        Some(r) if r >= 1e3 => format!("{:.1}k", r / 1e3),
        Some(r) => format!("{r:.1}"),
        None => "-".to_string(),
    }
}

/// Renders the per-phase breakdown of the telemetry stream at `path`.
///
/// # Errors
///
/// [`LabError::Io`] when the file cannot be read, [`LabError::BadRecord`]
/// when it contains no parseable telemetry event at all.
pub fn report_file(path: &Path) -> Result<String, LabError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LabError::Io(format!("read {}: {e}", path.display())))?;

    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut points: Vec<PointRow> = Vec::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let mut sweep_total_us: u64 = 0;
    let mut events = 0usize;
    let mut skipped = 0usize;

    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = crate::json::parse(line) else {
            skipped += 1;
            continue;
        };
        let (Some(ev), Some(name)) = (
            v.get("ev").and_then(Value::as_str),
            v.get("name").and_then(Value::as_str),
        ) else {
            skipped += 1;
            continue;
        };
        events += 1;
        let attrs = v.get("attrs");
        let attr_u64 = |key: &str| attrs.and_then(|a| a.get(key)).and_then(Value::as_u64);
        let attr_f64 = |key: &str| attrs.and_then(|a| a.get(key)).and_then(Value::as_f64);
        match ev {
            "span" => {
                let wall = v.get("wall_us").and_then(Value::as_u64).unwrap_or(0);
                let agg = spans.entry(name.to_string()).or_default();
                agg.count += 1;
                agg.total_us += wall;
                agg.max_us = agg.max_us.max(wall);
                if name == "sweep" {
                    sweep_total_us += wall;
                }
                if name == "point" {
                    points.push(PointRow {
                        label: attrs
                            .and_then(|a| a.get("point"))
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        trials: attr_u64("trials").unwrap_or(0),
                        messages: attr_u64("messages").unwrap_or(0),
                        rounds: attr_u64("rounds").unwrap_or(0),
                        msgs_per_sec: attr_f64("msgs_per_sec"),
                        rounds_per_sec: attr_f64("rounds_per_sec"),
                    });
                }
            }
            "counter" => {
                // Counters are cumulative: the last sample wins.
                if let Some(value) = v.get("value").and_then(Value::as_u64) {
                    counters.insert(name.to_string(), value);
                }
            }
            "hist" => {
                if let Some(Value::Arr(buckets)) = v.get("buckets") {
                    let parsed: Vec<(u64, u64)> = buckets
                        .iter()
                        .filter_map(|b| match b {
                            Value::Arr(pair) if pair.len() == 2 => {
                                Some((pair[0].as_u64()?, pair[1].as_u64()?))
                            }
                            _ => None,
                        })
                        .collect();
                    hists.insert(name.to_string(), parsed);
                }
            }
            _ => skipped += 1,
        }
    }

    if events == 0 {
        return Err(LabError::BadRecord(format!(
            "{}: no parseable telemetry events ({skipped} lines skipped)",
            path.display()
        )));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry report: {} ({events} events{})",
        path.display(),
        if skipped > 0 {
            format!(", {skipped} unrecognized lines skipped")
        } else {
            String::new()
        }
    );
    let _ = writeln!(out);

    // 1. Span breakdown, heaviest first.
    let mut rows: Vec<(&String, &SpanAgg)> = spans.iter().collect();
    rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
    let mut table = Table::new(["span", "count", "total", "mean", "max", "% sweep"]);
    for (name, agg) in rows {
        let share = if sweep_total_us > 0 {
            format!(
                "{:.1}%",
                agg.total_us as f64 * 100.0 / sweep_total_us as f64
            )
        } else {
            "-".to_string()
        };
        table.push_row([
            name.clone(),
            agg.count.to_string(),
            pretty_us(agg.total_us),
            pretty_us(agg.total_us / agg.count.max(1)),
            pretty_us(agg.max_us),
            share,
        ]);
    }
    out.push_str("spans (wall-clock, heaviest first):\n");
    out.push_str(&table.to_markdown());

    // 2. Per-point throughput.
    if !points.is_empty() {
        let mut table = Table::new([
            "point", "trials", "messages", "rounds", "msgs/s", "rounds/s",
        ]);
        for p in &points {
            table.push_row([
                p.label.clone(),
                p.trials.to_string(),
                p.messages.to_string(),
                p.rounds.to_string(),
                pretty_rate(p.msgs_per_sec),
                pretty_rate(p.rounds_per_sec),
            ]);
        }
        let _ = writeln!(out);
        out.push_str("per-point throughput:\n");
        out.push_str(&table.to_markdown());
    }

    // 3. Counters and histograms (final snapshots).
    if !counters.is_empty() {
        let _ = writeln!(out);
        out.push_str("counters (final):\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    for (name, buckets) in &hists {
        let _ = writeln!(out);
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        let _ = writeln!(out, "histogram {name} ({total} samples, ≤bound → count):");
        let peak = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
        for &(bound, count) in buckets {
            let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
            let _ = writeln!(out, "  {bound:>12}  {count:>8}  {bar}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ale-lab-report-{}-{name}", std::process::id()))
    }

    #[test]
    fn report_breaks_down_a_stream() {
        let path = tmp("basic.jsonl");
        let lines = [
            r#"{"ev":"span","name":"sweep","ts_us":90,"id":1,"parent":null,"wall_us":1000,"attrs":{"scenario":"x"}}"#,
            r#"{"ev":"span","name":"trial","ts_us":10,"id":2,"parent":1,"wall_us":400,"attrs":{"seed":1}}"#,
            r#"{"ev":"span","name":"trial","ts_us":20,"id":3,"parent":1,"wall_us":600,"attrs":{"seed":2}}"#,
            r#"{"ev":"span","name":"point","ts_us":30,"id":4,"parent":1,"wall_us":1000,"attrs":{"point":"p8","trials":2,"messages":100,"rounds":10,"msgs_per_sec":250000.0,"rounds_per_sec":25.0}}"#,
            r#"{"ev":"counter","name":"trials_completed","ts_us":40,"value":2,"attrs":{}}"#,
            r#"{"ev":"hist","name":"trial_wall_us","ts_us":50,"buckets":[[511,1],[1023,1]],"attrs":{}}"#,
            "not json at all",
        ];
        std::fs::write(&path, lines.join("\n")).unwrap();
        let report = report_file(&path).unwrap();
        assert!(report.contains("6 events"), "{report}");
        assert!(report.contains("1 unrecognized lines skipped"), "{report}");
        // Span table: trial total 1000µs = 100% of the sweep.
        assert!(
            report.contains("| trial | 2 | 1000µs | 500µs | 600µs | 100.0% |"),
            "{report}"
        );
        // Throughput table row.
        assert!(
            report.contains("| p8 | 2 | 100 | 10 | 250.0k | 25.0 |"),
            "{report}"
        );
        assert!(report.contains("trials_completed = 2"), "{report}");
        assert!(
            report.contains("histogram trial_wall_us (2 samples"),
            "{report}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_or_garbage_streams_are_bad_records() {
        let path = tmp("garbage.jsonl");
        std::fs::write(&path, "nope\n{\"half\":1}\n").unwrap();
        assert!(matches!(report_file(&path), Err(LabError::BadRecord(_))));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            report_file(&tmp("does-not-exist.jsonl")),
            Err(LabError::Io(_))
        ));
    }
}
