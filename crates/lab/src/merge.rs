//! The `ale-lab merge` subcommand: union sharded run directories.
//!
//! A `--shard i/k` sweep produces `k` run directories whose trial records
//! are, by the engine's determinism contract, exactly the trials the full
//! run would have produced for the points each shard selected. `merge`
//! validates that the shards really belong to one logical sweep — same
//! scenario, master seed, seed count, quick flag, resolved space, and
//! shard divisor; distinct shard indices; disjoint grids — and that each
//! shard is **whole**: a manifest still marked incomplete, a truncated
//! `trials.jsonl`, or a record set that does not cover every
//! `(grid point, seed index)` key the shard's manifest promises is
//! rejected with a diagnostic naming the shard and the missing keys
//! (`run --resume` the shard first).
//!
//! The union itself is a store union over keys: every grid point carries
//! its full-grid *position* (stored in v2 manifests; reconstructed from
//! the shard arithmetic for older ones), the merged grid is the points
//! sorted by position, and records follow their points. When all `k`
//! shards are present that order **is** the unsharded run's, so the
//! merged directory is byte-identical to what `--shard 0/1` would have
//! written — `trials.jsonl`, `trials.csv`, and the compacted `trials.db`
//! journal alike. A partial union keeps per-point positions in its
//! manifest and records which slices it contains (e.g. shard `"0,2/4"`),
//! so its output is a valid *input* to a later merge — the remaining
//! shard directories can finish the job.
//!
//! The merged `summary.csv` is recomputed from the unioned records
//! ([`RunSummary::from_records`]); `manifest.json` carries the union
//! shard label and the max worker count (informational).

use crate::agg::RunSummary;
use crate::fleet;
use crate::scenario::{LabError, TrialRecord};
use crate::store::{self, RunManifest};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One constituent shard slice recovered from an input directory. A raw
/// `--shard i/k` run contributes one slice; a partial merge's output
/// contributes one per index its shard label lists.
struct Slice {
    dir: PathBuf,
    index: u64,
}

/// One grid point of the union: full-grid position, label, expected
/// trial count, and the input directory it came from.
struct KeyedPoint {
    position: u64,
    label: String,
    count: u64,
    dir: PathBuf,
}

/// Parses a shard label: `"i/k"` from the engine, `"i1,i2,…/k"` from a
/// partial merge (indices strictly ascending). `"0/1"` is a whole run.
fn parse_shard_label(label: &str) -> Result<(Vec<u64>, u64), LabError> {
    let bad = || {
        LabError::BadRecord(format!(
            "manifest shard '{label}' is not i/k or i1,i2,…/k with ascending i < k"
        ))
    };
    let (is, k) = label.split_once('/').ok_or_else(bad)?;
    let k: u64 = k.trim().parse().map_err(|_| bad())?;
    let mut indices = Vec::new();
    for piece in is.split(',') {
        let i: u64 = piece.trim().parse().map_err(|_| bad())?;
        if i >= k || indices.last().is_some_and(|&last| last >= i) {
            return Err(bad());
        }
        indices.push(i);
    }
    if k == 0 || indices.is_empty() {
        return Err(bad());
    }
    Ok((indices, k))
}

/// The full-grid position of every grid entry: v2 manifests store them;
/// for older ones, reconstruct from the shard arithmetic. A raw shard
/// `i/k` holds positions `i, i+k, i+2k, …` in order; a pre-v2 partial
/// merge dealt its grid round-robin over the ascending slice indices
/// (block `b` of slice `r` at grid index `b·s + r`), which inverts to
/// `indices[j mod s] + (j div s)·k`.
fn grid_positions(manifest: &RunManifest, indices: &[u64], k: u64) -> Vec<u64> {
    if manifest.positions.len() == manifest.grid.len() {
        return manifest.positions.clone();
    }
    let s = indices.len();
    (0..manifest.grid.len())
        .map(|j| indices[j % s] + (j / s) as u64 * k)
        .collect()
}

fn resume_hint(dir: &Path) -> String {
    format!(
        "complete it with `ale-lab run --resume {}` before merging",
        dir.display()
    )
}

/// Loads one input directory, rejecting interrupted or torn stores: a
/// manifest still marked incomplete, or a `trials.jsonl` whose final
/// record was cut mid-line.
fn load_shard(dir: &Path) -> Result<(RunManifest, Vec<TrialRecord>), LabError> {
    let manifest = store::load_manifest(&dir.join("manifest.json"))?;
    if !manifest.complete {
        return Err(LabError::BadRecord(format!(
            "{}: run is incomplete (crashed or still running) — {}",
            dir.display(),
            resume_hint(dir)
        )));
    }
    let (records, truncated) = store::load_jsonl_recover(&dir.join("trials.jsonl"))?;
    if truncated {
        return Err(LabError::BadRecord(format!(
            "{}: trials.jsonl is truncated mid-record — the shard lost data; {}",
            dir.display(),
            resume_hint(dir)
        )));
    }
    Ok((manifest, records))
}

/// Checks that a shard's records cover every `(grid point, seed index)`
/// key its manifest promises — `seeds × |grid slice|` trials, each under
/// its positionally-derived seed. Named missing keys make a silently
/// short shard (a kill the manifest never witnessed, a hand-edited log)
/// loud.
fn check_shard_covers_its_keys(
    dir: &Path,
    manifest: &RunManifest,
    records: &[TrialRecord],
    positions: &[u64],
) -> Result<(), LabError> {
    let counts = manifest.effective_counts();
    let mut seen: BTreeMap<&str, BTreeSet<u64>> = BTreeMap::new();
    for r in records {
        seen.entry(r.point.as_str()).or_default().insert(r.seed);
    }
    let mut missing: Vec<String> = Vec::new();
    for ((label, &position), &count) in manifest.grid.iter().zip(positions).zip(&counts) {
        let seeds = seen.get(label.as_str());
        for si in 0..count {
            let seed = fleet::derive_seed(manifest.master_seed, position, si);
            if !seeds.is_some_and(|s| s.contains(&seed)) {
                missing.push(format!("('{label}', seed index {si})"));
            }
        }
    }
    if !missing.is_empty() {
        let total = missing.len();
        let shown = missing.into_iter().take(8).collect::<Vec<_>>().join(", ");
        let more = if total > 8 { ", …" } else { "" };
        return Err(LabError::BadRecord(format!(
            "{}: shard {} is missing {total} trial(s): {shown}{more} — {}",
            dir.display(),
            manifest.shard,
            resume_hint(dir)
        )));
    }
    let expected: u64 = counts.iter().sum();
    if records.len() as u64 != expected {
        return Err(LabError::BadRecord(format!(
            "{}: shard {} holds {} records where its manifest promises {expected} — \
             duplicated or foreign trials",
            dir.display(),
            manifest.shard,
            records.len()
        )));
    }
    Ok(())
}

/// Checks that two shard manifests describe the same logical sweep.
fn check_compatible(a: &RunManifest, b: &RunManifest, dir: &Path) -> Result<(), LabError> {
    let mismatch = |what: &str, left: &dyn std::fmt::Display, right: &dyn std::fmt::Display| {
        LabError::BadArgs(format!(
            "{}: {what} mismatch ({left} vs {right}) — not shards of one sweep",
            dir.display()
        ))
    };
    if a.scenario != b.scenario {
        return Err(mismatch("scenario", &a.scenario, &b.scenario));
    }
    if a.master_seed != b.master_seed {
        return Err(mismatch("master seed", &a.master_seed, &b.master_seed));
    }
    if a.seeds != b.seeds {
        return Err(mismatch("seeds per point", &a.seeds, &b.seeds));
    }
    if a.quick != b.quick {
        return Err(mismatch("quick flag", &a.quick, &b.quick));
    }
    if a.space != b.space {
        return Err(mismatch(
            "resolved parameter space",
            &a.space.join("; "),
            &b.space.join("; "),
        ));
    }
    if a.version != b.version {
        return Err(mismatch("manifest version", &a.version, &b.version));
    }
    Ok(())
}

/// Merges sharded run directories; returns the report text.
///
/// With `out`, writes a complete merged run directory (`manifest.json`,
/// `trials.db`, `trials.jsonl`, `trials.csv`, `summary.csv`); without,
/// only validates and reports (a dry run).
///
/// # Errors
///
/// [`LabError::BadArgs`] on incompatible or overlapping shards,
/// [`LabError::BadRecord`] on incomplete/truncated shards or unreadable
/// inputs, [`LabError::Io`] on filesystem failures.
pub fn merge_dirs(dirs: &[PathBuf], out: Option<&Path>) -> Result<String, LabError> {
    if dirs.len() < 2 {
        return Err(LabError::BadArgs(
            "merge needs at least two run directories".into(),
        ));
    }

    let mut manifests: Vec<RunManifest> = Vec::new();
    let mut all_records: Vec<TrialRecord> = Vec::new();
    let mut slices: Vec<Slice> = Vec::new();
    let mut points: Vec<KeyedPoint> = Vec::new();
    let mut divisor: Option<u64> = None;
    for dir in dirs {
        let (manifest, records) = load_shard(dir)?;
        let (indices, k) = parse_shard_label(&manifest.shard)?;
        match divisor {
            None => divisor = Some(k),
            Some(expect) if expect != k => {
                return Err(LabError::BadArgs(format!(
                    "{}: shard divisor {k} differs from {expect} — not shards of one sweep",
                    dir.display()
                )));
            }
            Some(_) => {}
        }
        if let Some(first) = manifests.first() {
            check_compatible(first, &manifest, dir)?;
        }
        let positions = grid_positions(&manifest, &indices, k);
        check_shard_covers_its_keys(dir, &manifest, &records, &positions)?;
        for &index in &indices {
            if let Some(dup) = slices.iter().find(|s| s.index == index) {
                return Err(LabError::BadArgs(format!(
                    "{} and {} both contain shard {index}/{k}",
                    dup.dir.display(),
                    dir.display(),
                )));
            }
            slices.push(Slice {
                dir: dir.to_path_buf(),
                index,
            });
        }
        let counts = manifest.effective_counts();
        for ((label, &position), &count) in manifest.grid.iter().zip(&positions).zip(&counts) {
            points.push(KeyedPoint {
                position,
                label: label.clone(),
                count,
                dir: dir.to_path_buf(),
            });
        }
        manifests.push(manifest);
        all_records.extend(records);
    }
    let k = divisor.expect("at least two inputs loaded");

    // Grids of one sweep are disjoint by construction; a duplicated
    // label or full-grid position means the inputs are not what they
    // claim to be.
    let mut seen: BTreeMap<String, PathBuf> = BTreeMap::new();
    for p in &points {
        if let Some(prev) = seen.insert(p.label.clone(), p.dir.clone()) {
            return Err(LabError::BadArgs(format!(
                "grid point '{}' appears in both {} and {}",
                p.label,
                prev.display(),
                p.dir.display()
            )));
        }
    }
    // The union over keys: points sorted by full-grid position. For a
    // complete slice set this IS the unsharded run's grid order.
    points.sort_by_key(|p| p.position);
    for w in points.windows(2) {
        if w[0].position == w[1].position {
            return Err(LabError::BadArgs(format!(
                "grid position {} appears in both {} and {} — not slices of one grid",
                w[0].position,
                w[0].dir.display(),
                w[1].dir.display()
            )));
        }
    }
    slices.sort_by_key(|s| s.index);
    let complete = slices.len() as u64 == k;
    let grid: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    let shard_label = if complete {
        "0/1".to_string()
    } else {
        let indices: Vec<String> = slices.iter().map(|s| s.index.to_string()).collect();
        format!("{}/{k}", indices.join(","))
    };

    // Records follow their grid points: group the (point-ordered) input
    // records by label, then emit in merged grid order. A complete merge
    // thereby reproduces the unsharded run's record order byte for byte.
    let mut by_label: BTreeMap<&str, Vec<&TrialRecord>> = BTreeMap::new();
    for r in &all_records {
        by_label.entry(r.point.as_str()).or_default().push(r);
    }
    for label in by_label.keys() {
        if !seen.contains_key(*label) {
            return Err(LabError::BadRecord(format!(
                "trials.jsonl contains records for '{label}', which no shard's grid lists"
            )));
        }
    }
    let mut records: Vec<TrialRecord> = Vec::new();
    for label in &grid {
        if let Some(rs) = by_label.get(label.as_str()) {
            records.extend(rs.iter().map(|&r| r.clone()));
        }
    }

    let first = &manifests[0];
    let summary = RunSummary::from_records(
        &first.scenario,
        first.master_seed,
        first.seeds,
        manifests.iter().map(|m| m.workers).max().unwrap_or(0),
        &records,
    );
    let mut manifest = RunManifest::for_run(
        &first.scenario,
        first.master_seed,
        first.seeds,
        summary.workers,
        grid.clone(),
        first.quick,
        &shard_label,
        first.space.clone(),
    );
    manifest.positions = points.iter().map(|p| p.position).collect();
    manifest.counts = points.iter().map(|p| p.count).collect();
    // The invocation config survives only when every input agrees (a
    // merged whole sweep is resumable/reproducible; mixed inputs not).
    let configs: Vec<_> = manifests.iter().map(|m| m.config.as_ref()).collect();
    manifest.config = match configs.first() {
        Some(Some(c)) if configs.iter().all(|x| *x == Some(*c)) => Some((*c).clone()),
        _ => None,
    };
    // Preserve provenance: the producing trees' git state, not the
    // merging tree's.
    let pick = |values: Vec<&str>| {
        if values.windows(2).all(|w| w[0] == w[1]) {
            values[0].to_string()
        } else {
            "mixed".to_string()
        }
    };
    manifest.git = pick(manifests.iter().map(|m| m.git.as_str()).collect());
    manifest.git_describe = pick(manifests.iter().map(|m| m.git_describe.as_str()).collect());

    let mut report = format!(
        "merged {} shard slices of '{}' (master seed {}, {} seeds/point): \
         {} grid points, {} trials{}\n",
        slices.len(),
        first.scenario,
        first.master_seed,
        first.seeds,
        grid.len(),
        records.len(),
        if complete {
            " — complete sweep, full-grid order restored".to_string()
        } else {
            format!(" — partial union (shard {shard_label})")
        },
    );
    if let Some(dir) = out {
        store::write_run(dir, &manifest, &records, &summary)?;
        report.push_str(&format!(
            "results stored under {} (manifest.json, trials.db, trials.jsonl, trials.csv, \
             summary.csv)\n",
            dir.display()
        ));
        // Telemetry is a side-channel outside the byte-identical store
        // guarantees: union the inputs' streams in input order, without
        // validating a single line.
        let mut telemetry = String::new();
        let mut sources = 0usize;
        for src in dirs {
            if let Ok(events) = std::fs::read_to_string(src.join("telemetry.jsonl")) {
                telemetry.push_str(&events);
                sources += 1;
            }
        }
        if sources > 0 {
            let dst = dir.join("telemetry.jsonl");
            std::fs::write(&dst, telemetry)
                .map_err(|e| LabError::Io(format!("write {}: {e}", dst.display())))?;
            report.push_str(&format!(
                "telemetry side-channel: unioned {sources} stream(s) into telemetry.jsonl (unvalidated)\n"
            ));
        }
    } else {
        report.push_str("dry run (pass --out DIR to write the merged store)\n");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, RunSpec};
    use crate::params::{Axis, Block, ParamSpace};
    use crate::runners::Algorithm;
    use crate::scenario::{GridPoint, Scenario, TrialFn};
    use ale_graph::Topology;

    /// A scenario with enough points to shard three ways.
    struct Sharded;

    impl Scenario for Sharded {
        fn name(&self) -> &'static str {
            "sharded"
        }
        fn description(&self) -> &'static str {
            "merge test scenario"
        }
        fn default_seeds(&self, _quick: bool) -> u64 {
            3
        }
        fn space(&self) -> ParamSpace {
            ParamSpace::new(vec![Block::new(
                "grid",
                vec![
                    Axis::algorithms("algo", Algorithm::ALL),
                    Axis::ints("n", [8, 16]),
                ],
                |ctx| {
                    let a = ctx.algorithm("algo")?;
                    let n = ctx.int("n")? as usize;
                    Ok(Some(
                        GridPoint::new(format!("p{n}/{a}"))
                            .on(Topology::Cycle { n })
                            .algo(a),
                    ))
                },
            )])
        }
        fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
            let point = point.clone();
            Ok(Box::new(move |seed| {
                let mut r = TrialRecord::new("sharded", &point, seed);
                r.messages = seed % 977;
                r.rounds = seed % 31;
                r.ok = true;
                r.push_extra("echo", seed as f64);
                Ok(r)
            }))
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ale-lab-merge-{}-{name}", std::process::id()))
    }

    fn run_with(shard: (u64, u64), out: &Path) {
        execute(
            &Sharded,
            &RunSpec {
                shard,
                out: Some(out.to_path_buf()),
                workers: 1,
                ..RunSpec::default()
            },
        )
        .unwrap();
    }

    fn read(path: &Path) -> String {
        std::fs::read_to_string(path).unwrap()
    }

    #[test]
    fn complete_merge_reproduces_the_full_run_byte_for_byte() {
        let base = tmp("complete");
        let full = base.join("full");
        run_with((0, 1), &full);
        let shard_dirs: Vec<PathBuf> = (0..3).map(|i| base.join(format!("s{i}"))).collect();
        for (i, dir) in shard_dirs.iter().enumerate() {
            run_with((i as u64, 3), dir);
        }
        let merged = base.join("merged");
        let report = merge_dirs(&shard_dirs, Some(&merged)).unwrap();
        assert!(report.contains("complete sweep"), "{report}");

        // The merged trial logs are byte-identical to the unsharded run's.
        assert_eq!(
            read(&full.join("trials.jsonl")),
            read(&merged.join("trials.jsonl"))
        );
        assert_eq!(
            read(&full.join("trials.csv")),
            read(&merged.join("trials.csv"))
        );
        // The recomputed summary matches (modulo the workers column, which
        // is informational and not part of summary.csv).
        assert_eq!(
            read(&full.join("summary.csv")),
            read(&merged.join("summary.csv"))
        );
        // So does the compacted keyed journal: same sweep identity, same
        // keys, same record payloads.
        assert_eq!(
            std::fs::read(full.join("trials.db")).unwrap(),
            std::fs::read(merged.join("trials.db")).unwrap()
        );
        let m = store::load_manifest(&merged.join("manifest.json")).unwrap();
        assert_eq!(m.shard, "0/1");
        let f = store::load_manifest(&full.join("manifest.json")).unwrap();
        assert_eq!(m.grid, f.grid, "full-grid order restored");
        assert_eq!(m.positions, f.positions);
        assert_eq!(m.counts, f.counts);
        assert_eq!(m.space_hash, f.space_hash);

        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn partial_merge_keeps_the_shard_label() {
        let base = tmp("partial");
        let s0 = base.join("s0");
        let s2 = base.join("s2");
        run_with((0, 3), &s0);
        run_with((2, 3), &s2);
        let merged = base.join("merged");
        let report = merge_dirs(&[s2.clone(), s0.clone()], Some(&merged)).unwrap();
        assert!(report.contains("partial union"), "{report}");
        let m = store::load_manifest(&merged.join("manifest.json")).unwrap();
        assert_eq!(m.shard, "0,2/3", "ascending indices");
        // Positions survive the union (sorted), so a later merge can key
        // on them.
        assert!(m.positions.windows(2).all(|w| w[0] < w[1]));
        assert!(m.positions.iter().all(|p| p % 3 != 1));
        // Records survive a load round-trip and cover both shards.
        let records = store::load_jsonl(&merged.join("trials.jsonl")).unwrap();
        let s0_records = store::load_jsonl(&s0.join("trials.jsonl")).unwrap();
        let s2_records = store::load_jsonl(&s2.join("trials.jsonl")).unwrap();
        assert_eq!(records.len(), s0_records.len() + s2_records.len());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn partial_output_is_a_valid_merge_input() {
        // The finish-the-job path: merge two of four shards, then merge
        // that output with the remaining two — byte-identical to the
        // unsharded run.
        let base = tmp("resume");
        let full = base.join("full");
        run_with((0, 1), &full);
        let dirs: Vec<PathBuf> = (0..4).map(|i| base.join(format!("s{i}"))).collect();
        for (i, dir) in dirs.iter().enumerate() {
            run_with((i as u64, 4), dir);
        }
        let partial = base.join("partial");
        let report = merge_dirs(&[dirs[0].clone(), dirs[2].clone()], Some(&partial)).unwrap();
        assert!(report.contains("partial union (shard 0,2/4)"), "{report}");
        let merged = base.join("merged");
        let report =
            merge_dirs(&[partial, dirs[1].clone(), dirs[3].clone()], Some(&merged)).unwrap();
        assert!(report.contains("complete sweep"), "{report}");
        assert_eq!(
            read(&full.join("trials.jsonl")),
            read(&merged.join("trials.jsonl"))
        );
        assert_eq!(
            read(&full.join("trials.csv")),
            read(&merged.join("trials.csv"))
        );
        assert_eq!(
            read(&full.join("summary.csv")),
            read(&merged.join("summary.csv"))
        );
        assert_eq!(
            std::fs::read(full.join("trials.db")).unwrap(),
            std::fs::read(merged.join("trials.db")).unwrap()
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn incompatible_shards_are_rejected() {
        let base = tmp("incompat");
        let s0 = base.join("s0");
        let s1 = base.join("s1");
        let dup = base.join("dup");
        run_with((0, 3), &s0);
        run_with((1, 3), &s1);
        run_with((1, 3), &dup);

        // Duplicate shard index.
        assert!(matches!(
            merge_dirs(&[s1.clone(), dup.clone()], None),
            Err(LabError::BadArgs(_))
        ));
        // Single input.
        assert!(matches!(
            merge_dirs(std::slice::from_ref(&s0), None),
            Err(LabError::BadArgs(_))
        ));
        // Different master seed.
        let reseeded = base.join("reseeded");
        execute(
            &Sharded,
            &RunSpec {
                shard: (1, 3),
                master_seed: 9,
                out: Some(reseeded.clone()),
                workers: 1,
                ..RunSpec::default()
            },
        )
        .unwrap();
        assert!(matches!(
            merge_dirs(&[s0.clone(), reseeded], None),
            Err(LabError::BadArgs(_))
        ));
        // Different divisor.
        let other_k = base.join("otherk");
        run_with((1, 4), &other_k);
        assert!(matches!(
            merge_dirs(&[s0.clone(), other_k], None),
            Err(LabError::BadArgs(_))
        ));
        // Dry run on valid shards succeeds without writing anything.
        let report = merge_dirs(&[s0, s1], None).unwrap();
        assert!(report.contains("dry run"));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn truncated_or_incomplete_shards_are_rejected_with_a_diagnostic() {
        let base = tmp("torn");
        let s0 = base.join("s0");
        let s1 = base.join("s1");
        run_with((0, 2), &s0);
        run_with((1, 2), &s1);

        // Truncate s1's trial log mid-record: merge must refuse, naming
        // the shard.
        let log = s1.join("trials.jsonl");
        let text = read(&log);
        std::fs::write(&log, &text[..text.len() - 9]).unwrap();
        let err = merge_dirs(&[s0.clone(), s1.clone()], None).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("s1"), "names the shard: {msg}");
        assert!(msg.contains("--resume"), "{msg}");

        // Cleanly drop a whole record (valid JSONL, one trial short):
        // the key-coverage check catches it and names the missing keys.
        let keep: Vec<&str> = text.lines().collect();
        std::fs::write(&log, format!("{}\n", keep[..keep.len() - 1].join("\n"))).unwrap();
        let err = merge_dirs(&[s0.clone(), s1.clone()], None).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing 1 trial(s)"), "{msg}");
        assert!(msg.contains("seed index 2"), "names the key: {msg}");

        // Restore the log but mark the manifest incomplete: still refused.
        std::fs::write(&log, &text).unwrap();
        assert!(merge_dirs(&[s0.clone(), s1.clone()], None).is_ok());
        let manifest_path = s1.join("manifest.json");
        let mut manifest = store::load_manifest(&manifest_path).unwrap();
        manifest.complete = false;
        std::fs::write(
            &manifest_path,
            crate::json::ToJson::to_json(&manifest).render_pretty() + "\n",
        )
        .unwrap();
        let err = merge_dirs(&[s0, s1], None).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("incomplete"), "{msg}");
        assert!(msg.contains("--resume"), "{msg}");

        std::fs::remove_dir_all(&base).ok();
    }
}
