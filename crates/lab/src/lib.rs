//! # ale-lab — deterministic parallel experiment orchestration
//!
//! The workspace's scenario engine: every figure/table of the Kowalski &
//! Mosteiro (ICDCS 2021) reproduction is a declarative [`Scenario`] — a
//! parameter grid over `Topology × Algorithm × knowledge × n`, a per-seed
//! trial closure, and a report — executed by a work-sharing fleet runner
//! whose output is **byte-identical at any worker count** (trial seeds
//! derive positionally from one master seed via a SplitMix64 stream).
//!
//! Results stream into bounded-memory aggregates (mean/CI95/min/max plus
//! capped-exact medians) and persist as a durable keyed store: every
//! trial is journaled under `(scenario, space-hash, grid-position,
//! seed-index)` the moment it completes, alongside JSONL + CSV views and
//! a run manifest (scenario, master seed, grid, invocation config, git
//! stamp, completion marker) — so a killed sweep is completed in place
//! by `run --resume` and runs stay comparable across PRs.
//!
//! ## Layers
//!
//! * [`fleet`] — seed derivation + the parallel indexed runner;
//! * [`params`] — typed axes and the declarative [`params::ParamSpace`]
//!   every scenario declares (and `--param key=v1,v2` overrides);
//! * [`scenario`] — the [`Scenario`] trait, [`GridPoint`], [`TrialRecord`];
//! * [`scenarios`] / [`registry`] — the 11 built-in experiments;
//! * [`engine`] — space → expand → bind → fleet → aggregate → store;
//! * [`agg`] / [`stats`] — streaming statistics;
//! * [`db`] — the pluggable keyed-batch [`db::Db`] trait (in-memory and
//!   append-only-file backends) the durable store journals through;
//! * [`store`] / [`json`] — the keyed run store (`trials.db` journal,
//!   JSONL/CSV views, manifests with completion markers);
//! * [`check`] — baseline regression gating over `summary.csv` files;
//! * [`serve`] — read-only HTTP routes over the durable store (manifest
//!   index, summary/trial queries, live journal tailing) behind
//!   `ale-lab serve`, on the zero-dependency `ale-serve` transport;
//! * [`telemetry`] — the JSONL event sink and engine round-batch adapter
//!   behind `run --telemetry` (see also the zero-dependency
//!   `ale-telemetry` crate);
//! * [`report`] — per-phase wall-clock breakdown of a telemetry stream;
//! * [`mod@bench`] — in-process microbenchmarks writing `BENCH_*.json`;
//! * [`cli`] — the `ale-lab` binary
//!   (`list | describe | run | export | merge | check | report | bench | serve`),
//!   also backing the legacy per-figure binaries in `ale-bench`;
//! * [`runners`], [`table`], [`fit`] — the shared driver/report plumbing
//!   (moved here from `ale-bench`, which re-exports them).
//!
//! ## Quickstart
//!
//! ```
//! use ale_lab::engine::{execute, RunSpec};
//! use ale_lab::registry;
//!
//! let scenario = registry::find("cautious").expect("registered");
//! let spec = RunSpec {
//!     seeds: Some(2),
//!     workers: 2,
//!     grid: ale_lab::scenario::GridConfig { quick: true, ..Default::default() },
//!     ..RunSpec::default()
//! };
//! let out = execute(scenario.as_ref(), &spec)?;
//! assert!(out.records.len() > 0);
//! assert!(out.report.contains("cautious"));
//! # Ok::<(), ale_lab::scenario::LabError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod bench;
pub mod check;
pub mod cli;
pub mod db;
pub mod engine;
pub mod fit;
pub mod fleet;
pub mod json;
pub mod merge;
pub mod params;
pub mod registry;
pub mod report;
pub mod runners;
pub mod scenario;
pub mod scenarios;
pub mod serve;
pub mod stats;
pub mod store;
pub mod table;
pub mod telemetry;

pub use agg::RunSummary;
pub use engine::{execute, RunOutput, RunSpec};
pub use fit::{exponent_close, power_fit, PowerFit};
pub use params::{Axis, AxisKind, AxisValue, Block, ParamSpace, When};
pub use runners::{Algorithm, CellSummary, GraphContext};
pub use scenario::{GridConfig, GridPoint, Knowledge, LabError, PointView, Scenario, TrialRecord};
pub use table::Table;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrialRecord>();
        assert_send_sync::<GridPoint>();
        assert_send_sync::<LabError>();
        assert_send_sync::<RunSummary>();
    }
}
