//! **phases — the communication anatomy of one irrevocable run** (legacy
//! `fig_phases` bin).
//!
//! Traces messages per round and bins them into the protocol's three
//! phases: the cautious-broadcast plateau, the walk burst, and the
//! convergecast trickle. The per-round trace is folded into fixed
//! sparkline buckets so the record stays flat and serializable.

use crate::agg::RunSummary;
use crate::params::{Axis, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::Topology;

/// Sparkline buckets persisted per trial.
const BUCKETS: usize = 40;

/// The phase-profile scenario.
pub struct Phases;

impl Scenario for Phases {
    fn name(&self) -> &'static str {
        "phases"
    }

    fn description(&self) -> &'static str {
        "per-phase message anatomy of one irrevocable run (broadcast/walk/convergecast)"
    }

    fn default_seeds(&self, _quick: bool) -> u64 {
        1
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "profile",
            vec![Axis::topologies("topo", [Topology::Hypercube { dim: 6 }])
                .quick_topologies([Topology::Complete { n: 32 }])
                .help("the run to profile (one point per topology)")],
            |ctx| {
                let topo = ctx.topology("topo")?;
                Ok(Some(
                    GridPoint::new(format!("{topo}"))
                        .on(topo)
                        .knowing(Knowledge::Full),
                ))
            },
        )])
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let graph = topo.build(view.graph_seed(1))?;
        let cfg = IrrevocableConfig::derive_for(&graph, &topo)?;
        let budget = congest_budget(cfg.knowledge.n, cfg.congest_factor);
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let cfg_copy = cfg;
            let mut net = Network::from_fn(&graph, seed, budget, |deg, rng| {
                let params = cfg_copy
                    .protocol_params(deg)
                    .expect("derived config yields valid params");
                IrrevocableProcess::new(params, rng)
            });
            net.enable_trace();
            net.run_to_halt(cfg.total_rounds() + 4)?;

            let b_end = cfg.broadcast_rounds();
            let w_end = b_end + cfg.walk_rounds();
            let mut phase_stats = [(0u64, 0u64, 0u64); 3];
            for t in net.trace() {
                let idx = if t.round < b_end {
                    0
                } else if t.round < w_end {
                    1
                } else {
                    2
                };
                phase_stats[idx].0 += 1;
                phase_stats[idx].1 += t.messages;
                phase_stats[idx].2 += t.bits;
            }
            let trace = net.trace();
            let per = (trace.len() / BUCKETS).max(1);
            let mut volumes = vec![0u64; BUCKETS];
            for (i, t) in trace.iter().enumerate() {
                volumes[(i / per).min(BUCKETS - 1)] += t.messages;
            }

            let mut r = TrialRecord::new("phases", &point, seed);
            r.absorb_metrics(net.metrics());
            r.ok = true;
            r.push_extra("b_end", b_end as f64);
            r.push_extra("w_end", w_end as f64);
            r.push_extra("c_end", (w_end + cfg.converge_rounds()) as f64);
            for (name, (rounds, msgs, bits)) in ["broadcast", "walk", "convergecast"]
                .iter()
                .zip(phase_stats)
            {
                r.push_extra(format!("{name}_rounds"), rounds as f64);
                r.push_extra(format!("{name}_msgs"), msgs as f64);
                r.push_extra(format!("{name}_bits"), bits as f64);
            }
            for (i, v) in volumes.iter().enumerate() {
                r.push_extra(format!("bucket_{i:02}"), *v as f64);
            }
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let Some(p) = run.points.first() else {
            return String::from("# Phase profile (no data)\n");
        };
        let mut out = format!(
            "# Phase profile on {} (master seed {})\n\n\
             phase boundaries: broadcast [0, {:.0}), walk [{:.0}, {:.0}), convergecast [{:.0}, {:.0})\n\n",
            p.label,
            run.master_seed,
            p.mean("b_end"),
            p.mean("b_end"),
            p.mean("w_end"),
            p.mean("w_end"),
            p.mean("c_end"),
        );
        let mut tbl = Table::new(["phase", "rounds", "messages", "bits", "msgs/round"]);
        for name in ["broadcast", "walk", "convergecast"] {
            let rounds = p.mean(&format!("{name}_rounds"));
            let msgs = p.mean(&format!("{name}_msgs"));
            tbl.push_row([
                name.to_string(),
                format!("{rounds:.0}"),
                format!("{msgs:.0}"),
                format!("{:.0}", p.mean(&format!("{name}_bits"))),
                format!("{:.2}", msgs / rounds.max(1.0)),
            ]);
        }
        out.push_str(&tbl.to_markdown());

        let volumes: Vec<f64> = (0..BUCKETS)
            .map(|i| p.mean(&format!("bucket_{i:02}")))
            .collect();
        let max = volumes.iter().copied().fold(1.0f64, f64::max);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let line: String = volumes
            .iter()
            .map(|&v| glyphs[((v / max) * 9.0).round() as usize])
            .collect();
        out.push_str(&format!("message-volume sparkline (time →):\n[{line}]\n"));
        out.push_str(&format!(
            "\ntotal: {:.0} messages, {:.0} rounds; walk burst dominates per-round volume,\n\
             broadcast dominates wall-clock (the multiplexed super-rounds of Theorem 1).\n",
            p.mean("messages"),
            p.mean("rounds")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn single_point_grid() {
        let grid = Phases.grid(&GridConfig::default()).unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].n, 64);
        let quick = Phases
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(quick[0].n, 32);
    }
}
