//! **scaling — message-complexity exponents** (Theorem 1's shape; legacy
//! `fig_scaling` bin).
//!
//! Sweeps `n` per family for this work vs the Gilbert baseline, fitting
//! measured messages against both raw `n` and the theory quantity
//! `q(n) = √(n·ln n·t_mix/Φ)·log₂²n`.

use crate::agg::RunSummary;
use crate::fit::power_fit;
use crate::params::{Axis, Block, ParamSpace};
use crate::runners::{Algorithm, GraphContext};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_graph::Topology;

const GRAPH_SEED: u64 = 1;
const ALGS: [Algorithm; 2] = [Algorithm::ThisWork, Algorithm::Gilbert];

/// The scaling scenario.
pub struct Scaling;

/// Theorem 1's explicit message quantity (see the module docs).
fn theory_q(n: f64, tmix: f64, phi: f64) -> f64 {
    let log2n = n.log2().max(1.0);
    (n * n.ln().max(1.0) * tmix / phi).sqrt() * log2n * log2n
}

/// The family-major topology ladder (complete, hypercube, cycle), full or
/// quick-truncated — the declared defaults of the `topo` axis.
fn family_topologies(quick: bool) -> Vec<Topology> {
    let mut complete_sizes: Vec<usize> = vec![16, 32, 64, 128, 256];
    let mut hypercube_dims: Vec<usize> = vec![4, 5, 6, 7, 8];
    let mut cycle_sizes: Vec<usize> = vec![8, 12, 16, 24, 32, 48];
    if quick {
        complete_sizes.truncate(3);
        hypercube_dims.truncate(3);
        cycle_sizes.truncate(4);
    }
    let mut topos: Vec<Topology> = Vec::new();
    topos.extend(complete_sizes.into_iter().map(|n| Topology::Complete { n }));
    topos.extend(
        hypercube_dims
            .into_iter()
            .map(|dim| Topology::Hypercube { dim }),
    );
    topos.extend(cycle_sizes.into_iter().map(|n| Topology::Cycle { n }));
    topos
}

impl Scenario for Scaling {
    fn name(&self) -> &'static str {
        "scaling"
    }

    fn description(&self) -> &'static str {
        "message-complexity exponents vs n and the Theorem 1 quantity q(n)"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            6
        } else {
            20
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "exponents",
            vec![
                Axis::topologies("topo", family_topologies(false))
                    .quick_topologies(family_topologies(true))
                    .help("family-major size ladder (complete, hypercube, cycle)"),
                Axis::algorithms("algo", ALGS).help("this work vs the Gilbert baseline"),
            ],
            |ctx| {
                let topo = ctx.topology("topo")?;
                let alg = ctx.algorithm("algo")?;
                Ok(Some(
                    GridPoint::new(format!("{}/n={}/{alg}", topo.family(), topo.node_count()))
                        .on(topo)
                        .algo(alg)
                        .knowing(Knowledge::Full),
                ))
            },
        )])
        .with_ladder(
            "n",
            "topo",
            "complete and cycle families at each size",
            |ns| {
                let mut topos: Vec<Topology> =
                    ns.iter().map(|&n| Topology::Complete { n }).collect();
                topos.extend(ns.iter().map(|&n| Topology::Cycle { n }));
                topos
            },
        )
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let alg = view.algorithm()?;
        let ctx = GraphContext::build(topo, view.graph_seed(GRAPH_SEED))?;
        let q = theory_q(
            ctx.props.n as f64,
            ctx.knowledge.tmix as f64,
            ctx.knowledge.phi,
        );
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let outcome = ctx.run(alg, seed)?;
            let mut r = TrialRecord::new("scaling", &point, seed);
            r.absorb_metrics(&outcome.metrics);
            r.leaders = outcome.leader_count() as u64;
            r.ok = outcome.is_successful();
            r.push_extra("tmix", ctx.knowledge.tmix as f64);
            r.push_extra("phi", ctx.knowledge.phi);
            r.push_extra("q", q);
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out = format!(
            "# E-T1b: message scaling ({} seeds per point)\n\n",
            run.seeds
        );
        let mut fits = Table::new([
            "family",
            "algorithm",
            "raw exponent in n",
            "exponent vs theory q(n)",
            "r^2 (theory fit)",
        ]);

        // Points arrive family-major, then size, then algorithm.
        let mut families: Vec<&str> = Vec::new();
        for p in &run.points {
            let family = p.label.split('/').next().unwrap_or("?");
            if !families.contains(&family) {
                families.push(family);
            }
        }

        for family in families {
            let mut series = Table::new([
                "n",
                "t_mix",
                "phi",
                "theory q(n)",
                "this-work msgs",
                "gilbert18 msgs",
                "ratio",
            ]);
            let mut this_pts = Vec::new();
            let mut this_theory_pts = Vec::new();
            let mut gil_pts = Vec::new();
            let member = |p: &&crate::agg::PointStats, alg: Algorithm| {
                p.label.starts_with(&format!("{family}/")) && p.algorithm == alg.to_string()
            };
            let this_points: Vec<_> = run
                .points
                .iter()
                .filter(|p| member(p, Algorithm::ThisWork))
                .collect();
            for tp in &this_points {
                let gp = run
                    .points
                    .iter()
                    .find(|p| member(p, Algorithm::Gilbert) && p.n == tp.n);
                let tw = tp.median("messages");
                let gl = gp.map_or(0.0, |p| p.median("messages"));
                let n = tp.n as f64;
                let q = tp.mean("q");
                this_pts.push((n, tw.max(1.0)));
                this_theory_pts.push((q, tw.max(1.0)));
                gil_pts.push((n, gl.max(1.0)));
                series.push_row([
                    tp.n.to_string(),
                    format!("{:.0}", tp.mean("tmix")),
                    format!("{:.4}", tp.mean("phi")),
                    format!("{q:.0}"),
                    format!("{tw:.0}"),
                    format!("{gl:.0}"),
                    format!("{:.2}", gl / tw.max(1.0)),
                ]);
            }
            out.push_str(&format!("## {family}\n\n{}", series.to_markdown()));
            if this_pts.len() >= 2 {
                let tw_fit = power_fit(&this_pts);
                let tw_theory_fit = power_fit(&this_theory_pts);
                let gl_fit = power_fit(&gil_pts);
                fits.push_row([
                    family.to_string(),
                    "this-work".into(),
                    format!("{:.3}", tw_fit.exponent),
                    format!("{:.3}", tw_theory_fit.exponent),
                    format!("{:.3}", tw_theory_fit.r_squared),
                ]);
                fits.push_row([
                    family.to_string(),
                    "gilbert18".into(),
                    format!("{:.3}", gl_fit.exponent),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }

        out.push_str(&format!("\n## Fitted exponents\n\n{}", fits.to_markdown()));
        out.push_str(
            "\nReproduction criterion: this-work's exponent against the theory quantity\n\
             q(n) = sqrt(n·ln n·t_mix/phi)·log2²n is ≈ 1 (±0.35), i.e. measured messages\n\
             track Theorem 1's bound; and the gilbert/this-work ratio grows on cycles.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_pairs_algorithms_per_size() {
        let grid = Scaling
            .grid(&crate::scenario::GridConfig {
                quick: true,
                ..Default::default()
            })
            .unwrap();
        // quick: 3 complete + 3 hypercube + 4 cycle sizes, × 2 algorithms.
        assert_eq!(grid.len(), 20);
        assert!(grid.iter().any(|p| p.label == "complete/n=16/this-work"));
        assert!(grid.iter().any(|p| p.label == "cycle/n=24/gilbert18"));
    }

    #[test]
    fn theory_quantity_is_monotone_in_n_for_fixed_mixing() {
        assert!(theory_q(64.0, 10.0, 0.5) > theory_q(16.0, 10.0, 0.5));
    }
}
