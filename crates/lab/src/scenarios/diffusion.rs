//! **diffusion — diffusion convergence vs the Lemma 4 bound** (Lemmas
//! 3–4; legacy `fig_diffusion` bin).
//!
//! Builds the diffusion matrix per family on the **sparse CSR backend**
//! (`ale_graph::transition::diffusion_chain`, `O(m)` per step), runs the
//! potential vector forward from a one-white-node start, measures the
//! first round with max relative error ≤ γ, and compares against
//! `(2/φ²)·ln(n/γ)` — measured/bound ≤ 1 everywhere is the target.
//!
//! Two regimes share the scenario:
//!
//! * the legacy small families (default grid) keep the paper's blind-`k`
//!   ladder `α = 1/(2k^{1+ε})` and the exact chain conductance; and
//! * `--n` builds a **large-n ladder** (torus / ring / 4-regular expander
//!   at each requested size, tens of thousands of nodes) where `α` is the
//!   chain's natural `1/(2·d_max)` — the protocol-ladder `α = Θ(1/n)`
//!   would push convergence past any simulable horizon — and
//!   `φ = α·i(G)` is priced from the analytic/spectral isoperimetric
//!   estimate. Rounds are capped; capped trials report `converged = 0`
//!   and stay non-failing (the bound is not contradicted).

use crate::agg::RunSummary;
use crate::params::{Axis, AxisValue, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_graph::{transition, Topology};
use ale_markov::conductance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1.0;
const MAX_ROUNDS: u64 = 4_000_000;
/// Round cap for the large-n ladder (full grid).
const LARGE_CAP: u64 = 200_000;
/// Round cap for the large-n ladder under `--quick`.
const LARGE_CAP_QUICK: u64 = 20_000;
/// Above this size the bind switches to estimated conductance and the
/// natural-`α` regime (the exact chain-conductance oracle stops at 22).
const LARGE_N: usize = 2048;

/// The diffusion-convergence scenario.
pub struct Diffusion;

/// The legacy small-family suite — the `topo` axis default.
fn default_topologies() -> Vec<Topology> {
    vec![
        Topology::Complete { n: 12 },
        Topology::Cycle { n: 12 },
        Topology::Hypercube { dim: 3 },
        Topology::Star { n: 10 },
        Topology::Barbell { k: 5 },
    ]
}

impl Scenario for Diffusion {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn description(&self) -> &'static str {
        "diffusion convergence time vs the (2/phi^2)ln(n/gamma) bound (Lemmas 3-4)"
    }

    fn default_seeds(&self, _quick: bool) -> u64 {
        1
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "convergence",
            vec![
                Axis::topologies("topo", default_topologies())
                    .help("families spanning the conductance spectrum"),
                Axis::floats("gamma", [0.1, 0.01, 0.001])
                    .quick_floats([0.1])
                    .linked(|ctx| {
                        // Large graphs get a shorter gamma ladder: each
                        // extra γ decade multiplies an already-capped
                        // round budget.
                        let topo = ctx.topology("topo").ok()?;
                        (topo.node_count() > LARGE_N).then(|| vec![AxisValue::Float(0.1)])
                    })
                    .help("relative-error convergence target"),
            ],
            |ctx| {
                let topo = ctx.topology("topo")?;
                let gamma = ctx.float("gamma")?;
                let mut p = GridPoint::new(format!("{topo}/gamma={gamma}"))
                    .on(topo)
                    .knowing(Knowledge::Blind);
                // Ladder points and over-large explicit topologies run
                // the capped natural-alpha regime (the protocol-ladder
                // alpha would push convergence past any simulable
                // horizon).
                if ctx.ladder || topo.node_count() > LARGE_N {
                    let cap = if ctx.quick {
                        LARGE_CAP_QUICK
                    } else {
                        LARGE_CAP
                    };
                    p = p.with("cap", cap as f64);
                }
                Ok(Some(p))
            },
        )])
        .with_ladder(
            "n",
            "topo",
            "torus / ring / expander ladder at each size",
            super::large_n_topologies,
        )
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let gamma = view.float("gamma")?;
        let graph = topo.build(view.graph_seed(0))?;
        let n = graph.n();
        // The cap knob marks the natural-alpha large/ladder regime.
        let large = view.knob("cap").is_some();
        let (alpha, k) = if large {
            // The chain's natural scale: fastest valid uniform averaging.
            (1.0 / (2.0 * graph.max_degree() as f64), 0u64)
        } else {
            // First k with k^{1+eps} >= 2n+1 (the Lemma 5 regime where the
            // averaging matrix is valid for every degree).
            let mut k = 2u64;
            while (k as f64).powf(1.0 + EPS) < (2 * n + 1) as f64 {
                k *= 2;
            }
            (1.0 / (2.0 * (k as f64).powf(1.0 + EPS)), k)
        };
        let chain = transition::diffusion_chain(&graph, alpha)
            .map_err(|e| LabError::BadArgs(format!("diffusion chain: {e}")))?;
        let phi = match conductance::chain_conductance_exact(chain.transition()) {
            Ok(v) => v,
            // Beyond the exact oracle: phi(chain) = alpha * i(G), since
            // every cut edge carries exactly alpha crossing mass.
            Err(_) => alpha * super::isoperimetric_estimate(&graph, &topo)?,
        };
        let cap = view.knob("cap").map_or(MAX_ROUNDS, |c| c as u64);
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let white = rng.gen_range(0..n);
            let mut pot: Vec<f64> = (0..n).map(|i| if i == white { 0.0 } else { 1.0 }).collect();
            let mut next = vec![0.0; n];
            let avg = pot.iter().sum::<f64>() / n as f64;
            let mut round = 0u64;
            let mut measured = None;
            while measured.is_none() && round < cap {
                chain
                    .step_into(&pot, &mut next)
                    .map_err(|e| LabError::BadArgs(format!("chain step: {e}")))?;
                std::mem::swap(&mut pot, &mut next);
                round += 1;
                let max_rel = pot
                    .iter()
                    .map(|p| (p - avg).abs() / avg)
                    .fold(0.0f64, f64::max);
                if max_rel <= gamma {
                    measured = Some(round);
                }
            }
            let bound = (2.0 / (phi * phi)) * (n as f64 / gamma).ln();
            let m = measured.unwrap_or(cap);
            let mut r = TrialRecord::new("diffusion", &point, seed);
            r.rounds = m;
            r.ok = (m as f64) <= bound;
            r.push_extra("measured", m as f64);
            r.push_extra("bound", bound);
            r.push_extra("ratio", m as f64 / bound);
            r.push_extra("phi_chain", phi);
            r.push_extra("k", k as f64);
            r.push_extra("alpha", alpha);
            r.push_extra("converged", if measured.is_some() { 1.0 } else { 0.0 });
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut tbl = Table::new([
            "family",
            "n",
            "k",
            "alpha",
            "phi(chain)",
            "gamma",
            "conv",
            "measured rounds",
            "bound (2/phi^2)ln(n/gamma)",
            "measured/bound",
        ]);
        for p in &run.points {
            tbl.push_row([
                p.family.clone(),
                p.n.to_string(),
                format!("{:.0}", p.mean("k")),
                format!("{:.2e}", p.mean("alpha")),
                format!("{:.6}", p.mean("phi_chain")),
                format!("{}", p.param("gamma").unwrap_or(0.0)),
                format!("{:.2}", p.mean("converged")),
                format!("{:.0}", p.mean("measured")),
                format!("{:.0}", p.mean("bound")),
                format!("{:.3}", p.mean("ratio")),
            ]);
        }
        format!(
            "# E-L34: diffusion convergence vs Lemma 4 bound (eps={EPS})\n\n{}\n\
             Lemma 4 reproduced iff every measured/bound ≤ 1. The bound is loose by\n\
             design (Cheeger is quadratic); ratios ≪ 1 on well-connected families are expected.\n\
             Large-n rows (k = 0) run the chain's natural alpha = 1/(2·d_max) on the sparse\n\
             CSR backend; conv < 1 marks round-capped trials (bound not contradicted).\n",
            tbl.to_markdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::scenario::GridConfig;

    #[test]
    fn grid_crosses_families_and_gammas() {
        let full = Diffusion.grid(&GridConfig::default()).unwrap();
        assert_eq!(full.len(), 5 * 3);
        let quick = Diffusion
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(quick.len(), 5);
    }

    #[test]
    fn ns_override_builds_the_large_ladder() {
        let grid = Diffusion
            .grid(&GridConfig {
                ns: vec![20_000],
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        // torus:141x141, cycle:20000, rregular:20000x4 — one gamma each.
        assert_eq!(grid.len(), 3);
        for p in &grid {
            assert!(p.n >= 19_000, "large ladder point too small: {}", p.n);
            assert_eq!(p.param("cap"), Some(LARGE_CAP_QUICK as f64));
        }
    }

    #[test]
    fn large_points_get_single_gamma() {
        let grid = Diffusion
            .grid(&GridConfig {
                ns: vec![20_000],
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 3, "full mode still one gamma per large topo");
        assert!(grid.iter().all(|p| p.param("gamma") == Some(0.1)));
    }

    #[test]
    fn param_override_sweeps_beyond_any_hardcoded_grid() {
        // The acceptance sweep: gammas nobody hard-coded, at a ladder
        // size below the large-N cutoff — every point still carries the
        // capped natural-alpha regime because the ladder built it.
        let grid = Diffusion
            .grid(&GridConfig {
                quick: true,
                params: vec![
                    ("gamma".into(), vec!["0.1".into(), "0.3".into()]),
                    ("n".into(), vec!["512".into()]),
                ],
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 3 * 2);
        assert!(grid.iter().all(|p| p.param("cap").is_some()));
        assert!(grid.iter().any(|p| p.param("gamma") == Some(0.3)));
    }
}
