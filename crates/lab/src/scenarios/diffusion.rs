//! **diffusion — diffusion convergence vs the Lemma 4 bound** (Lemmas
//! 3–4; legacy `fig_diffusion` bin).
//!
//! Builds the exact diffusion matrix per family, runs the potential
//! vector forward from a one-white-node start, measures the first round
//! with max relative error ≤ γ, and compares against
//! `(2/φ²)·ln(n/γ)` — measured/bound ≤ 1 everywhere is the target.

use crate::agg::RunSummary;
use crate::scenario::{GridConfig, GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_graph::Topology;
use ale_markov::{conductance, MarkovChain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1.0;
const MAX_ROUNDS: u64 = 4_000_000;

/// The diffusion-convergence scenario.
pub struct Diffusion;

fn default_topologies(cfg: &GridConfig) -> Vec<Topology> {
    if !cfg.topologies.is_empty() {
        return cfg.topologies.clone();
    }
    vec![
        Topology::Complete { n: 12 },
        Topology::Cycle { n: 12 },
        Topology::Hypercube { dim: 3 },
        Topology::Star { n: 10 },
        Topology::Barbell { k: 5 },
    ]
}

impl Scenario for Diffusion {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn description(&self) -> &'static str {
        "diffusion convergence time vs the (2/phi^2)ln(n/gamma) bound (Lemmas 3-4)"
    }

    fn default_seeds(&self, _quick: bool) -> u64 {
        1
    }

    fn grid(&self, cfg: &GridConfig) -> Result<Vec<GridPoint>, LabError> {
        let gammas: &[f64] = if cfg.quick {
            &[0.1]
        } else {
            &[0.1, 0.01, 0.001]
        };
        Ok(default_topologies(cfg)
            .into_iter()
            .flat_map(|topo| {
                gammas.iter().map(move |&gamma| {
                    GridPoint::new(format!("{topo}/gamma={gamma}"))
                        .on(topo)
                        .knowing(Knowledge::Blind)
                        .with("gamma", gamma)
                })
            })
            .collect())
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let topo = point.topology.expect("diffusion points carry a topology");
        let gamma = point.param("gamma").expect("diffusion points carry gamma");
        let graph = topo.build(0)?;
        let n = graph.n();
        // First k with k^{1+eps} >= 2n+1 (the Lemma 5 regime where the
        // averaging matrix is valid for every degree).
        let mut k = 2u64;
        while (k as f64).powf(1.0 + EPS) < (2 * n + 1) as f64 {
            k *= 2;
        }
        let alpha = 1.0 / (2.0 * (k as f64).powf(1.0 + EPS));
        let chain = MarkovChain::diffusion(&graph.adjacency(), alpha)
            .map_err(|e| LabError::BadArgs(format!("diffusion chain: {e}")))?;
        let phi = conductance::chain_conductance_exact(chain.matrix())
            .map_err(|e| LabError::BadArgs(format!("chain conductance: {e}")))?;
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let white = rng.gen_range(0..n);
            let mut pot: Vec<f64> = (0..n).map(|i| if i == white { 0.0 } else { 1.0 }).collect();
            let avg = pot.iter().sum::<f64>() / n as f64;
            let mut round = 0u64;
            let mut measured = None;
            while measured.is_none() && round < MAX_ROUNDS {
                pot = chain
                    .step(&pot)
                    .map_err(|e| LabError::BadArgs(format!("chain step: {e}")))?;
                round += 1;
                let max_rel = pot
                    .iter()
                    .map(|p| (p - avg).abs() / avg)
                    .fold(0.0f64, f64::max);
                if max_rel <= gamma {
                    measured = Some(round);
                }
            }
            let bound = (2.0 / (phi * phi)) * (n as f64 / gamma).ln();
            let m = measured.unwrap_or(MAX_ROUNDS);
            let mut r = TrialRecord::new("diffusion", &point, seed);
            r.rounds = m;
            r.ok = (m as f64) <= bound;
            r.push_extra("measured", m as f64);
            r.push_extra("bound", bound);
            r.push_extra("ratio", m as f64 / bound);
            r.push_extra("phi_chain", phi);
            r.push_extra("k", k as f64);
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut tbl = Table::new([
            "family",
            "n",
            "k",
            "phi(chain)",
            "gamma",
            "measured rounds",
            "bound (2/phi^2)ln(n/gamma)",
            "measured/bound",
        ]);
        for p in &run.points {
            tbl.push_row([
                p.family.clone(),
                p.n.to_string(),
                format!("{:.0}", p.mean("k")),
                format!("{:.6}", p.mean("phi_chain")),
                format!("{}", p.param("gamma").unwrap_or(0.0)),
                format!("{:.0}", p.mean("measured")),
                format!("{:.0}", p.mean("bound")),
                format!("{:.3}", p.mean("ratio")),
            ]);
        }
        format!(
            "# E-L34: diffusion convergence vs Lemma 4 bound (eps={EPS})\n\n{}\n\
             Lemma 4 reproduced iff every measured/bound ≤ 1. The bound is loose by\n\
             design (Cheeger is quadratic); ratios ≪ 1 on well-connected families are expected.\n",
            tbl.to_markdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_crosses_families_and_gammas() {
        let full = Diffusion.grid(&GridConfig::default()).unwrap();
        assert_eq!(full.len(), 5 * 3);
        let quick = Diffusion
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(quick.len(), 5);
    }
}
