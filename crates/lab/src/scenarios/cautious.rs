//! **cautious — cautious-broadcast cost and coverage** (Lemma 1; legacy
//! `fig_cautious` bin).
//!
//! Plants a single candidate, runs only the broadcast phase, and sweeps
//! the walk-budget parameter `x`: territory should track the target
//! `x·t_mix·Φ` within small constants until it saturates at `n`, and
//! messages should stay ~linear in the territory.

use crate::agg::RunSummary;
use crate::fit::power_fit;
use crate::params::{Axis, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::{GraphProps, NetworkKnowledge, Topology};

const GRAPH_SEED: u64 = 3;

/// The cautious-broadcast scenario.
pub struct Cautious;

impl Scenario for Cautious {
    fn name(&self) -> &'static str {
        "cautious"
    }

    fn description(&self) -> &'static str {
        "single-candidate cautious broadcast: territory and message cost vs x (Lemma 1)"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            4
        } else {
            12
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "territory",
            vec![
                Axis::topologies(
                    "topo",
                    [
                        Topology::RandomRegular { n: 256, d: 4 },
                        Topology::Grid2d {
                            rows: 16,
                            cols: 16,
                            torus: true,
                        },
                    ],
                )
                .help("broadcast arenas (expander + torus)"),
                Axis::ints("x", [1, 2, 4, 8, 16, 32])
                    .quick_ints([1, 4, 16])
                    .help("walk-budget parameter (Lemma 1 sweeps it)"),
            ],
            |ctx| {
                let topo = ctx.topology("topo")?;
                let x = ctx.int("x")?;
                Ok(Some(
                    GridPoint::new(format!("{topo}/x={x}"))
                        .on(topo)
                        .knowing(Knowledge::Full),
                ))
            },
        )])
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let x = view.int("x")?;
        let graph = topo.build(view.graph_seed(GRAPH_SEED))?;
        let props = GraphProps::compute_for(&graph, &topo)?;
        let knowledge = NetworkKnowledge::from_props(&props);
        let cfg = IrrevocableConfig::from_knowledge(knowledge);
        let budget = congest_budget(knowledge.n, cfg.congest_factor);
        let target = (x as f64 * knowledge.tmix as f64 * knowledge.phi)
            .ceil()
            .max(2.0);
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let mut params = cfg.protocol_params(1)?;
            params.x = x;
            params.final_threshold = target as u64;
            // Plant exactly one candidate at node 0 (host-side planting;
            // the processes themselves stay anonymous).
            let procs: Vec<IrrevocableProcess> = (0..graph.n())
                .map(|v| {
                    let mut p = params;
                    p.degree = graph.degree(v);
                    IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
                })
                .collect();
            let mut net = Network::new(&graph, procs, seed, budget)?;
            net.run_for(cfg.broadcast_rounds())?;
            let territory = net
                .processes()
                .iter()
                .filter(|p| !p.known_sources().is_empty())
                .count();
            let mut r = TrialRecord::new("cautious", &point, seed);
            r.absorb_metrics(net.metrics());
            r.ok = territory >= 1;
            r.push_extra("territory", territory as f64);
            r.push_extra("target", target);
            r.push_extra("tmix", knowledge.tmix as f64);
            r.push_extra("phi", knowledge.phi);
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out = String::from("# E-L1: cautious broadcast (single candidate)\n\n");
        let mut topos: Vec<String> = Vec::new();
        for p in &run.points {
            let topo = p.label.split('/').next().unwrap_or("?").to_string();
            if !topos.contains(&topo) {
                topos.push(topo);
            }
        }
        for topo in topos {
            let points: Vec<_> = run
                .points
                .iter()
                .filter(|p| p.label.starts_with(&format!("{topo}/")))
                .collect();
            let Some(first) = points.first() else {
                continue;
            };
            out.push_str(&format!(
                "## {topo} (n={}, t_mix={:.0}, phi={:.4})\n\n",
                first.n,
                first.mean("tmix"),
                first.mean("phi")
            ));
            let mut tbl = Table::new([
                "x",
                "target x*tmix*phi",
                "mean territory",
                "territory/target",
                "mean msgs",
                "msgs/territory",
                "rounds",
            ]);
            let mut pts = Vec::new();
            for p in &points {
                let target = p.param("x").map_or(0.0, |_| p.mean("target"));
                let territory = p.mean("territory");
                let msgs = p.mean("messages");
                tbl.push_row([
                    format!("{:.0}", p.param("x").unwrap_or(0.0)),
                    format!("{target:.0}"),
                    format!("{territory:.1}"),
                    format!("{:.2}", territory / target.max(1.0)),
                    format!("{msgs:.0}"),
                    format!("{:.2}", msgs / territory.max(1.0)),
                    format!("{:.0}", p.mean("rounds")),
                ]);
                pts.push((target.max(1.0), territory.max(1.0)));
            }
            out.push_str(&tbl.to_markdown());
            if pts.len() >= 2 {
                let fit = power_fit(&pts);
                out.push_str(&format!(
                    "territory vs target exponent: {:.3} (r^2 {:.3}; Lemma 1 predicts ~1.0 until\n\
                     the territory saturates at n)\n\n",
                    fit.exponent, fit.r_squared
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sweeps_x_per_topology() {
        let grid = Cautious
            .grid(&crate::scenario::GridConfig {
                quick: true,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 2 * 3);
        assert!(grid.iter().all(|p| p.param("x").is_some()));
    }
}
