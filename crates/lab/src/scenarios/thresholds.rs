//! **thresholds — potential thresholds `τ(k)` across the estimate
//! ladder** (Lemma 5; legacy `fig_thresholds` bin).
//!
//! Runs the diffusion for the paper's `r(k)` rounds per estimate on the
//! **sparse CSR backend** (`ale_graph::transition::diffusion_chain`,
//! `O(m)` per step) and reports the max terminal potential against
//! `τ(k)`: in the high regime (`k^{1+ε} ≥ 2n+1`) every run must finish
//! below τ — the detection signal the protocol exploits.
//!
//! `--n` builds a large-n ladder (torus / ring / expander per size) whose
//! `k` values bracket the first high-regime estimate. At those scales
//! `r(k)` is astronomically larger than any simulable budget, so rounds
//! are capped; capped trials report `evaluated = 0` and never count as
//! Lemma 5 violations — the scenario's value there is the measured
//! terminal-potential trajectory itself, now reachable at `n ≥ 20 000`.

use crate::agg::RunSummary;
use crate::params::{Axis, AxisValue, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_core::revocable::RevocableParams;
use ale_graph::{transition, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1.0;
const XI: f64 = 0.2;
const ROUND_CAP: u64 = 2_000_000;
/// Round cap for large-n points (full grid / `--quick`).
const LARGE_CAP: u64 = 50_000;
const LARGE_CAP_QUICK: u64 = 10_000;
/// Above this size points carry a `cap` knob and use estimated `i(G)`.
const LARGE_N: usize = 2048;

/// The threshold-detection scenario.
pub struct Thresholds;

/// The `k` ladder for one topology: the legacy `[2, 4, 8, 16]` for small
/// graphs, and powers of two bracketing the first high-regime estimate
/// (`k^{1+ε} ≥ 2n+1`) for large ones — the rungs where Lemma 5's
/// detection signal actually flips.
fn k_ladder(n: usize) -> Vec<u64> {
    if n <= LARGE_N {
        return vec![2, 4, 8, 16];
    }
    let mut k_high = 2u64;
    while (k_high as f64).powf(1.0 + EPS) < (2 * n + 1) as f64 {
        k_high *= 2;
    }
    vec![(k_high / 4).max(2), (k_high / 2).max(2), k_high, 2 * k_high]
}

impl Scenario for Thresholds {
    fn name(&self) -> &'static str {
        "thresholds"
    }

    fn description(&self) -> &'static str {
        "terminal potentials vs tau(k) across the estimate ladder (Lemma 5)"
    }

    fn default_seeds(&self, _quick: bool) -> u64 {
        1
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "ladder",
            vec![
                Axis::topologies(
                    "topo",
                    vec![
                        Topology::Complete { n: 8 },
                        Topology::Cycle { n: 8 },
                        Topology::Hypercube { dim: 3 },
                        Topology::Star { n: 8 },
                    ],
                )
                .quick_topologies([Topology::Complete { n: 8 }, Topology::Cycle { n: 8 }])
                .help("families the estimate ladder sweeps"),
                Axis::ints("k", [2, 4, 8, 16])
                    .linked(|ctx| {
                        // The rungs where detection flips depend on the
                        // topology's size (see `k_ladder`).
                        let topo = ctx.topology("topo").ok()?;
                        Some(
                            k_ladder(topo.node_count())
                                .into_iter()
                                .map(AxisValue::Int)
                                .collect(),
                        )
                    })
                    .help("size-estimate rungs (computed per topology unless overridden)"),
            ],
            |ctx| {
                let topo = ctx.topology("topo")?;
                let k = ctx.int("k")?;
                let mut p = GridPoint::new(format!("{topo}/k={k}"))
                    .on(topo)
                    .knowing(Knowledge::Blind);
                if ctx.ladder || topo.node_count() > LARGE_N {
                    let cap = if ctx.quick {
                        LARGE_CAP_QUICK
                    } else {
                        LARGE_CAP
                    };
                    p = p.with("cap", cap as f64);
                }
                Ok(Some(p))
            },
        )])
        .with_ladder(
            "n",
            "topo",
            "torus / ring / expander ladder at each size",
            super::large_n_topologies,
        )
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let k = view.int("k")?;
        let graph = topo.build(view.graph_seed(0))?;
        let n = graph.n();
        let ig = super::isoperimetric_estimate(&graph, &topo)?;
        let params = RevocableParams::paper_with_ig(EPS, XI, ig);
        let k_pow = params.k_pow(k);
        let tau = params.tau(k);
        let high = k_pow >= (2 * n + 1) as f64;
        // Degrees above k^{1+eps} invalidate the averaging matrix; the
        // protocol flags those nodes low directly.
        let flagged = (0..n).any(|v| graph.degree(v) as f64 > k_pow);
        let point = point.clone();
        if flagged {
            return Ok(Box::new(move |seed| {
                let mut r = TrialRecord::new("thresholds", &point, seed);
                r.ok = true;
                r.push_extra("flagged", 1.0);
                r.push_extra("k_pow", k_pow);
                r.push_extra("tau", tau);
                Ok(r)
            }));
        }
        let alpha = 1.0 / (2.0 * k_pow);
        let chain = transition::diffusion_chain(&graph, alpha)
            .map_err(|e| LabError::BadArgs(format!("diffusion chain: {e}")))?;
        let p_white = params.p(k);
        let cap = view.knob("cap").map_or(ROUND_CAP, |c| c as u64);
        let r_full = params.r(k);
        let rounds = r_full.min(cap);
        let evaluated = rounds == r_full;
        Ok(Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            // Color with p(k); force at least one white (Lemma 5 assumes
            // l >= 1 — the l = 0 case is Lemma 6's business).
            let mut pot: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(p_white) { 0.0 } else { 1.0 })
                .collect();
            if pot.iter().all(|&x| x == 1.0) {
                pot[rng.gen_range(0..n)] = 0.0;
            }
            let whites = pot.iter().filter(|&&x| x == 0.0).count();
            let mut next = vec![0.0; n];
            for _ in 0..rounds {
                chain
                    .step_into(&pot, &mut next)
                    .map_err(|e| LabError::BadArgs(format!("chain step: {e}")))?;
                std::mem::swap(&mut pot, &mut next);
            }
            let max_pot = pot.iter().copied().fold(0.0f64, f64::max);
            let mut r = TrialRecord::new("thresholds", &point, seed);
            r.rounds = rounds;
            // The lemma's claim binds in the high regime, and only when the
            // full r(k) budget actually ran (capped trials are reported,
            // not judged).
            r.ok = !high || !evaluated || max_pot <= tau;
            r.push_extra("flagged", 0.0);
            r.push_extra("k_pow", k_pow);
            r.push_extra("high", if high { 1.0 } else { 0.0 });
            r.push_extra("evaluated", if evaluated { 1.0 } else { 0.0 });
            r.push_extra("whites", whites as f64);
            r.push_extra("max_pot", max_pot);
            r.push_extra("tau", tau);
            r.push_extra("below_tau", if max_pot <= tau { 1.0 } else { 0.0 });
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut tbl = Table::new([
            "family",
            "n",
            "k",
            "k^(1+eps)",
            "regime",
            "whites",
            "rounds run",
            "max potential",
            "tau(k)",
            "below tau",
        ]);
        for p in &run.points {
            let k = p.param("k").unwrap_or(0.0);
            if p.mean("flagged") > 0.5 {
                tbl.push_row([
                    p.family.clone(),
                    p.n.to_string(),
                    format!("{k:.0}"),
                    format!("{:.0}", p.mean("k_pow")),
                    "degree>k^(1+eps) (flagged low)".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{:.4}", p.mean("tau")),
                    "-".into(),
                ]);
                continue;
            }
            let regime = if p.mean("evaluated") < 1.0 {
                "capped (not judged)"
            } else if p.mean("high") > 0.5 {
                "high (Lemma 5)"
            } else {
                "low"
            };
            tbl.push_row([
                p.family.clone(),
                p.n.to_string(),
                format!("{k:.0}"),
                format!("{:.0}", p.mean("k_pow")),
                regime.into(),
                format!("{:.1}", p.mean("whites")),
                format!("{:.0}", p.mean("rounds")),
                format!("{:.6}", p.mean("max_pot")),
                format!("{:.6}", p.mean("tau")),
                (p.mean("below_tau") == 1.0).to_string(),
            ]);
        }
        format!(
            "# E-L5: potential thresholds tau(k) across the estimate ladder (eps={EPS})\n\n{}\n\
             Lemma 5 reproduced iff every 'high' regime row has below-tau = true.\n\
             Low-regime rows may exceed tau — that is exactly the detection signal.\n\
             Capped rows ran fewer than the paper's r(k) rounds (sparse backend, large n)\n\
             and are reported without judging the lemma.\n",
            tbl.to_markdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn grid_sweeps_the_estimate_ladder() {
        let grid = Thresholds
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 2 * 4);
        assert!(grid.iter().all(|p| p.param("k").is_some()));
    }

    #[test]
    fn large_ladder_brackets_the_high_regime() {
        let ks = k_ladder(20_000);
        assert_eq!(ks.len(), 4);
        // eps = 1: first high k has k^2 >= 40001, i.e. k = 256.
        assert_eq!(ks, vec![64, 128, 256, 512]);
        let grid = Thresholds
            .grid(&GridConfig {
                ns: vec![20_000],
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 3 * 4);
        assert!(grid.iter().all(|p| p.param("cap").is_some()));
    }
}
