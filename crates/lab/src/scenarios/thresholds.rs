//! **thresholds — potential thresholds `τ(k)` across the estimate
//! ladder** (Lemma 5; legacy `fig_thresholds` bin).
//!
//! Runs the exact diffusion for the paper's `r(k)` rounds per estimate
//! and reports the max terminal potential against `τ(k)`: in the high
//! regime (`k^{1+ε} ≥ 2n+1`) every run must finish below τ — the
//! detection signal the protocol exploits.

use crate::agg::RunSummary;
use crate::scenario::{GridConfig, GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_core::revocable::RevocableParams;
use ale_graph::{cuts, Topology};
use ale_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1.0;
const XI: f64 = 0.2;
const ROUND_CAP: u64 = 2_000_000;

/// The threshold-detection scenario.
pub struct Thresholds;

fn default_topologies(cfg: &GridConfig) -> Vec<Topology> {
    if !cfg.topologies.is_empty() {
        return cfg.topologies.clone();
    }
    if cfg.quick {
        vec![Topology::Complete { n: 8 }, Topology::Cycle { n: 8 }]
    } else {
        vec![
            Topology::Complete { n: 8 },
            Topology::Cycle { n: 8 },
            Topology::Hypercube { dim: 3 },
            Topology::Star { n: 8 },
        ]
    }
}

impl Scenario for Thresholds {
    fn name(&self) -> &'static str {
        "thresholds"
    }

    fn description(&self) -> &'static str {
        "terminal potentials vs tau(k) across the estimate ladder (Lemma 5)"
    }

    fn default_seeds(&self, _quick: bool) -> u64 {
        1
    }

    fn grid(&self, cfg: &GridConfig) -> Result<Vec<GridPoint>, LabError> {
        Ok(default_topologies(cfg)
            .into_iter()
            .flat_map(|topo| {
                [2u64, 4, 8, 16].iter().map(move |&k| {
                    GridPoint::new(format!("{topo}/k={k}"))
                        .on(topo)
                        .knowing(Knowledge::Blind)
                        .with("k", k as f64)
                })
            })
            .collect())
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let topo = point.topology.expect("threshold points carry a topology");
        let k = point.param("k").expect("threshold points carry k") as u64;
        let graph = topo.build(0)?;
        let n = graph.n();
        let ig = cuts::isoperimetric_exact(&graph)
            .map_err(|e| LabError::BadArgs(format!("i(G): {e}")))?;
        let params = RevocableParams::paper_with_ig(EPS, XI, ig);
        let k_pow = params.k_pow(k);
        let tau = params.tau(k);
        let high = k_pow >= (2 * n + 1) as f64;
        // Degrees above k^{1+eps} invalidate the averaging matrix; the
        // protocol flags those nodes low directly.
        let flagged = (0..n).any(|v| graph.degree(v) as f64 > k_pow);
        let point = point.clone();
        if flagged {
            return Ok(Box::new(move |seed| {
                let mut r = TrialRecord::new("thresholds", &point, seed);
                r.ok = true;
                r.push_extra("flagged", 1.0);
                r.push_extra("k_pow", k_pow);
                r.push_extra("tau", tau);
                Ok(r)
            }));
        }
        let alpha = 1.0 / (2.0 * k_pow);
        let chain = MarkovChain::diffusion(&graph.adjacency(), alpha)
            .map_err(|e| LabError::BadArgs(format!("diffusion chain: {e}")))?;
        let p_white = params.p(k);
        let rounds = params.r(k).min(ROUND_CAP);
        Ok(Box::new(move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            // Color with p(k); force at least one white (Lemma 5 assumes
            // l >= 1 — the l = 0 case is Lemma 6's business).
            let mut pot: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(p_white) { 0.0 } else { 1.0 })
                .collect();
            if pot.iter().all(|&x| x == 1.0) {
                pot[rng.gen_range(0..n)] = 0.0;
            }
            let whites = pot.iter().filter(|&&x| x == 0.0).count();
            let mut current = pot;
            for _ in 0..rounds {
                current = chain
                    .step(&current)
                    .map_err(|e| LabError::BadArgs(format!("chain step: {e}")))?;
            }
            let max_pot = current.iter().copied().fold(0.0f64, f64::max);
            let mut r = TrialRecord::new("thresholds", &point, seed);
            r.rounds = rounds;
            // The lemma's claim only binds in the high regime.
            r.ok = !high || max_pot <= tau;
            r.push_extra("flagged", 0.0);
            r.push_extra("k_pow", k_pow);
            r.push_extra("high", if high { 1.0 } else { 0.0 });
            r.push_extra("whites", whites as f64);
            r.push_extra("max_pot", max_pot);
            r.push_extra("tau", tau);
            r.push_extra("below_tau", if max_pot <= tau { 1.0 } else { 0.0 });
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut tbl = Table::new([
            "family",
            "n",
            "k",
            "k^(1+eps)",
            "regime",
            "whites",
            "r(k) rounds",
            "max potential",
            "tau(k)",
            "below tau",
        ]);
        for p in &run.points {
            let k = p.param("k").unwrap_or(0.0);
            if p.mean("flagged") > 0.5 {
                tbl.push_row([
                    p.family.clone(),
                    p.n.to_string(),
                    format!("{k:.0}"),
                    format!("{:.0}", p.mean("k_pow")),
                    "degree>k^(1+eps) (flagged low)".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{:.4}", p.mean("tau")),
                    "-".into(),
                ]);
                continue;
            }
            let regime = if p.mean("high") > 0.5 {
                "high (Lemma 5)"
            } else {
                "low"
            };
            tbl.push_row([
                p.family.clone(),
                p.n.to_string(),
                format!("{k:.0}"),
                format!("{:.0}", p.mean("k_pow")),
                regime.into(),
                format!("{:.1}", p.mean("whites")),
                format!("{:.0}", p.mean("rounds")),
                format!("{:.6}", p.mean("max_pot")),
                format!("{:.6}", p.mean("tau")),
                (p.mean("below_tau") == 1.0).to_string(),
            ]);
        }
        format!(
            "# E-L5: potential thresholds tau(k) across the estimate ladder (eps={EPS})\n\n{}\n\
             Lemma 5 reproduced iff every 'high' regime row has below-tau = true.\n\
             Low-regime rows may exceed tau — that is exactly the detection signal.\n",
            tbl.to_markdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sweeps_the_estimate_ladder() {
        let grid = Thresholds
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 2 * 4);
        assert!(grid.iter().all(|p| p.param("k").is_some()));
    }
}
