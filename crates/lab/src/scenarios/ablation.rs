//! **ablation-cautious — parent-report discipline ablation** (DESIGN.md
//! §4; legacy `ablation_cautious` bin).
//!
//! Runs the cautious-broadcast reporting knob both ways on the same
//! graphs/seeds: `OnCrossing` (message-optimal, larger overshoot) vs
//! `OnChange` (tighter overshoot, more messages), then checks full
//! elections are correct under both.

use crate::agg::RunSummary;
use crate::params::{Axis, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{
    run_irrevocable, IrrevocableConfig, IrrevocableProcess, ReportDiscipline,
};
use ale_graph::{GraphProps, NetworkKnowledge, Topology};

const GRAPH_SEED: u64 = 3;
const ELECTION_GRAPH_SEED: u64 = 1;

/// The report-discipline ablation scenario.
pub struct AblationCautious;

const DISCIPLINES: [(ReportDiscipline, &str); 2] = [
    (ReportDiscipline::OnCrossing, "OnCrossing"),
    (ReportDiscipline::OnChange, "OnChange"),
];

fn discipline_from(name: f64) -> ReportDiscipline {
    if name == 0.0 {
        ReportDiscipline::OnCrossing
    } else {
        ReportDiscipline::OnChange
    }
}

impl Scenario for AblationCautious {
    fn name(&self) -> &'static str {
        "ablation-cautious"
    }

    fn description(&self) -> &'static str {
        "cautious-broadcast parent-report discipline: overshoot/messages trade-off"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            5
        } else {
            15
        }
    }

    fn space(&self) -> ParamSpace {
        let discipline_axis = || {
            Axis::ints("discipline", [0, 1]).help("0 = OnCrossing (message-optimal), 1 = OnChange")
        };
        ParamSpace::new(vec![
            Block::new(
                "territory",
                vec![
                    Axis::topologies(
                        "topo",
                        [
                            Topology::RandomRegular { n: 192, d: 4 },
                            Topology::Grid2d {
                                rows: 12,
                                cols: 12,
                                torus: true,
                            },
                        ],
                    )
                    .help("single-candidate broadcast arenas"),
                    discipline_axis(),
                ],
                |ctx| {
                    let topo = ctx.topology("topo")?;
                    let di = ctx.int("discipline")? as usize;
                    let name = DISCIPLINES
                        .get(di)
                        .ok_or_else(|| {
                            LabError::BadArgs(format!("discipline must be 0 or 1, got {di}"))
                        })?
                        .1;
                    Ok(Some(
                        GridPoint::new(format!("territory/{topo}/{name}"))
                            .on(topo)
                            .knowing(Knowledge::Full)
                            .with("part", 1.0),
                    ))
                },
            ),
            Block::new(
                "election",
                vec![
                    Axis::topologies(
                        "election-topo",
                        [Topology::Complete { n: 32 }, Topology::Hypercube { dim: 5 }],
                    )
                    .help("full-election graphs"),
                    discipline_axis(),
                ],
                |ctx| {
                    let topo = ctx.topology("election-topo")?;
                    let di = ctx.int("discipline")? as usize;
                    let name = DISCIPLINES
                        .get(di)
                        .ok_or_else(|| {
                            LabError::BadArgs(format!("discipline must be 0 or 1, got {di}"))
                        })?
                        .1;
                    Ok(Some(
                        GridPoint::new(format!("election/{topo}/{name}"))
                            .on(topo)
                            .knowing(Knowledge::Full)
                            .with("part", 2.0),
                    ))
                },
            ),
        ])
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let discipline = discipline_from(view.knob("discipline").unwrap_or(0.0));
        let part = view.knob("part").unwrap_or(1.0);
        if part == 1.0 {
            let graph = topo.build(view.graph_seed(GRAPH_SEED))?;
            let props = GraphProps::compute_for(&graph, &topo)?;
            let knowledge = NetworkKnowledge::from_props(&props);
            let mut cfg = IrrevocableConfig::from_knowledge(knowledge);
            cfg.report_discipline = discipline;
            let budget = congest_budget(knowledge.n, cfg.congest_factor);
            let target = cfg.final_threshold() as f64;
            let point = point.clone();
            Ok(Box::new(move |seed| {
                let procs: Vec<IrrevocableProcess> = (0..graph.n())
                    .map(|v| {
                        let p = cfg.protocol_params(graph.degree(v))?;
                        Ok(IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0))
                    })
                    .collect::<Result<_, LabError>>()?;
                let mut net = Network::new(&graph, procs, seed, budget)?;
                net.run_for(cfg.broadcast_rounds())?;
                let territory = net
                    .processes()
                    .iter()
                    .filter(|p| !p.known_sources().is_empty())
                    .count();
                let mut r = TrialRecord::new("ablation-cautious", &point, seed);
                r.absorb_metrics(net.metrics());
                r.ok = territory >= 1;
                r.push_extra("territory", territory as f64);
                r.push_extra("target", target);
                Ok(r)
            }))
        } else {
            let graph = topo.build(view.graph_seed(ELECTION_GRAPH_SEED))?;
            let mut cfg = IrrevocableConfig::derive_for(&graph, &topo)?;
            cfg.report_discipline = discipline;
            let point = point.clone();
            Ok(Box::new(move |seed| {
                let outcome = run_irrevocable(&graph, &cfg, seed)?;
                let mut r = TrialRecord::new("ablation-cautious", &point, seed);
                r.absorb_metrics(&outcome.metrics);
                r.leaders = outcome.leader_count() as u64;
                r.ok = outcome.is_successful();
                Ok(r)
            }))
        }
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out = String::from("# Ablation: cautious-broadcast parent-report discipline\n\n");
        out.push_str("## Single-candidate territories\n\n");
        let mut tbl = Table::new([
            "graph",
            "discipline",
            "target",
            "mean territory",
            "overshoot",
            "mean msgs",
        ]);
        for p in run
            .points
            .iter()
            .filter(|p| p.label.starts_with("territory/"))
        {
            let mut parts = p.label.splitn(3, '/');
            parts.next();
            let graph = parts.next().unwrap_or("?");
            let discipline = parts.next().unwrap_or("?");
            let target = p.mean("target");
            let territory = p.mean("territory");
            tbl.push_row([
                graph.to_string(),
                discipline.to_string(),
                format!("{target:.0}"),
                format!("{territory:.1}"),
                format!("{:.2}x", territory / target.max(1.0)),
                format!("{:.0}", p.mean("messages")),
            ]);
        }
        out.push_str(&tbl.to_markdown());

        out.push_str("\n## Full elections under both disciplines\n\n");
        let mut tbl2 = Table::new(["graph", "discipline", "success", "med msgs"]);
        for p in run
            .points
            .iter()
            .filter(|p| p.label.starts_with("election/"))
        {
            let mut parts = p.label.splitn(3, '/');
            parts.next();
            let graph = parts.next().unwrap_or("?");
            let discipline = parts.next().unwrap_or("?");
            tbl2.push_row([
                graph.to_string(),
                discipline.to_string(),
                format!("{}/{}", p.ok, p.trials),
                format!("{:.0}", p.median("messages")),
            ]);
        }
        out.push_str(&tbl2.to_markdown());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn grid_covers_both_parts_and_disciplines() {
        let grid = AblationCautious.grid(&GridConfig::default()).unwrap();
        assert_eq!(grid.len(), 8);
        assert_eq!(
            grid.iter()
                .filter(|p| p.label.starts_with("election/"))
                .count(),
            4
        );
        assert!(grid.iter().any(|p| p.label.ends_with("OnChange")));
    }
}
