//! **walks — random-walk hitting rates** (Lemma 2; legacy `fig_walks`
//! bin).
//!
//! Paper regime (protocol's own budgets, 6 candidates): hit rate must be
//! ≈ 1.00 — the Lemma 2 claim. Stress regime (pinned-small territories,
//! 1/16 walk length, 3 candidates): hit rates rise with the walk count
//! `x`, exposing the knee the paper's `x` protects against.
//!
//! `--n` swaps the grid for 4-regular expanders at each requested size,
//! paper regime only: graph properties come from the sparse spectral
//! path (`O(m)` CSR power iteration), and expanders are the family whose
//! `O(t_mix)` walk budgets stay simulable at `n ≥ 20 000` (ring/torus
//! mixing times at that scale exceed any CONGEST budget).

use crate::agg::RunSummary;
use crate::params::{Axis, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::{transition, GraphProps, NetworkKnowledge, Topology};
use ale_markov::mixing;

const GRAPH_SEED: u64 = 9;
/// Above this size only the paper regime at `mult = 1` runs (the stress
/// regime's many knee points would multiply an already-large CONGEST cost).
const LARGE_N: usize = 2048;

/// The walk-hitting scenario.
pub struct Walks;

impl Scenario for Walks {
    fn name(&self) -> &'static str {
        "walks"
    }

    fn description(&self) -> &'static str {
        "walk hitting rates vs x, paper and stress regimes (Lemma 2)"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            5
        } else {
            15
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Block::new(
                "paper",
                vec![Axis::floats("mult", [0.25, 0.5, 1.0, 2.0])
                    .help("multiplier on the protocol's own walk budget x")],
                |ctx| {
                    let topo = ctx.topology("topo")?;
                    let mult = ctx.float("mult")?;
                    // Large graphs run the paper regime at mult = 1 only:
                    // the knee sweep would multiply an already-large
                    // CONGEST cost.
                    if topo.node_count() > LARGE_N && mult != 1.0 {
                        return Ok(None);
                    }
                    Ok(Some(
                        GridPoint::new(format!("{topo}/paper/mult={mult}"))
                            .on(topo)
                            .knowing(Knowledge::Full)
                            .with("candidates", 6.0),
                    ))
                },
            ),
            Block::new(
                "stress",
                vec![Axis::ints("x", [1, 2, 4, 8, 16])
                    .help("absolute walk count (pinned-small territories)")],
                |ctx| {
                    let topo = ctx.topology("topo")?;
                    if topo.node_count() > LARGE_N {
                        return Ok(None);
                    }
                    let x = ctx.int("x")?;
                    Ok(Some(
                        GridPoint::new(format!("{topo}/stress/x={x}"))
                            .on(topo)
                            .knowing(Knowledge::Full)
                            .with("candidates", 3.0)
                            .with("threshold", 4.0),
                    ))
                },
            ),
        ])
        .with_shared(vec![Axis::topologies(
            "topo",
            [
                Topology::RandomRegular { n: 128, d: 4 },
                Topology::Grid2d {
                    rows: 12,
                    cols: 12,
                    torus: true,
                },
            ],
        )
        .help("walk arenas (expander + torus)")])
        .with_ladder("n", "topo", "4-regular expanders at each size", |ns| {
            ns.iter()
                .map(|&n| Topology::RandomRegular { n, d: 4 })
                .collect()
        })
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let graph = topo.build(view.graph_seed(GRAPH_SEED))?;
        let props = GraphProps::compute_for(&graph, &topo)?;
        let knowledge = NetworkKnowledge::from_props(&props);
        let cfg = IrrevocableConfig::from_knowledge(knowledge);
        let budget = congest_budget(knowledge.n, cfg.congest_factor);
        let paper_x = cfg.x();

        // Large non-vertex-transitive families: cross-check the knowledge
        // bundle's t_mix with the cheap multi-start sampling estimator
        // (`O(t·m)` on the sparse backend) and report it alongside.
        let tmix_sampled = if graph.n() > LARGE_N {
            transition::lazy_walk_chain(&graph).ok().and_then(|chain| {
                let starts = mixing::sample_starts(graph.n(), 3, GRAPH_SEED);
                let cap = knowledge.tmix.saturating_mul(8).max(1 << 12);
                mixing::mixing_time_multi_start(&chain, &starts, cap)
                    .ok()
                    .map(|t| t as f64)
            })
        } else {
            None
        };

        let candidates = view.knob("candidates").unwrap_or(6.0) as usize;
        let (x, threshold, walk_len) = if let Some(mult) = view.knob("mult") {
            (
                ((paper_x as f64 * mult).ceil() as u64).max(1),
                None,
                cfg.walk_rounds(),
            )
        } else {
            let x = view.int("x")?;
            (x, Some(4u64), (cfg.walk_rounds() / 16).max(4))
        };
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let n = graph.n();
            let mut params = cfg.protocol_params(1)?;
            params.x = x;
            if let Some(t) = threshold {
                params.final_threshold = t;
            }
            params.walk_rounds = walk_len;
            let step = n / candidates;
            let procs: Vec<IrrevocableProcess> = (0..n)
                .map(|v| {
                    let mut p = params;
                    p.degree = graph.degree(v);
                    let is_cand = v % step == 0 && v / step < candidates;
                    let id = if is_cand {
                        1_000_000 + (v / step) as u64
                    } else {
                        1 + v as u64
                    };
                    IrrevocableProcess::with_candidacy(p, id, is_cand)
                })
                .collect();
            let mut net = Network::new(&graph, procs, seed, budget)?;
            let total_rounds =
                params.broadcast_rounds + params.walk_rounds + params.converge_rounds + 1;
            net.run_to_halt(total_rounds + 4)?;
            let verdicts = net.outputs();
            let max_id = 1_000_000 + candidates as u64 - 1;
            let mut hits = 0u64;
            let mut total = 0u64;
            let mut leaders = 0u64;
            for v in verdicts.iter().filter(|v| v.candidate) {
                total += 1;
                if v.observed_walk_max == Some(max_id) {
                    hits += 1;
                }
                if v.leader {
                    leaders += 1;
                }
            }
            let winner_ok = verdicts.iter().any(|v| v.leader && v.id == max_id);
            let mut r = TrialRecord::new("walks", &point, seed);
            r.absorb_metrics(net.metrics());
            r.leaders = leaders;
            r.ok = leaders == 1 && winner_ok;
            r.push_extra("hits", hits as f64);
            r.push_extra("cands", total as f64);
            r.push_extra("x_eff", x as f64);
            if let Some(t) = tmix_sampled {
                r.push_extra("tmix_sampled", t);
            }
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out = String::from("# E-L2: walk hitting rates (Lemma 2)\n\n");
        let mut topos: Vec<String> = Vec::new();
        for p in &run.points {
            let topo = p.label.split('/').next().unwrap_or("?").to_string();
            if !topos.contains(&topo) {
                topos.push(topo);
            }
        }
        for topo in topos {
            out.push_str(&format!("## {topo}\n\n"));
            for (regime, header, title) in [
                (
                    "paper",
                    "x multiplier",
                    "### Paper regime (expect hit rate 1.00 — the Lemma 2 claim)\n\n",
                ),
                (
                    "stress",
                    "x",
                    "### Stress regime (territory target 4, walk length x1/16, 3 candidates)\n\n",
                ),
            ] {
                let points: Vec<_> = run
                    .points
                    .iter()
                    .filter(|p| p.label.starts_with(&format!("{topo}/{regime}/")))
                    .collect();
                if points.is_empty() {
                    continue;
                }
                out.push_str(title);
                let mut tbl = Table::new([header, "x", "hit rate", "election success"]);
                for p in points {
                    let knob = p.param("mult").or_else(|| p.param("x")).unwrap_or(0.0);
                    let hit_rate = p.mean("hits") / p.mean("cands").max(1.0);
                    tbl.push_row([
                        format!("{knob}"),
                        format!("{:.0}", p.mean("x_eff")),
                        format!("{hit_rate:.2}"),
                        format!("{}/{}", p.ok, p.trials),
                    ]);
                }
                out.push_str(&tbl.to_markdown());
                out.push('\n');
            }
        }
        out.push_str(
            "Reproduction criterion: paper-regime hit rates ≈ 1.00 everywhere; the\n\
             stress regime shows hit rates rising with x — the budget Lemma 2 sizes.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn grid_has_both_regimes() {
        let grid = Walks.grid(&GridConfig::default()).unwrap();
        assert_eq!(grid.len(), 2 * (4 + 5));
        assert!(grid.iter().any(|p| p.label.contains("/paper/")));
        assert!(grid.iter().any(|p| p.label.contains("/stress/")));
    }

    #[test]
    fn ns_override_is_paper_regime_expanders_only() {
        let grid = Walks
            .grid(&GridConfig {
                ns: vec![20_000],
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].n, 20_000);
        assert!(grid[0].label.contains("/paper/"));
        // No seed pin: --seeds must be honored for large sweeps.
        assert_eq!(grid[0].seeds, None);
    }
}
