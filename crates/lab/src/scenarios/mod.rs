//! The built-in scenario library: every legacy `fig_*`/`table1`/ablation
//! binary re-registered as a data-driven spec over the lab's
//! grid × seed-fleet engine.

mod ablation;
mod cautious;
mod certification;
mod diffusion;
mod impossibility;
mod phases;
mod revocable;
mod scaling;
mod table1;
mod thresholds;
mod walks;

pub use ablation::AblationCautious;
pub use cautious::Cautious;
pub use certification::Certification;
pub use diffusion::Diffusion;
pub use impossibility::Impossibility;
pub use phases::Phases;
pub use revocable::Revocable;
pub use scaling::Scaling;
pub use table1::Table1;
pub use thresholds::Thresholds;
pub use walks::Walks;
