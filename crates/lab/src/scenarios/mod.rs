//! The built-in scenario library: every legacy `fig_*`/`table1`/ablation
//! binary re-registered as a data-driven spec over the lab's
//! grid × seed-fleet engine.

use crate::scenario::LabError;
use ale_graph::{analytic, cuts, spectral_sparse, Graph, Topology, IMPLICIT_THRESHOLD};

mod ablation;
mod cautious;
mod certification;
mod diffusion;
mod impossibility;
mod phases;
mod revocable;
mod scaling;
mod table1;
mod thresholds;
mod walks;

pub use ablation::AblationCautious;
pub use cautious::Cautious;
pub use certification::Certification;
pub use diffusion::Diffusion;
pub use impossibility::Impossibility;
pub use phases::Phases;
pub use revocable::Revocable;
pub use scaling::Scaling;
pub use table1::Table1;
pub use thresholds::Thresholds;
pub use walks::Walks;

/// Isoperimetric-number estimate that works at any scale: the exact
/// exponential cut oracle up to its brute-force limit, the family's closed
/// form when the topology has one, and the spectral lower bound
/// `i(G) ≥ gap·d_min` otherwise. This is what lets the diffusion-family
/// scenarios price their Lemma 4/5 bounds on 20 000-node graphs where the
/// exact oracle is unreachable.
pub(crate) fn isoperimetric_estimate(graph: &Graph, topo: &Topology) -> Result<f64, LabError> {
    if let Ok(v) = cuts::isoperimetric_exact(graph) {
        return Ok(v);
    }
    if let Some(v) = analytic::hints(topo).isoperimetric {
        return Ok(v);
    }
    let gap = spectral_sparse::lazy_spectral_gap(graph, 1e-11, 5_000_000)
        .map_err(|e| LabError::BadArgs(format!("spectral i(G) fallback: {e}")))?;
    let d_min = (0..graph.n()).map(|v| graph.degree(v)).min().unwrap_or(1);
    Ok((gap * d_min as f64).max(f64::MIN_POSITIVE))
}

/// The large-n sparse-topology ladder the diffusion-family scenarios share:
/// for each requested `n`, a torus (side `⌊√n⌋`), a ring, and a
/// well-connected sparse family — the three conductance regimes
/// (`Θ(1/√n)`, `Θ(1/n)`, `Θ(1)`-ish) at the same scale.
///
/// Below [`IMPLICIT_THRESHOLD`] the well-connected rung is a 4-regular
/// random graph (expander). At and above it, the pairing-model builder's
/// `O(m)` edge lists and retry loop are the memory and time bottleneck, so
/// the rung switches to cube-connected cycles (degree-3 vertex-transitive,
/// diameter `O(log n)`) with `dim` chosen so `dim·2^dim` is closest to the
/// requested `n` — every rung of the big ladder then has an O(1)-memory
/// implicit backend.
pub(crate) fn large_n_topologies(ns: &[usize]) -> Vec<Topology> {
    let mut topos = Vec::with_capacity(ns.len() * 3);
    for &n in ns {
        let side = (n as f64).sqrt().floor() as usize;
        if side >= 3 {
            topos.push(Topology::Grid2d {
                rows: side,
                cols: side,
                torus: true,
            });
        }
        if n >= 3 {
            topos.push(Topology::Cycle { n });
        }
        if n >= IMPLICIT_THRESHOLD {
            topos.push(Topology::Ccc {
                dim: nearest_ccc_dim(n),
            });
        } else if n >= 6 {
            topos.push(Topology::RandomRegular { n, d: 4 });
        }
    }
    topos
}

/// The CCC dimension whose node count `dim·2^dim` is closest to `n`.
fn nearest_ccc_dim(n: usize) -> usize {
    (3..=24)
        .min_by_key(|&dim| ((dim << dim) as i128 - n as i128).unsigned_abs())
        .expect("non-empty dim range")
}

#[cfg(test)]
mod shared_tests {
    use super::*;

    #[test]
    fn isoperimetric_estimate_picks_the_right_oracle() {
        // Small graph: exact.
        let topo = Topology::Cycle { n: 8 };
        let g = topo.build(0).unwrap();
        let exact = isoperimetric_estimate(&g, &topo).unwrap();
        assert!((exact - 0.5).abs() < 1e-12, "C8 i(G) = 2/4, got {exact}");
        // Large known family: analytic closed form.
        let topo = Topology::Cycle { n: 4000 };
        let g = topo.build(0).unwrap();
        let hinted = isoperimetric_estimate(&g, &topo).unwrap();
        assert!((hinted - 2.0 / 2000.0).abs() < 1e-12, "got {hinted}");
        // Large family without a closed form: positive spectral bound.
        let topo = Topology::RandomRegular { n: 256, d: 4 };
        let g = topo.build(3).unwrap();
        let spectral = isoperimetric_estimate(&g, &topo).unwrap();
        assert!(spectral > 0.0);
    }

    #[test]
    fn large_n_ladder_covers_three_regimes() {
        let topos = large_n_topologies(&[20_000]);
        assert_eq!(topos.len(), 3);
        assert!(matches!(
            topos[0],
            Topology::Grid2d {
                rows: 141,
                cols: 141,
                torus: true
            }
        ));
        assert!(matches!(topos[1], Topology::Cycle { n: 20_000 }));
        assert!(matches!(
            topos[2],
            Topology::RandomRegular { n: 20_000, d: 4 }
        ));
        assert!(large_n_topologies(&[]).is_empty());
    }

    #[test]
    fn big_rungs_swap_the_expander_for_cube_connected_cycles() {
        // At and above the implicit threshold the well-connected rung must
        // be a CCC (O(1)-memory backend), with dim·2^dim closest to n.
        let topos = large_n_topologies(&[200_000, 1_000_000]);
        assert_eq!(topos.len(), 6);
        assert!(matches!(topos[2], Topology::Ccc { dim: 14 })); // 14·2^14 = 229 376
        assert!(matches!(topos[5], Topology::Ccc { dim: 16 })); // 16·2^16 = 1 048 576
        assert_eq!(nearest_ccc_dim(IMPLICIT_THRESHOLD), 13); // 13·2^13 = 106 496
    }
}
