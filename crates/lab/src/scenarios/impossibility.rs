//! **impossibility — the pumping-wheel phenomenon** (Theorem 2,
//! Figures 1–2; legacy `fig_impossibility` bin).
//!
//! Witness geometry (static), the split-brain series (stop-by-`T`
//! protocol believing `C_{n₀}` run on `C_{f·n₀}`), and the revocable
//! contrast on a tractable ring.

use crate::agg::RunSummary;
use crate::params::{Axis, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_core::revocable::{run_revocable, RevocableParams};
use ale_graph::Topology;
use ale_impossibility::{split_brain_trial, PumpingLayout};

const N0: usize = 8;
const CONTRAST_N: usize = 12;

/// The impossibility scenario.
pub struct Impossibility;

impl Scenario for Impossibility {
    fn name(&self) -> &'static str {
        "impossibility"
    }

    fn description(&self) -> &'static str {
        "Theorem 2 split-brain series on oversized rings + revocable contrast"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            5
        } else {
            15
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Block::new(
                "split",
                vec![Axis::ints("factor", [1, 4, 8, 16, 32, 64, 128])
                    .quick_ints([1, 8, 32])
                    .help("ring blow-up factors N/n0")],
                |ctx| {
                    let f = ctx.int("factor")? as usize;
                    Ok(Some(
                        GridPoint::new(format!("split/N={}", N0 * f))
                            .on(Topology::Cycle { n: (N0 * f).max(3) })
                            .knowing(Knowledge::SizeOnly),
                    ))
                },
            ),
            Block::new("contrast", vec![], |_| {
                Ok(Some(
                    GridPoint::new(format!("contrast/C{CONTRAST_N}"))
                        .on(Topology::Cycle { n: CONTRAST_N })
                        .knowing(Knowledge::Blind)
                        .seeds(5),
                ))
            }),
        ])
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let point = point.clone();
        if point.label.starts_with("split/") {
            let big_n = point.n;
            Ok(Box::new(move |seed| {
                let trial = split_brain_trial(N0, big_n, seed)?;
                let mut r = TrialRecord::new("impossibility", &point, seed);
                r.absorb_metrics(&trial.outcome.metrics);
                r.leaders = trial.leaders.len() as u64;
                // "ok" here means the Theorem 2 phenomenon did NOT appear
                // (unique leader despite the lie) — expected to decay to 0.
                r.ok = trial.leaders.len() == 1;
                r.push_extra("split", if trial.split_brain() { 1.0 } else { 0.0 });
                if let Some(d) = trial.min_leader_distance() {
                    r.push_extra("min_leader_distance", d as f64);
                }
                Ok(r)
            }))
        } else {
            let g = Topology::Cycle { n: CONTRAST_N }.build(0)?;
            let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
            let max_k = 8u64; // first k with k² > 4·12
            Ok(Box::new(move |seed| {
                let run = run_revocable(&g, &params, seed, max_k)?;
                let mut r = TrialRecord::new("impossibility", &point, seed);
                r.absorb_metrics(&run.outcome.metrics);
                r.leaders = run.outcome.leader_count() as u64;
                r.ok = run.outcome.leader_count() == 1;
                r.push_extra("stabilized", if run.stabilized { 1.0 } else { 0.0 });
                if let Some(rounds) = run.rounds_at_stability {
                    r.push_extra("rounds_at_stability", rounds as f64);
                }
                Ok(r)
            }))
        }
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out =
            String::from("# E-F12: impossibility of irrevocable LE without n (Theorem 2)\n\n");

        out.push_str("## Witness geometry (Figures 1–2)\n\n");
        let mut geo = Table::new([
            "n0",
            "T",
            "N",
            "witnesses",
            "witness len",
            "core",
            "segment",
        ]);
        for (w_n0, t, blocks) in [(4usize, 3usize, 3usize), (8, 6, 4), (8, 6, 16)] {
            if let Ok(layout) = PumpingLayout::new(w_n0, t, blocks * (4 * t + 2 * w_n0)) {
                geo.push_row([
                    w_n0.to_string(),
                    t.to_string(),
                    layout.big_n.to_string(),
                    layout.witness_count().to_string(),
                    layout.witness_len().to_string(),
                    (2 * w_n0).to_string(),
                    w_n0.to_string(),
                ]);
            }
        }
        out.push_str(&geo.to_markdown());
        out.push_str(&format!(
            "Proof-sufficient block count for (n0=4, T=3, c=1/2): {} — versus the ~dozens of\n\
             blocks at which the phenomenon is already empirically overwhelming below.\n\n",
            PumpingLayout::proof_block_count(4, 3, 0.5)
        ));

        out.push_str(&format!(
            "## Split-brain frequency vs blow-up (n0 = {N0})\n\n"
        ));
        let mut tbl = Table::new(["N", "N/n0", "Pr[>=2 leaders]", "mean leaders"]);
        for p in run.points.iter().filter(|p| p.label.starts_with("split/")) {
            tbl.push_row([
                p.n.to_string(),
                (p.n as usize / N0).to_string(),
                format!("{:.2}", p.mean("split")),
                format!("{:.2}", p.mean("leaders")),
            ]);
        }
        out.push_str(&tbl.to_markdown());

        out.push_str(
            "\n## Revocable contrast (no knowledge of n; ring family, tractable size)\n\n",
        );
        let mut contrast = Table::new([
            "graph",
            "trials",
            "stabilized",
            "unique leader",
            "med rounds to stability",
        ]);
        for p in run
            .points
            .iter()
            .filter(|p| p.label.starts_with("contrast/"))
        {
            let stab = p
                .metric("stabilized")
                .map_or(0, |m| (m.mean() * m.count() as f64).round() as u64);
            contrast.push_row([
                p.label.trim_start_matches("contrast/").to_string(),
                p.trials.to_string(),
                format!("{stab}/{}", p.trials),
                format!("{}/{}", p.ok, p.trials),
                format!("{:.0}", p.median("rounds_at_stability")),
            ]);
        }
        out.push_str(&contrast.to_markdown());
        out.push_str(
            "\nThe stop-by-T protocol splits oversized rings into many leader domains;\n\
             the revocable protocol, never committing, converges to exactly one —\n\
             at the polynomial price Corollary 1 predicts (rings are its worst case).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn grid_sweeps_blowup_factors() {
        let grid = Impossibility
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 4);
        assert!(grid.iter().any(|p| p.label == "split/N=64"));
        assert!(grid.last().unwrap().label.starts_with("contrast/"));
    }
}
