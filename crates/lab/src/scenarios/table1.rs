//! **table1 — the Table 1 shootout** (paper Table 1; legacy `table1` bin).
//!
//! This paper's irrevocable protocol against the related-work baselines on
//! the same graphs/seeds: success rates and median message/bit/round costs
//! across well-, intermediate-, and poorly-connected families.

use crate::agg::RunSummary;
use crate::params::{Axis, Block, ParamSpace};
use crate::runners::{Algorithm, GraphContext};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_graph::Topology;

/// Graph seed shared by every Table 1 cell (same graph across algorithms).
const GRAPH_SEED: u64 = 1;

/// The Table 1 scenario.
pub struct Table1;

/// The standard comparison suite at size `n`: every family from the
/// paper's Table 1 whose shape constraints admit `n`.
pub fn suite_for(n: usize) -> Vec<Topology> {
    let mut suite = Vec::new();
    if n >= 2 {
        suite.push(Topology::Complete { n });
    }
    if n >= 4 && n.is_power_of_two() {
        suite.push(Topology::Hypercube {
            dim: n.trailing_zeros() as usize,
        });
    }
    // random_regular needs d < n and n·d even; d = 4 makes n·d always even.
    if n > 4 {
        suite.push(Topology::RandomRegular { n, d: 4 });
    }
    let side = (n as f64).sqrt().round() as usize;
    if side >= 3 && side * side == n {
        suite.push(Topology::Grid2d {
            rows: side,
            cols: side,
            torus: true,
        });
    }
    if n.is_multiple_of(8) && n / 8 >= 3 {
        suite.push(Topology::RingOfCliques {
            cliques: n / 8,
            k: 8,
        });
    }
    if n >= 3 {
        suite.push(Topology::Cycle { n });
    }
    suite
}

fn knowledge_of(alg: Algorithm) -> Knowledge {
    match alg {
        Algorithm::ThisWork | Algorithm::Gilbert => Knowledge::Full,
        Algorithm::Kutten | Algorithm::FloodOnChange | Algorithm::FloodEveryRound => {
            Knowledge::SizeOnly
        }
    }
}

impl Scenario for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn description(&self) -> &'static str {
        "Table 1 shootout: this work vs baselines across topology families"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            10
        } else {
            32
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![Block::new(
            "shootout",
            vec![
                Axis::topologies("topo", suite_for(64))
                    .quick_topologies([
                        Topology::Complete { n: 32 },
                        Topology::Hypercube { dim: 5 },
                        Topology::Cycle { n: 16 },
                    ])
                    .help("comparison families (Table 1 rows)"),
                Axis::algorithms("algo", Algorithm::ALL)
                    .help("this work vs the related-work baselines"),
            ],
            |ctx| {
                let topo = ctx.topology("topo")?;
                let alg = ctx.algorithm("algo")?;
                Ok(Some(
                    GridPoint::new(format!("{topo}/{alg}"))
                        .on(topo)
                        .algo(alg)
                        .knowing(knowledge_of(alg)),
                ))
            },
        )])
        .with_ladder("n", "topo", "the comparison suite at each size", |ns| {
            ns.iter().flat_map(|&n| suite_for(n)).collect()
        })
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let alg = view.algorithm()?;
        let ctx = GraphContext::build(topo, view.graph_seed(GRAPH_SEED))?;
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let outcome = ctx.run(alg, seed)?;
            let mut r = TrialRecord::new("table1", &point, seed);
            r.absorb_metrics(&outcome.metrics);
            r.leaders = outcome.leader_count() as u64;
            r.ok = outcome.is_successful();
            r.push_extra("m", ctx.props.m as f64);
            r.push_extra("tmix", ctx.knowledge.tmix as f64);
            r.push_extra("phi", ctx.knowledge.phi);
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut table = Table::new([
            "family",
            "n",
            "m",
            "t_mix",
            "phi",
            "algorithm",
            "success",
            "med msgs",
            "med bits",
            "med congest rounds",
        ]);
        for p in &run.points {
            table.push_row([
                p.family.clone(),
                p.n.to_string(),
                format!("{:.0}", p.mean("m")),
                format!("{:.0}", p.mean("tmix")),
                format!("{:.4}", p.mean("phi")),
                p.algorithm.clone(),
                format!("{}/{}", p.ok, p.trials),
                format!("{:.0}", p.median("messages")),
                format!("{:.0}", p.median("bits")),
                format!("{:.0}", p.median("congest_rounds")),
            ]);
        }
        format!(
            "# E-T1: Table 1 shootout ({} seeds per cell, master seed {})\n\n{}\nCSV:\n{}",
            run.seeds,
            run.master_seed,
            table.to_markdown(),
            table.to_csv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_adapts_to_shape_constraints() {
        let s64 = suite_for(64);
        assert!(s64.contains(&Topology::Hypercube { dim: 6 }));
        assert!(s64.contains(&Topology::Grid2d {
            rows: 8,
            cols: 8,
            torus: true
        }));
        assert!(s64.contains(&Topology::RingOfCliques { cliques: 8, k: 8 }));
        let s12 = suite_for(12);
        assert!(!s12.iter().any(|t| matches!(t, Topology::Hypercube { .. })));
        assert!(s12.contains(&Topology::Cycle { n: 12 }));
    }

    #[test]
    fn grid_covers_every_algorithm_per_topology() {
        let grid = Table1
            .grid(&crate::scenario::GridConfig {
                quick: true,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 3 * Algorithm::ALL.len());
        assert!(grid
            .iter()
            .all(|p| p.topology.is_some() && p.algorithm.is_some()));
    }

    #[test]
    fn n_override_builds_the_suite() {
        let grid = Table1
            .grid(&crate::scenario::GridConfig {
                ns: vec![16],
                ..Default::default()
            })
            .unwrap();
        assert!(grid.iter().any(|p| p.label.starts_with("complete(n=16)")));
        assert!(grid.iter().any(|p| p.label.starts_with("hypercube(d=4)")));
    }

    #[test]
    fn algo_param_narrows_the_grid_with_validation() {
        let grid = Table1
            .grid(&crate::scenario::GridConfig {
                quick: true,
                params: vec![("algo".into(), vec!["this-work".into()])],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 3);
        assert!(grid
            .iter()
            .all(|p| p.algorithm == Some(Algorithm::ThisWork)));
        assert!(matches!(
            Table1.grid(&crate::scenario::GridConfig {
                params: vec![("algo".into(), vec!["nonesuch".into()])],
                ..Default::default()
            }),
            Err(LabError::BadArgs(_))
        ));
    }
}
