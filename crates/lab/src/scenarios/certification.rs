//! **certification — certification-phase statistics** (Lemmas 6–8;
//! legacy `fig_certification` bin).
//!
//! Monte-Carlo checks of the coloring lemmas with the paper's exact
//! parameter functions, plus Lemma 7 validated at the protocol level by
//! reading certificate distributions from real runs. Each Monte-Carlo
//! *trial* is one `f(k)`-iteration coloring experiment, so the per-point
//! seed override dials the MC sample size.

use crate::agg::RunSummary;
use crate::params::{Axis, Block, ParamSpace};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_core::revocable::{run_revocable, RevocableParams};
use ale_graph::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1.0;
const XI: f64 = 0.2;

/// The certification-statistics scenario.
pub struct Certification;

impl Scenario for Certification {
    fn name(&self) -> &'static str {
        "certification"
    }

    fn description(&self) -> &'static str {
        "white-iteration counting (Lemmas 6 & 8) and certificate levels (Lemma 7)"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        // Only used for points without overrides; both parts override.
        if quick {
            5
        } else {
            15
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Block::new(
                "mc",
                vec![
                    Axis::ints("mc-n", [8, 16, 32]).help("coloring-experiment sizes"),
                    Axis::ints("k", [2, 4, 8, 16]).help("size-estimate rungs"),
                ],
                |ctx| {
                    let n = ctx.int("mc-n")?;
                    let k = ctx.int("k")?;
                    let mc_trials = if ctx.quick { 200 } else { 2000 };
                    Ok(Some(
                        GridPoint::new(format!("mc/n={n}/k={k}"))
                            .knowing(Knowledge::Blind)
                            .seeds(mc_trials),
                    ))
                },
            ),
            Block::new(
                "lemma7",
                vec![Axis::ints("lemma7-n", [4, 8, 12])
                    .help("clique sizes for real-run certificates")],
                |ctx| {
                    let n = ctx.int("lemma7-n")? as usize;
                    let run_trials = if ctx.quick { 5 } else { 15 };
                    Ok(Some(
                        GridPoint::new(format!("lemma7/n={n}"))
                            .on(Topology::Complete { n })
                            .knowing(Knowledge::Blind)
                            .seeds(run_trials),
                    ))
                },
            ),
        ])
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let params = RevocableParams::paper_blind(EPS, XI);
        let view = point.view();
        let point_owned = point.clone();
        if point.label.starts_with("mc/") {
            let n = view.int("mc-n")? as usize;
            let k = view.int("k")?;
            let k_pow = params.k_pow(k);
            let p_white = params.p(k);
            let f = params.f(k);
            Ok(Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut empties = 0u64;
                let mut whites_seen = false;
                for _ in 0..f {
                    let any_white = (0..n).any(|_| rng.gen_bool(p_white));
                    if any_white {
                        whites_seen = true;
                    } else {
                        empties += 1;
                    }
                }
                let mut r = TrialRecord::new("certification", &point_owned, seed);
                r.ok = true;
                r.push_extra("empty_majority", if 2 * empties > f { 1.0 } else { 0.0 });
                r.push_extra("some_white", if whites_seen { 1.0 } else { 0.0 });
                r.push_extra("f", f as f64);
                r.push_extra("k_pow", k_pow);
                Ok(r)
            }))
        } else {
            let topo = view.topology()?;
            let n = point.n;
            let g = topo.build(view.graph_seed(0))?;
            let run_params = RevocableParams::paper_blind(EPS, XI).with_scales(0.02, 0.5, 1.0);
            let mut bound_k = 2u64;
            while params.k_pow(bound_k) * (4.0 * bound_k as f64).log2() < n as f64 {
                bound_k *= 2;
            }
            Ok(Box::new(move |seed| {
                let run = run_revocable(&g, &run_params, seed, 16)?;
                let mut min_cert = u64::MAX;
                let mut max_cert = 0u64;
                for v in &run.verdicts {
                    if let Some(c) = v.cert {
                        min_cert = min_cert.min(c);
                        max_cert = max_cert.max(c);
                    }
                }
                let mut r = TrialRecord::new("certification", &point_owned, seed);
                r.absorb_metrics(&run.outcome.metrics);
                r.leaders = run.outcome.leader_count() as u64;
                r.ok = run.outcome.leader_count() == 1;
                r.push_extra("bound_k", bound_k as f64);
                if min_cert != u64::MAX {
                    r.push_extra("min_cert", min_cert as f64);
                    r.push_extra("max_cert", max_cert as f64);
                }
                Ok(r)
            }))
        }
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out = format!(
            "# E-L678: certification-phase statistics (eps={EPS}, xi={XI})\n\n\
             ## Lemmas 6 & 8: white-iteration counts\n\n"
        );
        let mut tbl = Table::new([
            "n",
            "k",
            "k^2 vs 2n+1",
            "f(k)",
            "Pr[empty majority] (L6 wants ->1)",
            "Pr[some white iter] (L8 wants >=1-xi)",
        ]);
        for p in run.points.iter().filter(|p| p.label.starts_with("mc/")) {
            let n = p.param("mc-n").unwrap_or(0.0) as usize;
            let k_pow = p.mean("k_pow");
            let regime = if k_pow >= (2 * n + 1) as f64 {
                if k_pow <= (4 * n) as f64 {
                    "in [2n+1, 4n]"
                } else {
                    "above 4n"
                }
            } else {
                "below"
            };
            tbl.push_row([
                n.to_string(),
                format!("{:.0}", p.param("k").unwrap_or(0.0)),
                regime.into(),
                format!("{:.0}", p.mean("f")),
                format!("{:.3}", p.mean("empty_majority")),
                format!("{:.3}", p.mean("some_white")),
            ]);
        }
        out.push_str(&tbl.to_markdown());

        out.push_str("\n## Lemma 7: certificates chosen by real runs (scaled r, paper f)\n\n");
        let mut t7 = Table::new([
            "n",
            "abstention bound: min k with k^2*log2(4k) >= n",
            "min cert seen",
            "max cert seen",
            "runs",
        ]);
        for p in run.points.iter().filter(|p| p.label.starts_with("lemma7/")) {
            let min_cert = p
                .metric("min_cert")
                .map_or("-".to_string(), |m| format!("{:.0}", m.min()));
            let max_cert = p
                .metric("max_cert")
                .map_or("-".to_string(), |m| format!("{:.0}", m.max()));
            t7.push_row([
                p.n.to_string(),
                format!("{:.0}", p.mean("bound_k")),
                min_cert,
                max_cert,
                p.trials.to_string(),
            ]);
        }
        out.push_str(&t7.to_markdown());
        out.push_str(
            "\nLemma 7 reproduced iff certificates cluster at/above the abstention bound\n\
             (early certificates are *possible* — the lemma is probabilistic — but the\n\
             *winning* certificate, the max, must sit at a size-revealing estimate).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_points_dial_sample_size_via_seed_overrides() {
        let grid = Certification
            .grid(&crate::scenario::GridConfig {
                quick: true,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(grid.len(), 12 + 3);
        assert!(grid
            .iter()
            .filter(|p| p.label.starts_with("mc/"))
            .all(|p| p.seeds == Some(200)));
        assert!(grid
            .iter()
            .filter(|p| p.label.starts_with("lemma7/"))
            .all(|p| p.seeds == Some(5)));
    }
}
