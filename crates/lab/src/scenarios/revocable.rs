//! **revocable — revocable LE cost growth** (Theorem 3 / Corollary 1;
//! legacy `fig_revocable` bin).
//!
//! Four execution modes plus a formula-ladder extrapolation:
//!
//! 1. Theorem 3 on cliques with known `i(G)`, paper-exact `r(k)`;
//! 2. Corollary 1 paper-exact blind on tiny graphs;
//! 3. scaled blind shape sweep in `n`;
//! 4. `--n` **large-n engine ladder**: the sparse-topology ladder (torus /
//!    ring / a well-connected rung — 4-regular expander, or
//!    cube-connected cycles past the implicit-backend threshold — at tens
//!    of thousands to millions of nodes) running the
//!    full never-halting protocol on the CONGEST simulator with heavily
//!    scaled schedules and a fixed estimate horizon — an engine-scale
//!    demonstration (every node broadcasts every round), not a theory
//!    claim; trials report throughput-style extras and are non-failing;
//! 5. (summary only) Corollary 1's schedule formula beyond simulatable
//!    sizes.

use crate::agg::RunSummary;
use crate::fit::power_fit;
use crate::params::{Axis, Block, ParamSpace, When};
use crate::scenario::{GridPoint, Knowledge, LabError, Scenario, TrialFn, TrialRecord};
use crate::table::Table;
use ale_congest::{ExecConfig, FaultSpec, LatencyDist};
use ale_core::revocable::{run_revocable, run_revocable_async, RevocableParams};
use ale_graph::Topology;

const EPS: f64 = 1.0;
const XI: f64 = 0.2;
/// Estimate horizon for the mode-4 large-n ladder: the schedule through
/// `k = 4` (scaled) keeps a 20 000-node run in the seconds range while
/// still crossing one estimate doubling and the horizon drain.
const LADDER_MAX_K: u64 = 4;

/// The revocable-growth scenario.
pub struct Revocable;

/// Stabilization horizon: one doubling past the first estimate whose
/// `k^{1+ε}` exceeds `4n`.
fn horizon_for(n: usize, eps: f64) -> u64 {
    let k = (4.0 * n as f64).powf(1.0 / (1.0 + eps)).ceil() as u64;
    (2 * k.max(2)).next_power_of_two()
}

/// The first estimate `k*` with `k^{1+ε} > 4n` (the proof's stabilizing
/// rung).
fn k_star(n: usize, eps: f64) -> u64 {
    let mut k = 2u64;
    while (k as f64).powf(1.0 + eps) <= 4.0 * n as f64 {
        k *= 2;
    }
    k
}

/// Legacy short names for the Corollary 1 tiny graphs (`K2`, `P3`, …).
fn tiny_name(topo: &Topology) -> String {
    match topo {
        Topology::Complete { n } => format!("K{n}"),
        Topology::Path { n } => format!("P{n}"),
        Topology::Cycle { n } => format!("C{n}"),
        other => other.to_string(),
    }
}

impl Scenario for Revocable {
    fn name(&self) -> &'static str {
        "revocable"
    }

    fn description(&self) -> &'static str {
        "revocable LE cost growth: Theorem 3 cliques, Corollary 1 blind, scaled shape"
    }

    fn default_seeds(&self, quick: bool) -> u64 {
        if quick {
            4
        } else {
            10
        }
    }

    fn space(&self) -> ParamSpace {
        ParamSpace::new(vec![
            Block::new(
                "thm3",
                vec![Axis::ints("thm3-n", [8, 12, 16, 20])
                    .quick_ints([8, 16])
                    .help("clique sizes, known i(G), paper-exact r(k)")],
                |ctx| {
                    let n = ctx.int("thm3-n")? as usize;
                    let ig = (n as f64 / 2.0).ceil();
                    let ks = k_star(n, EPS);
                    let params =
                        RevocableParams::paper_with_ig(EPS, XI, ig).with_scales(1.0, 0.25, 1.0);
                    let formula = params.rounds_through(ks) as f64;
                    Ok(Some(
                        GridPoint::new(format!("thm3/n={n}"))
                            .on(Topology::Complete { n })
                            .knowing(Knowledge::Blind)
                            .with("ig", ig)
                            .with("k_star", ks as f64)
                            .with("max_k", horizon_for(n, EPS) as f64)
                            .with("formula", formula)
                            .with("mode", 1.0),
                    ))
                },
            )
            .when(When::SmallGrid),
            Block::new(
                "blind-tiny",
                vec![Axis::topologies(
                    "tiny",
                    [
                        Topology::Complete { n: 2 },
                        Topology::Complete { n: 3 },
                        Topology::Path { n: 3 },
                        Topology::Cycle { n: 4 },
                    ],
                )
                .help("Corollary 1 paper-exact blind graphs")],
                |ctx| {
                    let topo = ctx.topology("tiny")?;
                    Ok(Some(
                        GridPoint::new(format!("blind-tiny/{}", tiny_name(&topo)))
                            .on(topo)
                            .knowing(Knowledge::Blind)
                            .with("mode", 2.0)
                            .seeds(1),
                    ))
                },
            )
            .when(When::SmallGrid),
            Block::new(
                "scaled",
                vec![Axis::ints("scaled-n", [4, 8, 16])
                    .quick_ints([4, 8])
                    .help("blind shape-sweep clique sizes (r x0.002, f x0.1)")],
                |ctx| {
                    let n = ctx.int("scaled-n")? as usize;
                    Ok(Some(
                        GridPoint::new(format!("scaled/n={n}"))
                            .on(Topology::Complete { n })
                            .knowing(Knowledge::Blind)
                            .with("k_star", k_star(n, EPS) as f64)
                            .with("mode", 3.0)
                            .seeds(if ctx.quick { 2 } else { 3 }),
                    ))
                },
            )
            .when(When::SmallGrid),
            // Mode 6: the fault sweep — the same scaled blind protocol on
            // the event-driven asynchronous engine, with the adversary
            // dropping each send with probability `fault-rate` (and
            // duplicating with half of it) over `latency`-tick links.
            Block::new(
                "faults",
                vec![
                    Axis::floats("fault-rate", [0.0, 0.05])
                        .help("per-send drop probability in [0,1] (duplicates at rate/2)"),
                    Axis::ints("latency", [1, 3])
                        .quick_ints([1])
                        .help("max link latency in ticks (1 = synchronous schedule)"),
                ],
                |ctx| {
                    let rate = ctx.float("fault-rate")?;
                    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                        return Err(LabError::BadArgs(format!(
                            "--param fault-rate={rate}: probability must be in [0, 1]"
                        )));
                    }
                    let lat = ctx.int("latency")?;
                    if lat < 1 {
                        return Err(LabError::BadArgs(format!(
                            "--param latency={lat}: must be at least 1 tick"
                        )));
                    }
                    Ok(Some(
                        GridPoint::new(format!("faults/rate={rate}/lat={lat}"))
                            .on(Topology::Complete { n: 8 })
                            .knowing(Knowledge::Blind)
                            .with("mode", 6.0)
                            .seeds(if ctx.quick { 2 } else { 3 }),
                    ))
                },
            )
            .when(When::SmallGrid),
            // The fault sweep's synchronous baseline: one arena-engine
            // point with the same graph, params, and seeds, so a CI gate
            // can diff the zero-fault async summary rows against it.
            Block::new("faults-sync", vec![], |ctx| {
                Ok(Some(
                    GridPoint::new("faults/sync".to_string())
                        .on(Topology::Complete { n: 8 })
                        .knowing(Knowledge::Blind)
                        .with("mode", 7.0)
                        .seeds(if ctx.quick { 2 } else { 3 }),
                ))
            })
            .when(When::SmallGrid),
            // `--n` selects the mode-4 large-n engine ladder: the
            // revocable protocol at tens of thousands of nodes on sparse
            // topologies (complete graphs at those sizes would need 10⁸
            // edges). Seeds default to 1–2 per point — each trial is
            // thousands of full-network broadcast rounds.
            Block::new(
                "ladder",
                vec![Axis::topologies("topo", [])
                    .help("large-n engine-ladder topologies (from the size ladder)")],
                |ctx| {
                    let topo = ctx.topology("topo")?;
                    Ok(Some(
                        GridPoint::new(format!("ladder/{topo}"))
                            .on(topo)
                            .knowing(Knowledge::Blind)
                            .with("mode", 4.0)
                            .with("max_k", LADDER_MAX_K as f64)
                            .seeds(if ctx.quick { 1 } else { 2 }),
                    ))
                },
            )
            .when(When::SizeSweep),
        ])
        .with_ladder(
            "n",
            "topo",
            "torus / ring / expander (CCC at implicit-backend sizes) engine ladder at each size",
            super::large_n_topologies,
        )
    }

    fn bind(&self, point: &GridPoint) -> Result<TrialFn, LabError> {
        let view = point.view();
        let topo = view.topology()?;
        let mode = view.knob("mode").unwrap_or(1.0) as u64;
        let graph = topo.build(view.graph_seed(0))?;
        let n = graph.n();
        let params = match mode {
            1 => {
                let ig = view.require_knob("ig")?;
                RevocableParams::paper_with_ig(EPS, XI, ig).with_scales(1.0, 0.25, 1.0)
            }
            2 => RevocableParams::paper_blind(EPS, XI),
            // Mode 4 halves the iteration count of the mode-3 scales: a
            // ladder trial is n broadcasts per round for thousands of
            // rounds, and the object under test is the simulator.
            4 => RevocableParams::paper_blind(EPS, XI).with_scales(0.002, 0.05, 1.0),
            _ => RevocableParams::paper_blind(EPS, XI).with_scales(0.002, 0.1, 1.0),
        };
        let max_k = if mode == 4 {
            view.knob("max_k").map_or(LADDER_MAX_K, |k| k as u64)
        } else {
            horizon_for(n, EPS)
        };
        // Mode 6 runs on the event-driven asynchronous engine; the knobs
        // were range-validated by the block builder, so here they only
        // need translating into an `ExecConfig`.
        let exec = if mode == 6 {
            let rate = view.require_knob("fault-rate")?;
            let lat = view.require_knob("latency")? as u64;
            Some(ExecConfig {
                latency: if lat <= 1 {
                    LatencyDist::Unit
                } else {
                    LatencyDist::Uniform { min: 1, max: lat }
                },
                faults: FaultSpec {
                    drop: rate,
                    duplicate: rate / 2.0,
                    ..FaultSpec::default()
                },
            })
        } else {
            None
        };
        let point = point.clone();
        Ok(Box::new(move |seed| {
            let run = match &exec {
                Some(exec) => run_revocable_async(&graph, &params, seed, max_k, exec)?,
                None => run_revocable(&graph, &params, seed, max_k)?,
            };
            let mut r = TrialRecord::new("revocable", &point, seed);
            r.absorb_metrics(&run.outcome.metrics);
            r.leaders = run.outcome.leader_count() as u64;
            // Ladder trials demonstrate engine scale, not Theorem 3 (at
            // k ≪ n^{1/(1+ε)} a unique stable leader is not predicted),
            // and fault-sweep trials measure degradation off the model —
            // both are non-failing by construction. The faults/sync
            // baseline shares the rule so its rows stay comparable.
            r.ok = matches!(mode, 4 | 6 | 7) || run.outcome.leader_count() == 1;
            r.push_extra("stabilized", if run.stabilized { 1.0 } else { 0.0 });
            if let Some(rounds) = run.rounds_at_stability {
                r.push_extra("rounds_at_stability", rounds as f64);
            }
            if matches!(mode, 6 | 7) {
                // Delivery accounting: on the synchronous baseline these
                // are delivered == messages, dropped == duplicated == 0,
                // so the zero-fault async point's rows match it exactly.
                let m = &run.outcome.metrics;
                r.push_extra("delivered", m.delivered as f64);
                r.push_extra("dropped", m.dropped as f64);
                r.push_extra("duplicated", m.duplicated as f64);
            }
            if mode == 4 {
                r.push_extra("final_k", run.final_k as f64);
                let rounds = run.outcome.metrics.rounds.max(1);
                r.push_extra(
                    "msgs_per_round",
                    run.outcome.metrics.messages as f64 / rounds as f64,
                );
                let revocations: u64 = run.verdicts.iter().map(|v| v.revocations).sum();
                r.push_extra("revocations", revocations as f64);
            }
            Ok(r)
        }))
    }

    fn summarize(&self, run: &RunSummary) -> String {
        let mut out = format!("# E-T1c: revocable LE cost growth (eps={EPS}, xi={XI})\n\n");

        // Mode 1: Theorem 3 on cliques.
        out.push_str(
            "## Mode 1: Theorem 3 (known i(G)), cliques, r(k) paper-exact, f(k) x0.25\n\n",
        );
        let mut t1 = Table::new([
            "n",
            "i(G)",
            "max_k",
            "stabilized",
            "unique",
            "med rounds",
            "formula rounds",
            "measured/formula",
            "med msgs",
        ]);
        let mut time_pts = Vec::new();
        let mut ratio_pts = Vec::new();
        for p in run.points.iter().filter(|p| p.label.starts_with("thm3/")) {
            let formula = p.param("formula").unwrap_or(1.0);
            let stab = p
                .metric("stabilized")
                .map_or(0, |m| (m.mean() * m.count() as f64).round() as u64);
            let med_rounds = p.median("rounds_at_stability");
            t1.push_row([
                p.n.to_string(),
                format!("{:.0}", p.param("ig").unwrap_or(0.0)),
                format!("{:.0}", p.param("max_k").unwrap_or(0.0)),
                format!("{stab}/{}", p.trials),
                format!("{}/{}", p.ok, p.trials),
                format!("{med_rounds:.0}"),
                format!("{formula:.0}"),
                format!("{:.3}", med_rounds / formula),
                format!("{:.0}", p.median("messages")),
            ]);
            if med_rounds > 0.0 {
                time_pts.push((p.n as f64, med_rounds));
                ratio_pts.push(med_rounds / formula);
            }
        }
        out.push_str(&t1.to_markdown());
        if time_pts.len() >= 2 {
            let fit = power_fit(&time_pts);
            out.push_str(&format!(
                "rounds-to-stability raw exponent in n: {:.3} (r^2 {:.3}).\n\
                 Reproduction criterion: measured/formula is roughly constant across n\n\
                 (ratios sit well below 1 — what matters is that they do not drift with n);\n\
                 measured values: {:?}\n\n",
                fit.exponent,
                fit.r_squared,
                ratio_pts
                    .iter()
                    .map(|r| format!("{r:.3}"))
                    .collect::<Vec<_>>()
            ));
        }

        // Mode 2: paper-exact blind on tiny graphs.
        out.push_str("## Mode 2: Corollary 1 (blind), paper-exact, tiny graphs\n\n");
        let mut t2 = Table::new([
            "graph",
            "stabilized",
            "unique",
            "rounds",
            "congest rounds",
            "msgs",
        ]);
        for p in run
            .points
            .iter()
            .filter(|p| p.label.starts_with("blind-tiny/"))
        {
            t2.push_row([
                p.label.trim_start_matches("blind-tiny/").to_string(),
                (p.mean("stabilized") > 0.5).to_string(),
                (p.ok == p.trials).to_string(),
                format!("{:.0}", p.mean("rounds")),
                format!("{:.0}", p.mean("congest_rounds")),
                format!("{:.0}", p.mean("messages")),
            ]);
        }
        out.push_str(&t2.to_markdown());

        // Mode 3: scaled blind shape sweep.
        out.push_str("\n## Mode 3: blind, scaled (r x0.002, f x0.1) — growth shape in n\n\n");
        let mut t3 = Table::new(["n", "k*", "stabilized", "unique", "med rounds", "med msgs"]);
        let mut pts = Vec::new();
        for p in run.points.iter().filter(|p| p.label.starts_with("scaled/")) {
            let stab = p
                .metric("stabilized")
                .map_or(0, |m| (m.mean() * m.count() as f64).round() as u64);
            let mr = p.median("rounds");
            t3.push_row([
                p.n.to_string(),
                format!("{:.0}", p.param("k_star").unwrap_or(0.0)),
                format!("{stab}/{}", p.trials),
                format!("{}/{}", p.ok, p.trials),
                format!("{mr:.0}"),
                format!("{:.0}", p.median("messages")),
            ]);
            if mr > 0.0 {
                pts.push((p.n as f64, mr));
            }
        }
        out.push_str(&t3.to_markdown());
        if pts.len() >= 2 {
            let fit = power_fit(&pts);
            out.push_str(&format!(
                "rounds exponent in n (blind, scaled, across a k* jump): {:.3} (r^2 {:.3})\n",
                fit.exponent, fit.r_squared
            ));
        }

        // Mode 6/7: fault sweep on the asynchronous engine + sync baseline.
        let faults: Vec<_> = run
            .points
            .iter()
            .filter(|p| p.label.starts_with("faults/"))
            .collect();
        if !faults.is_empty() {
            out.push_str(
                "\n## Mode 6: fault sweep (async engine; drop=rate, dup=rate/2) vs sync baseline\n\n",
            );
            let mut tf = Table::new([
                "point",
                "stabilized",
                "med rounds",
                "med msgs",
                "delivered",
                "dropped",
                "duplicated",
            ]);
            for p in &faults {
                let stab = p
                    .metric("stabilized")
                    .map_or(0, |m| (m.mean() * m.count() as f64).round() as u64);
                tf.push_row([
                    p.label.trim_start_matches("faults/").to_string(),
                    format!("{stab}/{}", p.trials),
                    format!("{:.0}", p.median("rounds")),
                    format!("{:.0}", p.median("messages")),
                    format!("{:.0}", p.mean("delivered")),
                    format!("{:.0}", p.mean("dropped")),
                    format!("{:.0}", p.mean("duplicated")),
                ]);
            }
            out.push_str(&tf.to_markdown());
            out.push_str(
                "The rate=0/lat=1 rows must equal the sync rows on every schedule and\n\
                 delivery metric (rounds, messages, delivered/dropped/duplicated —\n\
                 bit counts are seed-dependent and the two points draw different\n\
                 positional seeds; byte-identity at equal seeds is pinned by\n\
                 crates/congest/tests/async_equivalence.rs). Nonzero rates measure\n\
                 how far the paper's round/bit bounds degrade off the synchronous\n\
                 fault-free model.\n",
            );
        }

        // Mode 4: large-n engine ladder (present only under --n).
        let ladder: Vec<_> = run
            .points
            .iter()
            .filter(|p| p.label.starts_with("ladder/"))
            .collect();
        if !ladder.is_empty() {
            out.push_str(
                "\n## Mode 4: large-n engine ladder (blind, r x0.002, f x0.05, horizon k=4)\n\n",
            );
            let mut t = Table::new([
                "family",
                "n",
                "final k",
                "rounds",
                "msgs/round",
                "total msgs",
                "revocations",
            ]);
            for p in &ladder {
                t.push_row([
                    p.family.clone(),
                    p.n.to_string(),
                    format!("{:.0}", p.mean("final_k")),
                    format!("{:.0}", p.mean("rounds")),
                    format!("{:.0}", p.mean("msgs_per_round")),
                    format!("{:.3e}", p.mean("messages")),
                    format!("{:.0}", p.mean("revocations")),
                ]);
            }
            out.push_str(&t.to_markdown());
            out.push_str(
                "Engine-scale demonstration on the arena CONGEST simulator: every node\n\
                 broadcasts every round (messages/round = 2m). Not a Theorem 3 claim —\n\
                 the horizon freezes estimates at k = 4, far below stabilization scale.\n",
            );
        }

        // Mode 5: formula ladder, no simulation.
        out.push_str("\n### Corollary 1 formula ladder (paper-exact blind, rounds through k*)\n\n");
        let mut t4 = Table::new(["n", "k*", "formula rounds"]);
        let paper = RevocableParams::paper_blind(EPS, XI);
        let mut formula_pts = Vec::new();
        for n in [4usize, 16, 64, 256, 1024] {
            let ks = k_star(n, EPS);
            let rounds = paper.rounds_through(ks);
            t4.push_row([n.to_string(), ks.to_string(), rounds.to_string()]);
            formula_pts.push((n as f64, rounds as f64));
        }
        out.push_str(&t4.to_markdown());
        let fit = power_fit(&formula_pts);
        out.push_str(&format!(
            "formula exponent in n: {:.2} — Corollary 1 predicts Õ(n^{{(2(2+eps)+1)/(1+eps)}})\n\
             ≈ n^{:.1} at eps={EPS} for the simulator-rounds ladder.\n",
            fit.exponent,
            (2.0 * (2.0 + EPS) + 1.0) / (1.0 + EPS)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridConfig;

    #[test]
    fn ladder_helpers_match_the_proof_schedule() {
        assert_eq!(k_star(12, 1.0), 8); // first k with k^2 > 48
        assert!(horizon_for(12, 1.0) >= 2 * 8);
        assert!(horizon_for(12, 1.0).is_power_of_two());
    }

    #[test]
    fn ns_override_builds_the_large_engine_ladder() {
        let grid = Revocable
            .grid(&GridConfig {
                ns: vec![20_000],
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        // torus:141x141, cycle:20000, rregular:20000x4.
        assert_eq!(grid.len(), 3);
        for p in &grid {
            assert!(p.label.starts_with("ladder/"), "{}", p.label);
            assert!(p.n >= 19_000, "ladder point too small: {}", p.n);
            assert_eq!(p.param("mode"), Some(4.0));
            assert_eq!(p.param("max_k"), Some(LADDER_MAX_K as f64));
            assert_eq!(p.seeds, Some(1));
        }
    }

    #[test]
    fn grid_has_all_three_modes_with_seed_overrides() {
        let grid = Revocable
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        assert!(grid.iter().any(|p| p.label.starts_with("thm3/")));
        assert!(grid
            .iter()
            .filter(|p| p.label.starts_with("blind-tiny/"))
            .all(|p| p.seeds == Some(1)));
        assert!(grid
            .iter()
            .filter(|p| p.label.starts_with("scaled/"))
            .all(|p| p.seeds == Some(2)));
    }

    #[test]
    fn fault_blocks_declare_the_async_sweep_and_its_sync_baseline() {
        let grid = Revocable
            .grid(&GridConfig {
                quick: true,
                ..GridConfig::default()
            })
            .unwrap();
        // Quick: rates {0, 0.05} x latency {1} plus the sync baseline.
        let rates: Vec<_> = grid
            .iter()
            .filter(|p| p.label.starts_with("faults/rate="))
            .collect();
        assert_eq!(rates.len(), 2);
        for p in &rates {
            assert_eq!(p.param("mode"), Some(6.0));
            assert_eq!(p.seeds, Some(2));
            assert!(p.label.ends_with("/lat=1"), "{}", p.label);
        }
        let sync: Vec<_> = grid.iter().filter(|p| p.label == "faults/sync").collect();
        assert_eq!(sync.len(), 1);
        assert_eq!(sync[0].param("mode"), Some(7.0));
        assert_eq!(sync[0].seeds, rates[0].seeds);
    }

    #[test]
    fn fault_builders_reject_out_of_range_knobs() {
        let err = Revocable
            .grid(&GridConfig {
                quick: true,
                params: vec![("fault-rate".into(), vec!["1.5".into()])],
                ..GridConfig::default()
            })
            .unwrap_err();
        assert!(matches!(err, LabError::BadArgs(_)), "{err:?}");
        let err = Revocable
            .grid(&GridConfig {
                quick: true,
                params: vec![("latency".into(), vec!["0".into()])],
                ..GridConfig::default()
            })
            .unwrap_err();
        assert!(matches!(err, LabError::BadArgs(_)), "{err:?}");
    }
}
