//! The result store: run manifests, a keyed durable journal, JSONL trial
//! logs, and CSV exports.
//!
//! Layout of one run directory:
//!
//! ```text
//! <out>/
//!   manifest.json   — scenario, master seed, grid + positions, config,
//!                     git stamp, `complete` marker (written LAST)
//!   trials.db       — append-only keyed journal (crate::db::AofDb): one
//!                     entry per trial, durable the moment the trial
//!                     finishes; plus the summary rows after completion
//!   trials.jsonl    — one TrialRecord per line, (point, seed-index) order
//!   trials.csv      — the same records, flat columns (extras unioned)
//!   summary.csv     — per-(point, metric) streaming statistics
//! ```
//!
//! `trials.db` is the crash-safe source of truth while a run executes:
//! every record is [`crate::db::Db::put`] under its [`TrialKey`] —
//! `(scenario, space-hash, grid-position, seed-index)` — as soon as a
//! worker produces it, so a killed sweep can be completed by `ale-lab run
//! --resume` instead of restarted. The derived views (`trials.jsonl`,
//! `trials.csv`, `summary.csv`) are written at [`RunWriter::finish`] via
//! temp-file + rename, the journal is compacted to its sorted canonical
//! form, and only then is the manifest rewritten with `complete: true` —
//! so an interrupted run is always distinguishable from a finished one.
//! Because record order is deterministic (see [`crate::engine`]), two
//! runs with the same spec — or a killed-and-resumed run — produce
//! byte-identical stores; the property the determinism and resume tests
//! pin.

use crate::agg::RunSummary;
use crate::db::{AofDb, Db as _};
use crate::json::{parse, ToJson, Value};
use crate::scenario::{LabError, TrialRecord};
use crate::table::Table;
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::path::Path;

/// Manifest schema version written by this tree. Version 2 added the
/// durable-store fields: `positions`, `counts`, `config`, `space_hash`,
/// `complete`, `git_describe` (and changed `git` to the [`git_stamp`]
/// form).
pub const STORE_VERSION: u32 = 2;

/// The raw invocation a run was launched with — enough to re-expand the
/// exact same grid for `run --resume`. Unlike the resolved `space` lines
/// (which record the *output* of expansion, including per-combination
/// linked-axis values that cannot be replayed as overrides), this is the
/// *input*: the `--n`/`--topo`/`--param`/`--algo` overrides as given.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunConfig {
    /// `--n` sizes.
    pub ns: Vec<u64>,
    /// `--topo` overrides in [`ale_graph::Topology::spec`] form (the
    /// round-trippable `family:args` string).
    pub topos: Vec<String>,
    /// Raw `--param key=v1,v2` overrides (minus engine pseudo-axes).
    pub params: Vec<(String, Vec<String>)>,
    /// `--algo` filter, by algorithm name.
    pub algos: Vec<String>,
}

impl RunConfig {
    fn to_json(&self) -> Value {
        Value::obj([
            (
                "ns".to_string(),
                Value::Arr(self.ns.iter().map(|&n| Value::UInt(n)).collect()),
            ),
            (
                "topos".to_string(),
                Value::Arr(self.topos.iter().cloned().map(Value::Str).collect()),
            ),
            (
                "params".to_string(),
                Value::Arr(
                    self.params
                        .iter()
                        .map(|(k, vs)| {
                            Value::Arr(vec![
                                Value::Str(k.clone()),
                                Value::Arr(vs.iter().cloned().map(Value::Str).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "algos".to_string(),
                Value::Arr(self.algos.iter().cloned().map(Value::Str).collect()),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<RunConfig, LabError> {
        let strings = |key: &str| -> Result<Vec<String>, LabError> {
            match v.get(key) {
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(|i| {
                        i.as_str().map(str::to_string).ok_or_else(|| {
                            LabError::BadRecord(format!("config '{key}' holds a non-string"))
                        })
                    })
                    .collect(),
                None => Ok(Vec::new()),
                Some(_) => Err(LabError::BadRecord(format!(
                    "config '{key}' is not an array"
                ))),
            }
        };
        let ns = match v.get("ns") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_u64()
                        .ok_or_else(|| LabError::BadRecord("config 'ns' holds a non-u64".into()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err(LabError::BadRecord("config 'ns' is not an array".into())),
        };
        let params = match v.get("params") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|pair| {
                    let bad = || {
                        LabError::BadRecord("config 'params' entry is not [key, [values…]]".into())
                    };
                    let Value::Arr(kv) = pair else {
                        return Err(bad());
                    };
                    let [k, vs] = kv.as_slice() else {
                        return Err(bad());
                    };
                    let key = k.as_str().ok_or_else(bad)?.to_string();
                    let Value::Arr(vs) = vs else {
                        return Err(bad());
                    };
                    let values = vs
                        .iter()
                        .map(|s| s.as_str().map(str::to_string).ok_or_else(bad))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok((key, values))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => {
                return Err(LabError::BadRecord(
                    "config 'params' is not an array".into(),
                ))
            }
        };
        Ok(RunConfig {
            ns,
            topos: strings("topos")?,
            params,
            algos: strings("algos")?,
        })
    }
}

/// Everything needed to interpret (and re-run) a stored run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Scenario name.
    pub scenario: String,
    /// Master seed.
    pub master_seed: u64,
    /// Global seeds per grid point.
    pub seeds: u64,
    /// Worker threads (informational — results don't depend on it).
    pub workers: usize,
    /// Grid-point labels in execution order.
    pub grid: Vec<String>,
    /// Full-grid position of each grid point, parallel to `grid` — the
    /// seed-stream discriminator and the position component of every
    /// [`TrialKey`]. Empty in pre-v2 manifests (then position == index,
    /// valid for unfiltered `i/k` shards).
    pub positions: Vec<u64>,
    /// Expected trial count per grid point, parallel to `grid` (points
    /// may override the global `seeds`). Empty in pre-v2 manifests.
    pub counts: Vec<u64>,
    /// [`git_stamp`] of the producing tree: exact short sha, `-dirty`
    /// when the work tree had uncommitted changes — the same stamp bench
    /// JSON carries, so all artifacts of one run agree.
    pub git: String,
    /// `git describe` of the producing tree (tag-relative; extra
    /// provenance, kept alongside the stamp).
    pub git_describe: String,
    /// Whether the quick grid was used.
    pub quick: bool,
    /// Grid shard this run executed, as `"i/k"` (`"0/1"` = the whole
    /// grid). Shards of one logical sweep share the scenario, master
    /// seed, seed count, quick flag, and resolved space — a merge tool
    /// should verify those before unioning JSONL logs — while `grid`
    /// lists only the labels this shard selected and `workers` may
    /// differ per machine.
    pub shard: String,
    /// The resolved parameter space, one `key=v1,v2,…` line per axis as
    /// reported by [`crate::params::ParamSpace::expand`] — the record of
    /// which sweep this run actually executed once `--quick`/`--param`
    /// overrides were applied. Empty in pre-space manifests.
    pub space: Vec<String>,
    /// [`space_hash`] over (scenario, master seed, seeds, quick, space) —
    /// the sweep identity every [`TrialKey`] embeds. 0 in pre-v2
    /// manifests.
    pub space_hash: u64,
    /// The raw invocation (see [`RunConfig`]); `None` in pre-v2
    /// manifests and in merged stores whose inputs disagreed.
    pub config: Option<RunConfig>,
    /// `false` from [`RunWriter::create`] until [`RunWriter::finish`]
    /// rewrites the manifest — the completion marker that makes an
    /// interrupted run distinguishable from a finished one. Pre-v2
    /// manifests (which had no marker) parse as `true`.
    pub complete: bool,
    /// Manifest schema version.
    pub version: u32,
}

impl RunManifest {
    /// Builds a (complete) manifest for the current tree. The
    /// durable-store extras (`positions`, `counts`, `config`) start
    /// empty/none; callers that have them set the fields directly.
    #[allow(clippy::too_many_arguments)]
    pub fn for_run(
        scenario: &str,
        master_seed: u64,
        seeds: u64,
        workers: usize,
        grid: Vec<String>,
        quick: bool,
        shard: &str,
        space: Vec<String>,
    ) -> Self {
        let hash = space_hash(scenario, master_seed, seeds, quick, &space);
        RunManifest {
            scenario: scenario.to_string(),
            master_seed,
            seeds,
            workers,
            grid,
            positions: Vec::new(),
            counts: Vec::new(),
            git: git_stamp(),
            git_describe: git_describe(),
            quick,
            shard: shard.to_string(),
            space,
            space_hash: hash,
            config: None,
            complete: true,
            version: STORE_VERSION,
        }
    }

    /// The full-grid position of each grid point: the stored `positions`
    /// when present, else (pre-v2) the grid index — correct for
    /// unfiltered whole runs, and the best available reconstruction for
    /// old shards.
    pub fn effective_positions(&self) -> Vec<u64> {
        if self.positions.len() == self.grid.len() {
            self.positions.clone()
        } else {
            (0..self.grid.len() as u64).collect()
        }
    }

    /// The expected trial count of each grid point: the stored `counts`
    /// when present, else the global `seeds` (pre-v2 manifests could not
    /// record per-point overrides).
    pub fn effective_counts(&self) -> Vec<u64> {
        if self.counts.len() == self.grid.len() {
            self.counts.clone()
        } else {
            vec![self.seeds; self.grid.len()]
        }
    }

    /// Parses a manifest back from JSON.
    ///
    /// # Errors
    ///
    /// [`LabError::BadRecord`] on missing/ill-typed fields.
    pub fn from_json(v: &Value) -> Result<RunManifest, LabError> {
        let need = |k: &str| -> Result<&Value, LabError> {
            v.get(k)
                .ok_or_else(|| LabError::BadRecord(format!("manifest missing '{k}'")))
        };
        let string_arr = |k: &str, items: &[Value]| -> Result<Vec<String>, LabError> {
            items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| LabError::BadRecord(format!("non-string entry in '{k}'")))
                })
                .collect()
        };
        let u64_arr = |k: &str| -> Result<Vec<u64>, LabError> {
            match v.get(k) {
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(|i| {
                        i.as_u64()
                            .ok_or_else(|| LabError::BadRecord(format!("non-u64 entry in '{k}'")))
                    })
                    .collect(),
                // Absent in pre-v2 manifests.
                None => Ok(Vec::new()),
                Some(_) => Err(LabError::BadRecord(format!("'{k}' is not an array"))),
            }
        };
        let grid = match need("grid")? {
            Value::Arr(items) => string_arr("grid", items)?,
            _ => return Err(LabError::BadRecord("'grid' is not an array".into())),
        };
        Ok(RunManifest {
            scenario: need("scenario")?
                .as_str()
                .ok_or_else(|| LabError::BadRecord("'scenario' not a string".into()))?
                .to_string(),
            master_seed: need("master_seed")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'master_seed' not a u64".into()))?,
            seeds: need("seeds")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'seeds' not a u64".into()))?,
            workers: need("workers")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'workers' not a u64".into()))?
                as usize,
            grid,
            positions: u64_arr("positions")?,
            counts: u64_arr("counts")?,
            git: need("git")?
                .as_str()
                .ok_or_else(|| LabError::BadRecord("'git' not a string".into()))?
                .to_string(),
            // Absent in pre-v2 manifests (whose 'git' WAS the describe).
            git_describe: v
                .get("git_describe")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            quick: need("quick")?
                .as_bool()
                .ok_or_else(|| LabError::BadRecord("'quick' not a bool".into()))?,
            // Absent in pre-shard manifests: default to the whole grid.
            shard: v
                .get("shard")
                .and_then(Value::as_str)
                .unwrap_or("0/1")
                .to_string(),
            // Absent in pre-space manifests: default to unrecorded.
            space: match v.get("space") {
                Some(Value::Arr(items)) => string_arr("space", items)?,
                None => Vec::new(),
                Some(_) => return Err(LabError::BadRecord("'space' is not an array".into())),
            },
            space_hash: v.get("space_hash").and_then(Value::as_u64).unwrap_or(0),
            config: match v.get("config") {
                Some(Value::Null) | None => None,
                Some(c) => Some(RunConfig::from_json(c)?),
            },
            // Pre-v2 manifests had no completion marker; they were only
            // ever produced by runs that reached the end.
            complete: v.get("complete").and_then(Value::as_bool).unwrap_or(true),
            version: need("version")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'version' not a u64".into()))?
                as u32,
        })
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Value {
        Value::obj([
            ("scenario".to_string(), Value::Str(self.scenario.clone())),
            ("master_seed".to_string(), Value::UInt(self.master_seed)),
            ("seeds".to_string(), Value::UInt(self.seeds)),
            ("workers".to_string(), Value::UInt(self.workers as u64)),
            (
                "grid".to_string(),
                Value::Arr(self.grid.iter().cloned().map(Value::Str).collect()),
            ),
            (
                "positions".to_string(),
                Value::Arr(self.positions.iter().map(|&p| Value::UInt(p)).collect()),
            ),
            (
                "counts".to_string(),
                Value::Arr(self.counts.iter().map(|&c| Value::UInt(c)).collect()),
            ),
            ("git".to_string(), Value::Str(self.git.clone())),
            (
                "git_describe".to_string(),
                Value::Str(self.git_describe.clone()),
            ),
            ("quick".to_string(), Value::Bool(self.quick)),
            ("shard".to_string(), Value::Str(self.shard.clone())),
            (
                "space".to_string(),
                Value::Arr(self.space.iter().cloned().map(Value::Str).collect()),
            ),
            ("space_hash".to_string(), Value::UInt(self.space_hash)),
            (
                "config".to_string(),
                self.config.as_ref().map_or(Value::Null, RunConfig::to_json),
            ),
            ("complete".to_string(), Value::Bool(self.complete)),
            ("version".to_string(), Value::UInt(self.version as u64)),
        ])
    }
}

/// FNV-1a over the sweep identity: scenario, master seed, global seed
/// count, quick flag, and the resolved space lines. Every [`TrialKey`]
/// embeds this hash, so records from a drifted space (edited scenario
/// code, different overrides) can never be mistaken for resumable state.
pub fn space_hash(
    scenario: &str,
    master_seed: u64,
    seeds: u64,
    quick: bool,
    space: &[String],
) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // Field separator: a byte no field can contain alone.
        h ^= 0x1f;
        h = h.wrapping_mul(PRIME);
    };
    eat(scenario.as_bytes());
    eat(&master_seed.to_le_bytes());
    eat(&seeds.to_le_bytes());
    eat(&[u8::from(quick)]);
    for line in space {
        eat(line.as_bytes());
    }
    h
}

/// The key every trial record is stored under: `(scenario, space-hash,
/// full-grid position, seed index)`, encoded fixed-width so the journal's
/// lexicographic key order equals `(position, seed-index)` numeric order.
///
/// ```text
/// t/<scenario>/<space-hash:016x>/<position:08x>/<seed-index:08x>
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrialKey {
    /// Scenario name.
    pub scenario: String,
    /// [`space_hash`] of the sweep.
    pub space_hash: u64,
    /// The grid point's position in the FULL grid (the seed-stream
    /// discriminator).
    pub position: u64,
    /// Seed index within the point.
    pub seed_index: u64,
}

impl TrialKey {
    /// Renders the key bytes.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "t/{}/{:016x}/{:08x}/{:08x}",
            self.scenario, self.space_hash, self.position, self.seed_index
        )
        .into_bytes()
    }

    /// Parses key bytes back.
    ///
    /// # Errors
    ///
    /// [`LabError::BadRecord`] on anything that is not an encoded trial
    /// key.
    pub fn decode(key: &[u8]) -> Result<TrialKey, LabError> {
        let bad = || {
            LabError::BadRecord(format!(
                "'{}' is not a trial key (t/<scenario>/<hash>/<pos>/<seed-index>)",
                String::from_utf8_lossy(key)
            ))
        };
        let text = std::str::from_utf8(key).map_err(|_| bad())?;
        let rest = text.strip_prefix("t/").ok_or_else(bad)?;
        // Scenario names are free-form; the three fixed-width tail
        // segments are ours, so split from the right.
        let mut parts = rest.rsplitn(4, '/');
        let seed_index =
            u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
        let position = u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
        let space_hash =
            u64::from_str_radix(parts.next().ok_or_else(bad)?, 16).map_err(|_| bad())?;
        let scenario = parts.next().ok_or_else(bad)?.to_string();
        if scenario.is_empty() {
            return Err(bad());
        }
        Ok(TrialKey {
            scenario,
            space_hash,
            position,
            seed_index,
        })
    }
}

/// The key a summary row is stored under after a run completes:
/// `s/<scenario>/<space-hash:016x>/<position:08x>/<metric>`.
pub fn summary_key(scenario: &str, space_hash: u64, position: u64, metric: &str) -> Vec<u8> {
    format!("s/{scenario}/{space_hash:016x}/{position:08x}/{metric}").into_bytes()
}

/// `git describe --always --dirty`, or "unknown" outside a repo.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The exact short sha of `HEAD`, suffixed `-dirty` when the work tree
/// has uncommitted changes (`git status --porcelain` non-empty);
/// "unknown" outside a repo.
///
/// Unlike [`git_describe`], the stamp never moves when tags do, and the
/// dirtiness test sees untracked files — `describe --dirty` only reports
/// modifications to tracked content, so a bench run with new uncommitted
/// sources would previously stamp itself as clean. Run manifests and
/// bench JSON both stamp with this, so artifacts of one run agree.
pub fn git_stamp() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(sha) = git(&["rev-parse", "--short", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
    else {
        return "unknown".to_string();
    };
    let dirty = git(&["status", "--porcelain"]).is_some_and(|s| !s.trim().is_empty());
    if dirty {
        format!("{sha}-dirty")
    } else {
        sha
    }
}

fn io_err(path: &Path, e: std::io::Error) -> LabError {
    LabError::Io(format!("{}: {e}", path.display()))
}

/// Writes `bytes` to `path` via a temp file in the same directory plus an
/// atomic rename, so readers never observe a torn file and a crash
/// mid-write leaves any previous version intact.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), LabError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_else(|| "file".to_string());
    let tmp = path.with_file_name(format!("{name}.tmp"));
    fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

fn jsonl_bytes(records: &[TrialRecord]) -> Vec<u8> {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().render());
        out.push('\n');
    }
    out.into_bytes()
}

/// Assigns every record its [`TrialKey`] from the manifest's grid:
/// position from `positions` (parallel to `grid`), seed index by
/// occurrence order within the point.
fn keyed_records<'a>(
    manifest: &RunManifest,
    records: &'a [TrialRecord],
) -> Result<Vec<(TrialKey, &'a TrialRecord)>, LabError> {
    let positions = manifest.effective_positions();
    let pos_of: HashMap<&str, u64> = manifest
        .grid
        .iter()
        .zip(&positions)
        .map(|(label, &pos)| (label.as_str(), pos))
        .collect();
    let mut next_seed: HashMap<&str, u64> = HashMap::new();
    records
        .iter()
        .map(|r| {
            let &position = pos_of.get(r.point.as_str()).ok_or_else(|| {
                LabError::BadRecord(format!(
                    "record for '{}', which the manifest grid does not list",
                    r.point
                ))
            })?;
            let seed_index = next_seed.entry(r.point.as_str()).or_insert(0);
            let key = TrialKey {
                scenario: manifest.scenario.clone(),
                space_hash: manifest.space_hash,
                position,
                seed_index: *seed_index,
            };
            *seed_index += 1;
            Ok((key, r))
        })
        .collect()
}

/// Upserts every trial and summary row into `db` and compacts it to the
/// canonical sorted form. Idempotent: values are pure functions of the
/// records, so re-putting over a journal that already holds them (the
/// [`RunWriter::finish`] path) changes nothing but the layout.
fn populate_db(
    db: &mut AofDb,
    manifest: &RunManifest,
    records: &[TrialRecord],
    summary: &RunSummary,
) -> Result<(), LabError> {
    for (key, r) in keyed_records(manifest, records)? {
        db.put(&key.encode(), r.to_json().render().as_bytes())?;
    }
    let positions = manifest.effective_positions();
    let pos_of: HashMap<&str, u64> = manifest
        .grid
        .iter()
        .zip(&positions)
        .map(|(label, &pos)| (label.as_str(), pos))
        .collect();
    for (label, metric, row) in summary.summary_rows() {
        let &position = pos_of.get(label.as_str()).ok_or_else(|| {
            LabError::BadRecord(format!(
                "summary row for '{label}', which the manifest grid does not list"
            ))
        })?;
        db.put(
            &summary_key(&manifest.scenario, manifest.space_hash, position, &metric),
            row.render().as_bytes(),
        )?;
    }
    db.compact()
}

/// Writes a complete run directory (creating it if needed): the derived
/// views atomically, the keyed journal in compacted form, and the
/// manifest last.
///
/// # Errors
///
/// Filesystem failures surface as [`LabError::Io`].
pub fn write_run(
    dir: &Path,
    manifest: &RunManifest,
    records: &[TrialRecord],
    summary: &RunSummary,
) -> Result<(), LabError> {
    let _span = ale_telemetry::Span::begin("store-write").attr("records", records.len());
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    write_atomic(&dir.join("trials.jsonl"), &jsonl_bytes(records))?;
    write_atomic(&dir.join("trials.csv"), records_csv(records).as_bytes())?;
    write_atomic(&dir.join("summary.csv"), summary.summary_csv().as_bytes())?;
    let mut db = AofDb::create(&dir.join("trials.db"))?;
    populate_db(&mut db, manifest, records, summary)?;
    write_atomic(
        &dir.join("manifest.json"),
        (manifest.to_json().render_pretty() + "\n").as_bytes(),
    )
}

/// What [`RunWriter::resume`] hands back: the reopened writer plus the
/// `(key, value)` trial entries that survived the crash in the journal.
pub type ResumedWriter = (RunWriter, Vec<(Vec<u8>, Vec<u8>)>);

/// Streams one run to disk as it executes, crash-safely:
/// [`RunWriter::create`] writes the manifest with `complete: false` and
/// opens the `trials.db` journal; [`RunWriter::put`] makes each record
/// durable under its [`TrialKey`] the moment a worker produces it (thread
/// safe — the engine calls it from the fleet); [`RunWriter::finish`]
/// derives `trials.jsonl`/`trials.csv`/`summary.csv` via temp-file +
/// rename, compacts the journal, and only then rewrites the manifest
/// with `complete: true`. A kill at any point leaves either a resumable
/// directory (`complete: false`, journal prefix intact) or a finished
/// one — never a silently torn store. The finished directory is
/// byte-identical to a post-hoc [`write_run`] of the same records.
pub struct RunWriter {
    dir: std::path::PathBuf,
    manifest: RunManifest,
    db: std::sync::Mutex<AofDb>,
}

impl RunWriter {
    fn marked_incomplete(dir: &Path, manifest: &RunManifest) -> Result<RunManifest, LabError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut m = manifest.clone();
        m.complete = false;
        write_atomic(
            &dir.join("manifest.json"),
            (m.to_json().render_pretty() + "\n").as_bytes(),
        )?;
        Ok(m)
    }

    /// Creates the run directory, writes the manifest (marked
    /// incomplete), and opens a fresh journal.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn create(dir: &Path, manifest: &RunManifest) -> Result<RunWriter, LabError> {
        let manifest = Self::marked_incomplete(dir, manifest)?;
        let db = AofDb::create(&dir.join("trials.db"))?;
        Ok(RunWriter {
            dir: dir.to_path_buf(),
            manifest,
            db: std::sync::Mutex::new(db),
        })
    }

    /// Reopens an interrupted run directory for completion: re-marks the
    /// manifest incomplete, recovers the journal's valid prefix (a torn
    /// tail from the crash is dropped), and returns the surviving
    /// `(key, value)` trial entries alongside the writer.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn resume(dir: &Path, manifest: &RunManifest) -> Result<ResumedWriter, LabError> {
        let manifest = Self::marked_incomplete(dir, manifest)?;
        let db = AofDb::open(&dir.join("trials.db"))?;
        let entries = db.iter_prefix(b"t/");
        Ok((
            RunWriter {
                dir: dir.to_path_buf(),
                manifest,
                db: std::sync::Mutex::new(db),
            },
            entries,
        ))
    }

    /// Makes one record durable in the journal. Safe to call from worker
    /// threads; entry order in the journal is scheduling-dependent, but
    /// [`RunWriter::finish`] compacts to sorted canonical form.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn put(&self, key: &TrialKey, record: &TrialRecord) -> Result<(), LabError> {
        let mut db = self
            .db
            .lock()
            .map_err(|_| LabError::Io("trials.db: journal lock poisoned".into()))?;
        db.put(&key.encode(), record.to_json().render().as_bytes())
    }

    /// Derives the CSV/JSONL views (temp-file + rename), stores the
    /// summary rows, compacts the journal, and rewrites the manifest
    /// with `complete: true` — in that order, so the completion marker
    /// is the last thing to land. `records` must be the full record set
    /// in task order.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn finish(self, records: &[TrialRecord], summary: &RunSummary) -> Result<(), LabError> {
        let _span = ale_telemetry::Span::begin("store-write").attr("records", records.len());
        let RunWriter {
            dir,
            mut manifest,
            db,
        } = self;
        let mut db = db
            .into_inner()
            .map_err(|_| LabError::Io("trials.db: journal lock poisoned".into()))?;
        write_atomic(&dir.join("trials.jsonl"), &jsonl_bytes(records))?;
        write_atomic(&dir.join("trials.csv"), records_csv(records).as_bytes())?;
        write_atomic(&dir.join("summary.csv"), summary.summary_csv().as_bytes())?;
        populate_db(&mut db, &manifest, records, summary)?;
        manifest.complete = true;
        write_atomic(
            &dir.join("manifest.json"),
            (manifest.to_json().render_pretty() + "\n").as_bytes(),
        )
    }
}

/// Appends records to an existing `trials.jsonl` (ad-hoc log surgery;
/// the engine itself persists through [`RunWriter`]).
///
/// # Errors
///
/// Filesystem failures surface as [`LabError::Io`].
pub fn append_jsonl(path: &Path, records: &[TrialRecord]) -> Result<(), LabError> {
    use std::io::Write as _;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    for r in records {
        writeln!(file, "{}", r.to_json().render()).map_err(|e| io_err(path, e))?;
    }
    Ok(())
}

/// Loads every record from a JSONL trial log, erroring loudly on any
/// malformed line — including a mid-line-truncated final record. Use
/// [`load_jsonl_recover`] when a truncated tail should be survivable.
///
/// # Errors
///
/// IO failures and malformed lines (with their line number).
pub fn load_jsonl(path: &Path) -> Result<Vec<TrialRecord>, LabError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            parse(line).map_err(|e| LabError::BadRecord(format!("line {}: {e}", lineno + 1)))?;
        let record = TrialRecord::from_json(&value)
            .map_err(|e| LabError::BadRecord(format!("line {}: {e}", lineno + 1)))?;
        records.push(record);
    }
    Ok(records)
}

/// Loads a JSONL trial log, tolerating a truncated tail: returns the
/// valid record prefix plus a flag reporting whether the file ended
/// mid-record (an unparseable final line, or a final line the writer
/// never terminated with `\n`). A malformed line *followed by further
/// records* is still a hard error — that is corruption, not a crash
/// tail. This is the `--resume`/`merge` read path; plain [`load_jsonl`]
/// keeps erroring loudly.
///
/// # Errors
///
/// IO failures and malformed non-final lines.
pub fn load_jsonl_recover(path: &Path) -> Result<(Vec<TrialRecord>, bool), LabError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse(line)
            .map_err(LabError::BadRecord)
            .and_then(|v| TrialRecord::from_json(&v));
        match parsed {
            Ok(record) => records.push(record),
            Err(e) => {
                let is_tail = lines[lineno + 1..].iter().all(|l| l.trim().is_empty());
                if is_tail {
                    return Ok((records, true));
                }
                return Err(LabError::BadRecord(format!(
                    "line {}: {e} (followed by further records — corruption, not a torn tail)",
                    lineno + 1
                )));
            }
        }
    }
    // Every line parsed; a missing final newline still means the writer
    // was cut (exactly at the record boundary), so flag it.
    let truncated = !text.is_empty() && !text.ends_with('\n');
    Ok((records, truncated))
}

/// Loads a run manifest.
///
/// # Errors
///
/// IO failures and malformed JSON.
pub fn load_manifest(path: &Path) -> Result<RunManifest, LabError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let value = parse(&text).map_err(LabError::BadRecord)?;
    RunManifest::from_json(&value)
}

/// One summary row served from the durable store (the `summaries` read
/// path `check` consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSummaryRow {
    /// Grid-point label.
    pub point: String,
    /// Metric name.
    pub metric: String,
    /// Streaming mean.
    pub mean: f64,
    /// Samples seen.
    pub count: u64,
}

/// Serves a run directory's summary rows from the keyed store
/// (`trials.db` `s/` prefix). Returns `Ok(None)` when the directory has
/// no journal (pre-v2 store) — callers fall back to `summary.csv` — and
/// errors loudly on an incomplete or torn store instead of serving
/// partial statistics.
///
/// # Errors
///
/// [`LabError::BadRecord`] on an incomplete run (manifest `complete:
/// false`), a truncated journal, or malformed rows; IO failures as
/// [`LabError::Io`].
pub fn load_summary_rows(dir: &Path) -> Result<Option<Vec<StoredSummaryRow>>, LabError> {
    let manifest_path = dir.join("manifest.json");
    if manifest_path.exists() {
        let manifest = load_manifest(&manifest_path)?;
        if !manifest.complete {
            let expected: u64 = manifest.effective_counts().iter().sum();
            let missing = missing_trials(dir, &manifest).unwrap_or(expected);
            return Err(LabError::BadRecord(format!(
                "{}: run is incomplete (crashed or still running; {missing} of {expected} \
                 (point, seed-index) trials missing) — finish it with \
                 `ale-lab run --resume {}` first",
                dir.display(),
                dir.display()
            )));
        }
    }
    let db_path = dir.join("trials.db");
    if !db_path.exists() {
        return Ok(None);
    }
    let db = AofDb::open_read(&db_path)?;
    if db.truncated() {
        return Err(LabError::BadRecord(format!(
            "{}: trials.db is truncated mid-entry — resume the run before reading summaries",
            dir.display()
        )));
    }
    let mut rows = Vec::new();
    for (key, value) in db.iter_prefix(b"s/") {
        let text = String::from_utf8(value).map_err(|_| {
            LabError::BadRecord(format!(
                "{}: summary row '{}' is not UTF-8",
                dir.display(),
                String::from_utf8_lossy(&key)
            ))
        })?;
        let v = parse(&text).map_err(LabError::BadRecord)?;
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                LabError::BadRecord(format!(
                    "{}: summary row '{}' lacks '{name}'",
                    dir.display(),
                    String::from_utf8_lossy(&key)
                ))
            })
        };
        rows.push(StoredSummaryRow {
            point: field("point")?
                .as_str()
                .ok_or_else(|| LabError::BadRecord("summary row 'point' not a string".into()))?
                .to_string(),
            metric: field("metric")?
                .as_str()
                .ok_or_else(|| LabError::BadRecord("summary row 'metric' not a string".into()))?
                .to_string(),
            mean: field("mean")?
                .as_f64()
                .ok_or_else(|| LabError::BadRecord("summary row 'mean' not a number".into()))?,
            count: field("count")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("summary row 'count' not a u64".into()))?,
        });
    }
    if rows.is_empty() {
        return Ok(None);
    }
    Ok(Some(rows))
}

/// Counts the `(point, seed-index)` trials a run directory still lacks:
/// the manifest's expected totals (Σ per-point counts) minus the
/// distinct valid trial keys already journaled in `trials.db` for this
/// sweep. A missing or empty journal leaves everything missing. This is
/// the number `check`'s `--resume` hint and the serve/tail routes both
/// report, so the two views of "what remains" always agree.
///
/// # Errors
///
/// Filesystem failures reading the journal as [`LabError::Io`].
pub fn missing_trials(dir: &Path, manifest: &RunManifest) -> Result<u64, LabError> {
    let positions = manifest.effective_positions();
    let counts = manifest.effective_counts();
    let expected: u64 = counts.iter().sum();
    let db_path = dir.join("trials.db");
    if !db_path.exists() {
        return Ok(expected);
    }
    let db = AofDb::open_read(&db_path)?;
    let mut present = 0u64;
    // iter_prefix walks the recovered index, so duplicates are already
    // collapsed and a torn tail is already excluded.
    for (key, _) in db.iter_prefix(b"t/") {
        let Ok(k) = TrialKey::decode(&key) else {
            continue;
        };
        if k.scenario != manifest.scenario || k.space_hash != manifest.space_hash {
            continue;
        }
        let in_range = positions
            .iter()
            .position(|&p| p == k.position)
            .is_some_and(|i| k.seed_index < counts[i]);
        if in_range {
            present += 1;
        }
    }
    Ok(expected.saturating_sub(present))
}

/// Renders records as flat CSV; extra metrics become columns (the union
/// of keys across all records, in first-seen order per sorted set).
pub fn records_csv(records: &[TrialRecord]) -> String {
    let extra_keys: BTreeSet<&str> = records
        .iter()
        .flat_map(|r| r.extra.iter().map(|(k, _)| k.as_str()))
        .collect();
    let mut headers = vec![
        "scenario".to_string(),
        "point".to_string(),
        "family".to_string(),
        "algorithm".to_string(),
        "n".to_string(),
        "seed".to_string(),
        "rounds".to_string(),
        "congest_rounds".to_string(),
        "messages".to_string(),
        "bits".to_string(),
        "leaders".to_string(),
        "ok".to_string(),
    ];
    headers.extend(extra_keys.iter().map(|k| k.to_string()));
    let mut table = Table::new(headers);
    for r in records {
        let mut row = vec![
            r.scenario.clone(),
            r.point.clone(),
            r.family.clone(),
            r.algorithm.clone(),
            r.n.to_string(),
            r.seed.to_string(),
            r.rounds.to_string(),
            r.congest_rounds.to_string(),
            r.messages.to_string(),
            r.bits.to_string(),
            r.leaders.to_string(),
            r.ok.to_string(),
        ];
        for key in &extra_keys {
            row.push(
                r.extra
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(String::new(), |(_, v)| format!("{v}")),
            );
        }
        table.push_row(row);
    }
    table.to_csv()
}

/// Converts a JSONL trial log to CSV (the `ale-lab export` subcommand).
///
/// # Errors
///
/// Propagates load failures.
pub fn csv_from_jsonl(path: &Path) -> Result<String, LabError> {
    Ok(records_csv(&load_jsonl(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridPoint;
    use ale_graph::Topology;

    fn sample_records() -> Vec<TrialRecord> {
        let p0 = GridPoint::new("cell-a").on(Topology::Cycle { n: 8 });
        let p1 = GridPoint::new("cell-b").on(Topology::Complete { n: 4 });
        let mut a = TrialRecord::new("demo", &p0, 11);
        a.messages = 40;
        a.ok = true;
        a.push_extra("territory", 12.5);
        let mut b = TrialRecord::new("demo", &p1, 12);
        b.messages = 7;
        b.push_extra("ratio", 0.5);
        vec![a, b]
    }

    fn sample_summary(records: &[TrialRecord]) -> RunSummary {
        let grid = vec![
            GridPoint::new("cell-a").on(Topology::Cycle { n: 8 }),
            GridPoint::new("cell-b").on(Topology::Complete { n: 4 }),
        ];
        let mut summary = RunSummary::new("demo", &grid, 1, 1, 1);
        summary.record(0, &records[0]);
        summary.record(1, &records[1]);
        summary
    }

    #[test]
    fn jsonl_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join(format!("ale-lab-store-{}", std::process::id()));
        let records = sample_records();
        let summary = sample_summary(&records);
        let manifest = RunManifest::for_run(
            "demo",
            1,
            1,
            1,
            vec!["cell-a".into(), "cell-b".into()],
            false,
            "2/4",
            vec!["topo=cycle(n=8),complete(n=4)".into()],
        );
        write_run(&dir, &manifest, &records, &summary).unwrap();

        let loaded = load_jsonl(&dir.join("trials.jsonl")).unwrap();
        assert_eq!(loaded, records);
        let m = load_manifest(&dir.join("manifest.json")).unwrap();
        assert_eq!(m, manifest);
        assert!(m.complete);
        assert_eq!(m.version, STORE_VERSION);

        let csv = csv_from_jsonl(&dir.join("trials.jsonl")).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        // Extra columns are the union, sorted.
        assert!(header.ends_with("ok,ratio,territory"));
        assert_eq!(lines.count(), 2);

        // The journal serves both record and summary keys.
        let db = AofDb::open_read(&dir.join("trials.db")).unwrap();
        assert!(!db.truncated());
        assert_eq!(db.iter_prefix(b"t/").len(), 2);
        assert!(!db.iter_prefix(b"s/").is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_writer_matches_write_run_byte_for_byte() {
        let base = std::env::temp_dir().join(format!("ale-lab-stream-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let records = sample_records();
        let summary = sample_summary(&records);
        let manifest = RunManifest::for_run(
            "demo",
            1,
            1,
            1,
            vec!["cell-a".into(), "cell-b".into()],
            false,
            "0/1",
            Vec::new(),
        );
        let batch_dir = base.join("batch");
        write_run(&batch_dir, &manifest, &records, &summary).unwrap();
        let stream_dir = base.join("stream");
        let writer = RunWriter::create(&stream_dir, &manifest).unwrap();
        // Mid-run, the manifest says incomplete.
        let midway = load_manifest(&stream_dir.join("manifest.json")).unwrap();
        assert!(!midway.complete);
        for (key, r) in keyed_records(&manifest, &records).unwrap() {
            writer.put(&key, r).unwrap();
        }
        writer.finish(&records, &summary).unwrap();
        for file in [
            "manifest.json",
            "trials.jsonl",
            "trials.csv",
            "summary.csv",
            "trials.db",
        ] {
            let batch = std::fs::read(batch_dir.join(file)).unwrap();
            let stream = std::fs::read(stream_dir.join(file)).unwrap();
            assert_eq!(batch, stream, "{file} diverged");
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn trial_keys_roundtrip_and_sort_numerically() {
        let key = TrialKey {
            scenario: "ablation-cautious".into(),
            space_hash: 0xdead_beef_0123_4567,
            position: 300,
            seed_index: 7,
        };
        assert_eq!(TrialKey::decode(&key.encode()).unwrap(), key);
        // Fixed-width hex: byte order == numeric order.
        let lo = TrialKey {
            position: 9,
            ..key.clone()
        };
        let hi = TrialKey {
            position: 10,
            ..key.clone()
        };
        assert!(lo.encode() < hi.encode());
        for bad in [&b"t/x/zz/00/00"[..], b"s/x/0/0/0", b"t/", b"nope"] {
            assert!(TrialKey::decode(bad).is_err(), "{:?}", bad);
        }
    }

    #[test]
    fn space_hash_is_sensitive_to_every_component() {
        let space = vec!["n=8,16".to_string()];
        let base = space_hash("s", 1, 4, false, &space);
        assert_eq!(base, space_hash("s", 1, 4, false, &space));
        assert_ne!(base, space_hash("t", 1, 4, false, &space));
        assert_ne!(base, space_hash("s", 2, 4, false, &space));
        assert_ne!(base, space_hash("s", 1, 5, false, &space));
        assert_ne!(base, space_hash("s", 1, 4, true, &space));
        assert_ne!(base, space_hash("s", 1, 4, false, &["n=8,32".to_string()]));
    }

    #[test]
    fn git_stamp_is_a_sha_with_optional_dirty_suffix() {
        let stamp = git_stamp();
        assert!(!stamp.is_empty());
        if stamp != "unknown" {
            let sha = stamp.strip_suffix("-dirty").unwrap_or(&stamp);
            assert!(sha.len() >= 4, "short sha expected, got '{stamp}'");
            assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "'{stamp}'");
        }
    }

    #[test]
    fn manifests_stamp_git_like_bench_json_does() {
        // The provenance-drift fix: manifest.git is the exact stamp (the
        // same function bench JSON uses), with describe kept alongside.
        let manifest =
            RunManifest::for_run("demo", 1, 1, 1, vec!["a".into()], false, "0/1", Vec::new());
        assert_eq!(manifest.git, git_stamp());
        assert_eq!(manifest.git_describe, git_describe());
    }

    #[test]
    fn pre_v2_manifests_parse_with_defaults() {
        let manifest =
            RunManifest::for_run("demo", 1, 2, 3, vec!["a".into()], true, "0/1", Vec::new());
        let mut v = manifest.to_json();
        // Simulate a manifest written before the shard/space/durable-store
        // fields existed.
        if let Value::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| {
                ![
                    "shard",
                    "space",
                    "space_hash",
                    "positions",
                    "counts",
                    "config",
                    "complete",
                    "git_describe",
                ]
                .contains(&k.as_str())
            });
        }
        let back = RunManifest::from_json(&v).unwrap();
        assert_eq!(back.shard, "0/1");
        assert_eq!(back.space, Vec::<String>::new());
        assert_eq!(back.scenario, "demo");
        // Pre-v2 stores had no completion marker: they parse as complete,
        // with index-positions and global-seeds counts.
        assert!(back.complete);
        assert_eq!(back.space_hash, 0);
        assert_eq!(back.config, None);
        assert_eq!(back.effective_positions(), vec![0]);
        assert_eq!(back.effective_counts(), vec![2]);
    }

    #[test]
    fn manifest_roundtrips_with_durable_store_fields() {
        let mut manifest = RunManifest::for_run(
            "demo",
            1,
            2,
            3,
            vec!["a".into(), "b".into()],
            true,
            "1/2",
            vec!["n=8,16".into()],
        );
        manifest.positions = vec![1, 3];
        manifest.counts = vec![2, 5];
        manifest.complete = false;
        manifest.config = Some(RunConfig {
            ns: vec![8, 16],
            topos: vec!["cycle:8".into()],
            params: vec![("gamma".into(), vec!["0.1".into(), "0.3".into()])],
            algos: vec!["this-work".into()],
        });
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.effective_positions(), vec![1, 3]);
        assert_eq!(back.effective_counts(), vec![2, 5]);
    }

    #[test]
    fn append_grows_the_log() {
        let path =
            std::env::temp_dir().join(format!("ale-lab-append-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        append_jsonl(&path, &records[..1]).unwrap();
        append_jsonl(&path, &records[1..]).unwrap();
        assert_eq!(load_jsonl(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let path = std::env::temp_dir().join(format!("ale-lab-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"scenario\": \"x\"}\n").unwrap();
        let err = load_jsonl(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_returns_the_valid_prefix_of_a_torn_log() {
        let path = std::env::temp_dir().join(format!("ale-lab-torn-{}.jsonl", std::process::id()));
        let records = sample_records();
        let text = String::from_utf8(jsonl_bytes(&records)).unwrap();

        // Intact log: full records, no truncation.
        std::fs::write(&path, &text).unwrap();
        let (got, truncated) = load_jsonl_recover(&path).unwrap();
        assert_eq!(got, records);
        assert!(!truncated);
        // Plain load still succeeds on intact logs…
        assert!(load_jsonl(&path).is_ok());

        // Mid-line truncation: the prefix survives, the flag is set, and
        // the strict loader errors loudly.
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();
        let (got, truncated) = load_jsonl_recover(&path).unwrap();
        assert_eq!(got, records[..1]);
        assert!(truncated);
        assert!(load_jsonl(&path).is_err());

        // Truncation exactly at the record boundary (missing final
        // newline): the record is kept, the flag still reports a cut.
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();
        let (got, truncated) = load_jsonl_recover(&path).unwrap();
        assert_eq!(got, records);
        assert!(truncated);

        // A malformed line with records after it is corruption, not a
        // torn tail: hard error even in recovery mode.
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(&path, format!("{}broken\n{}\n", "", lines[1])).unwrap();
        assert!(load_jsonl_recover(&path).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_rows_are_served_from_the_store() {
        let dir = std::env::temp_dir().join(format!("ale-lab-sumrows-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let records = sample_records();
        let summary = sample_summary(&records);
        let manifest = RunManifest::for_run(
            "demo",
            1,
            1,
            1,
            vec!["cell-a".into(), "cell-b".into()],
            false,
            "0/1",
            Vec::new(),
        );
        write_run(&dir, &manifest, &records, &summary).unwrap();
        let rows = load_summary_rows(&dir).unwrap().expect("rows stored");
        let msgs: Vec<&StoredSummaryRow> = rows.iter().filter(|r| r.metric == "messages").collect();
        assert_eq!(msgs.len(), 2);
        let a = msgs.iter().find(|r| r.point == "cell-a").unwrap();
        assert_eq!(a.mean, 40.0);
        assert_eq!(a.count, 1);

        // The journaled trials all count as present.
        assert_eq!(missing_trials(&dir, &manifest).unwrap(), 0);

        // An incomplete manifest blocks the read path loudly, naming the
        // missing-trial count next to the --resume hint.
        let mut m = manifest.clone();
        m.complete = false;
        write_atomic(
            &dir.join("manifest.json"),
            (m.to_json().render_pretty() + "\n").as_bytes(),
        )
        .unwrap();
        let err = load_summary_rows(&dir).unwrap_err().to_string();
        assert!(err.contains("incomplete"), "{err}");
        assert!(err.contains("--resume"), "{err}");
        assert!(err.contains("0 of 2 (point, seed-index) trials"), "{err}");

        // Raising a point's expected count reopens a gap, and a missing
        // journal leaves everything missing.
        let mut wider = manifest.clone();
        wider.positions = vec![0, 1];
        wider.counts = vec![3, 1];
        assert_eq!(missing_trials(&dir, &wider).unwrap(), 2);
        let empty = std::env::temp_dir().join(format!("ale-lab-nodb-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        assert_eq!(missing_trials(&empty, &manifest).unwrap(), 2);
        std::fs::remove_dir_all(&empty).ok();

        // No journal → None (callers fall back to summary.csv).
        std::fs::remove_file(dir.join("trials.db")).unwrap();
        write_atomic(
            &dir.join("manifest.json"),
            (manifest.to_json().render_pretty() + "\n").as_bytes(),
        )
        .unwrap();
        assert_eq!(load_summary_rows(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
