//! The result store: run manifests, JSONL trial logs, and CSV exports.
//!
//! Layout of one run directory:
//!
//! ```text
//! <out>/
//!   manifest.json   — scenario, master seed, grid labels, git describe
//!   trials.jsonl    — one TrialRecord per line, (point, seed-index) order
//!   trials.csv      — the same records, flat columns (extras unioned)
//!   summary.csv     — per-(point, metric) streaming statistics
//! ```
//!
//! JSONL is the source of truth: append-friendly, diff-friendly, and
//! parseable without this crate. `trials.csv`/`summary.csv` are derived
//! conveniences for plotting. Because record order is deterministic (see
//! [`crate::engine`]), two runs with the same spec produce byte-identical
//! stores — the property the determinism tests pin.

use crate::agg::RunSummary;
use crate::json::{parse, ToJson, Value};
use crate::scenario::{LabError, TrialRecord};
use crate::table::Table;
use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Everything needed to interpret (and re-run) a stored run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Scenario name.
    pub scenario: String,
    /// Master seed.
    pub master_seed: u64,
    /// Global seeds per grid point.
    pub seeds: u64,
    /// Worker threads (informational — results don't depend on it).
    pub workers: usize,
    /// Grid-point labels in execution order.
    pub grid: Vec<String>,
    /// `git describe` of the producing tree (or "unknown").
    pub git: String,
    /// Whether the quick grid was used.
    pub quick: bool,
    /// Grid shard this run executed, as `"i/k"` (`"0/1"` = the whole
    /// grid). Shards of one logical sweep share the scenario, master
    /// seed, seed count, quick flag, and resolved space — a merge tool
    /// should verify those before unioning JSONL logs — while `grid`
    /// lists only the labels this shard selected and `workers` may
    /// differ per machine.
    pub shard: String,
    /// The resolved parameter space, one `key=v1,v2,…` line per axis as
    /// reported by [`crate::params::ParamSpace::expand`] — the record of
    /// which sweep this run actually executed once `--quick`/`--param`
    /// overrides were applied. Empty in pre-space manifests.
    pub space: Vec<String>,
    /// Manifest schema version.
    pub version: u32,
}

impl RunManifest {
    /// Builds a manifest for the current tree.
    #[allow(clippy::too_many_arguments)]
    pub fn for_run(
        scenario: &str,
        master_seed: u64,
        seeds: u64,
        workers: usize,
        grid: Vec<String>,
        quick: bool,
        shard: &str,
        space: Vec<String>,
    ) -> Self {
        RunManifest {
            scenario: scenario.to_string(),
            master_seed,
            seeds,
            workers,
            grid,
            git: git_describe(),
            quick,
            shard: shard.to_string(),
            space,
            version: 1,
        }
    }

    /// Parses a manifest back from JSON.
    ///
    /// # Errors
    ///
    /// [`LabError::BadRecord`] on missing/ill-typed fields.
    pub fn from_json(v: &Value) -> Result<RunManifest, LabError> {
        let need = |k: &str| -> Result<&Value, LabError> {
            v.get(k)
                .ok_or_else(|| LabError::BadRecord(format!("manifest missing '{k}'")))
        };
        let grid = match need("grid")? {
            Value::Arr(items) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| LabError::BadRecord("non-string grid label".into()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(LabError::BadRecord("'grid' is not an array".into())),
        };
        Ok(RunManifest {
            scenario: need("scenario")?
                .as_str()
                .ok_or_else(|| LabError::BadRecord("'scenario' not a string".into()))?
                .to_string(),
            master_seed: need("master_seed")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'master_seed' not a u64".into()))?,
            seeds: need("seeds")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'seeds' not a u64".into()))?,
            workers: need("workers")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'workers' not a u64".into()))?
                as usize,
            grid,
            git: need("git")?
                .as_str()
                .ok_or_else(|| LabError::BadRecord("'git' not a string".into()))?
                .to_string(),
            quick: need("quick")?
                .as_bool()
                .ok_or_else(|| LabError::BadRecord("'quick' not a bool".into()))?,
            // Absent in pre-shard manifests: default to the whole grid.
            shard: v
                .get("shard")
                .and_then(Value::as_str)
                .unwrap_or("0/1")
                .to_string(),
            // Absent in pre-space manifests: default to unrecorded.
            space: match v.get("space") {
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(|i| {
                        i.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| LabError::BadRecord("non-string space line".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
                Some(_) => return Err(LabError::BadRecord("'space' is not an array".into())),
            },
            version: need("version")?
                .as_u64()
                .ok_or_else(|| LabError::BadRecord("'version' not a u64".into()))?
                as u32,
        })
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Value {
        Value::obj([
            ("scenario".to_string(), Value::Str(self.scenario.clone())),
            ("master_seed".to_string(), Value::UInt(self.master_seed)),
            ("seeds".to_string(), Value::UInt(self.seeds)),
            ("workers".to_string(), Value::UInt(self.workers as u64)),
            (
                "grid".to_string(),
                Value::Arr(self.grid.iter().cloned().map(Value::Str).collect()),
            ),
            ("git".to_string(), Value::Str(self.git.clone())),
            ("quick".to_string(), Value::Bool(self.quick)),
            ("shard".to_string(), Value::Str(self.shard.clone())),
            (
                "space".to_string(),
                Value::Arr(self.space.iter().cloned().map(Value::Str).collect()),
            ),
            ("version".to_string(), Value::UInt(self.version as u64)),
        ])
    }
}

/// `git describe --always --dirty`, or "unknown" outside a repo.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The exact short sha of `HEAD`, suffixed `-dirty` when the work tree
/// has uncommitted changes (`git status --porcelain` non-empty);
/// "unknown" outside a repo.
///
/// Unlike [`git_describe`], the stamp never moves when tags do, and the
/// dirtiness test sees untracked files — `describe --dirty` only reports
/// modifications to tracked content, so a bench run with new uncommitted
/// sources would previously stamp itself as clean.
pub fn git_stamp() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(sha) = git(&["rev-parse", "--short", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
    else {
        return "unknown".to_string();
    };
    let dirty = git(&["status", "--porcelain"]).is_some_and(|s| !s.trim().is_empty());
    if dirty {
        format!("{sha}-dirty")
    } else {
        sha
    }
}

fn io_err(path: &Path, e: std::io::Error) -> LabError {
    LabError::Io(format!("{}: {e}", path.display()))
}

/// Writes a complete run directory (creating it if needed).
///
/// # Errors
///
/// Filesystem failures surface as [`LabError::Io`].
pub fn write_run(
    dir: &Path,
    manifest: &RunManifest,
    records: &[TrialRecord],
    summary: &RunSummary,
) -> Result<(), LabError> {
    let _span = ale_telemetry::Span::begin("store-write").attr("records", records.len());
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;

    let manifest_path = dir.join("manifest.json");
    fs::write(&manifest_path, manifest.to_json().render_pretty() + "\n")
        .map_err(|e| io_err(&manifest_path, e))?;

    let jsonl_path = dir.join("trials.jsonl");
    let mut jsonl = fs::File::create(&jsonl_path).map_err(|e| io_err(&jsonl_path, e))?;
    for r in records {
        writeln!(jsonl, "{}", r.to_json().render()).map_err(|e| io_err(&jsonl_path, e))?;
    }

    let csv_path = dir.join("trials.csv");
    fs::write(&csv_path, records_csv(records)).map_err(|e| io_err(&csv_path, e))?;

    let summary_path = dir.join("summary.csv");
    fs::write(&summary_path, summary.summary_csv()).map_err(|e| io_err(&summary_path, e))?;
    Ok(())
}

/// Streams one run to disk as it executes: [`RunWriter::create`] writes
/// `manifest.json` and opens `trials.jsonl`, [`RunWriter::append`] logs
/// each merged record as it arrives, and [`RunWriter::finish`] derives
/// `trials.csv`/`summary.csv` once the streaming aggregates are
/// complete. The engine uses this for `--out` runs so a large-n ladder's
/// records reach the store per trial instead of being buffered until the
/// run ends; the resulting directory is byte-identical to a post-hoc
/// [`write_run`] of the same records.
pub struct RunWriter {
    dir: std::path::PathBuf,
    jsonl_path: std::path::PathBuf,
    jsonl: std::io::BufWriter<fs::File>,
    records: usize,
}

impl RunWriter {
    /// Creates the run directory, writes the manifest, and opens the
    /// trial log.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn create(dir: &Path, manifest: &RunManifest) -> Result<RunWriter, LabError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let manifest_path = dir.join("manifest.json");
        fs::write(&manifest_path, manifest.to_json().render_pretty() + "\n")
            .map_err(|e| io_err(&manifest_path, e))?;
        let jsonl_path = dir.join("trials.jsonl");
        let jsonl = fs::File::create(&jsonl_path).map_err(|e| io_err(&jsonl_path, e))?;
        Ok(RunWriter {
            dir: dir.to_path_buf(),
            jsonl_path,
            jsonl: std::io::BufWriter::new(jsonl),
            records: 0,
        })
    }

    /// Appends one record to `trials.jsonl`.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn append(&mut self, record: &TrialRecord) -> Result<(), LabError> {
        writeln!(self.jsonl, "{}", record.to_json().render())
            .map_err(|e| io_err(&self.jsonl_path, e))?;
        self.records += 1;
        Ok(())
    }

    /// Flushes the trial log and derives the CSV views. `records` must be
    /// the records passed to [`RunWriter::append`], in order — the flat
    /// CSV's header is the union of extra-metric keys across the whole
    /// run, so it cannot stream.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`LabError::Io`].
    pub fn finish(mut self, records: &[TrialRecord], summary: &RunSummary) -> Result<(), LabError> {
        let _span = ale_telemetry::Span::begin("store-write").attr("records", self.records);
        self.jsonl
            .flush()
            .map_err(|e| io_err(&self.jsonl_path, e))?;
        let csv_path = self.dir.join("trials.csv");
        fs::write(&csv_path, records_csv(records)).map_err(|e| io_err(&csv_path, e))?;
        let summary_path = self.dir.join("summary.csv");
        fs::write(&summary_path, summary.summary_csv()).map_err(|e| io_err(&summary_path, e))?;
        Ok(())
    }
}

/// Appends records to an existing `trials.jsonl` (resumable sharded runs).
///
/// # Errors
///
/// Filesystem failures surface as [`LabError::Io`].
pub fn append_jsonl(path: &Path, records: &[TrialRecord]) -> Result<(), LabError> {
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    for r in records {
        writeln!(file, "{}", r.to_json().render()).map_err(|e| io_err(path, e))?;
    }
    Ok(())
}

/// Loads every record from a JSONL trial log.
///
/// # Errors
///
/// IO failures and malformed lines (with their line number).
pub fn load_jsonl(path: &Path) -> Result<Vec<TrialRecord>, LabError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            parse(line).map_err(|e| LabError::BadRecord(format!("line {}: {e}", lineno + 1)))?;
        let record = TrialRecord::from_json(&value)
            .map_err(|e| LabError::BadRecord(format!("line {}: {e}", lineno + 1)))?;
        records.push(record);
    }
    Ok(records)
}

/// Loads a run manifest.
///
/// # Errors
///
/// IO failures and malformed JSON.
pub fn load_manifest(path: &Path) -> Result<RunManifest, LabError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let value = parse(&text).map_err(LabError::BadRecord)?;
    RunManifest::from_json(&value)
}

/// Renders records as flat CSV; extra metrics become columns (the union
/// of keys across all records, in first-seen order per sorted set).
pub fn records_csv(records: &[TrialRecord]) -> String {
    let extra_keys: BTreeSet<&str> = records
        .iter()
        .flat_map(|r| r.extra.iter().map(|(k, _)| k.as_str()))
        .collect();
    let mut headers = vec![
        "scenario".to_string(),
        "point".to_string(),
        "family".to_string(),
        "algorithm".to_string(),
        "n".to_string(),
        "seed".to_string(),
        "rounds".to_string(),
        "congest_rounds".to_string(),
        "messages".to_string(),
        "bits".to_string(),
        "leaders".to_string(),
        "ok".to_string(),
    ];
    headers.extend(extra_keys.iter().map(|k| k.to_string()));
    let mut table = Table::new(headers);
    for r in records {
        let mut row = vec![
            r.scenario.clone(),
            r.point.clone(),
            r.family.clone(),
            r.algorithm.clone(),
            r.n.to_string(),
            r.seed.to_string(),
            r.rounds.to_string(),
            r.congest_rounds.to_string(),
            r.messages.to_string(),
            r.bits.to_string(),
            r.leaders.to_string(),
            r.ok.to_string(),
        ];
        for key in &extra_keys {
            row.push(
                r.extra
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(String::new(), |(_, v)| format!("{v}")),
            );
        }
        table.push_row(row);
    }
    table.to_csv()
}

/// Converts a JSONL trial log to CSV (the `ale-lab export` subcommand).
///
/// # Errors
///
/// Propagates load failures.
pub fn csv_from_jsonl(path: &Path) -> Result<String, LabError> {
    Ok(records_csv(&load_jsonl(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridPoint;
    use ale_graph::Topology;

    fn sample_records() -> Vec<TrialRecord> {
        let p0 = GridPoint::new("cell-a").on(Topology::Cycle { n: 8 });
        let p1 = GridPoint::new("cell-b").on(Topology::Complete { n: 4 });
        let mut a = TrialRecord::new("demo", &p0, 11);
        a.messages = 40;
        a.ok = true;
        a.push_extra("territory", 12.5);
        let mut b = TrialRecord::new("demo", &p1, 12);
        b.messages = 7;
        b.push_extra("ratio", 0.5);
        vec![a, b]
    }

    #[test]
    fn jsonl_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join(format!("ale-lab-store-{}", std::process::id()));
        let records = sample_records();
        let grid = vec![
            GridPoint::new("cell-a").on(Topology::Cycle { n: 8 }),
            GridPoint::new("cell-b").on(Topology::Complete { n: 4 }),
        ];
        let mut summary = RunSummary::new("demo", &grid, 1, 1, 1);
        summary.record(0, &records[0]);
        summary.record(1, &records[1]);
        let manifest = RunManifest::for_run(
            "demo",
            1,
            1,
            1,
            vec!["cell-a".into(), "cell-b".into()],
            false,
            "2/4",
            vec!["topo=cycle(n=8),complete(n=4)".into()],
        );
        write_run(&dir, &manifest, &records, &summary).unwrap();

        let loaded = load_jsonl(&dir.join("trials.jsonl")).unwrap();
        assert_eq!(loaded, records);
        let m = load_manifest(&dir.join("manifest.json")).unwrap();
        assert_eq!(m, manifest);

        let csv = csv_from_jsonl(&dir.join("trials.jsonl")).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        // Extra columns are the union, sorted.
        assert!(header.ends_with("ok,ratio,territory"));
        assert_eq!(lines.count(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_writer_matches_write_run_byte_for_byte() {
        let base = std::env::temp_dir().join(format!("ale-lab-stream-{}", std::process::id()));
        let records = sample_records();
        let grid = vec![
            GridPoint::new("cell-a").on(Topology::Cycle { n: 8 }),
            GridPoint::new("cell-b").on(Topology::Complete { n: 4 }),
        ];
        let mut summary = RunSummary::new("demo", &grid, 1, 1, 1);
        summary.record(0, &records[0]);
        summary.record(1, &records[1]);
        let manifest = RunManifest::for_run(
            "demo",
            1,
            1,
            1,
            vec!["cell-a".into(), "cell-b".into()],
            false,
            "0/1",
            Vec::new(),
        );
        let batch_dir = base.join("batch");
        write_run(&batch_dir, &manifest, &records, &summary).unwrap();
        let stream_dir = base.join("stream");
        let mut writer = RunWriter::create(&stream_dir, &manifest).unwrap();
        for r in &records {
            writer.append(r).unwrap();
        }
        writer.finish(&records, &summary).unwrap();
        for file in ["manifest.json", "trials.jsonl", "trials.csv", "summary.csv"] {
            let batch = std::fs::read(batch_dir.join(file)).unwrap();
            let stream = std::fs::read(stream_dir.join(file)).unwrap();
            assert_eq!(batch, stream, "{file} diverged");
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn git_stamp_is_a_sha_with_optional_dirty_suffix() {
        let stamp = git_stamp();
        assert!(!stamp.is_empty());
        if stamp != "unknown" {
            let sha = stamp.strip_suffix("-dirty").unwrap_or(&stamp);
            assert!(sha.len() >= 4, "short sha expected, got '{stamp}'");
            assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "'{stamp}'");
        }
    }

    #[test]
    fn pre_shard_manifests_parse_with_default_shard() {
        let manifest =
            RunManifest::for_run("demo", 1, 2, 3, vec!["a".into()], true, "0/1", Vec::new());
        let mut v = manifest.to_json();
        // Simulate a manifest written before the shard and space fields
        // existed.
        if let Value::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "shard" && k != "space");
        }
        let back = RunManifest::from_json(&v).unwrap();
        assert_eq!(back.shard, "0/1");
        assert_eq!(back.space, Vec::<String>::new());
        assert_eq!(back.scenario, "demo");
    }

    #[test]
    fn append_grows_the_log() {
        let path =
            std::env::temp_dir().join(format!("ale-lab-append-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        append_jsonl(&path, &records[..1]).unwrap();
        append_jsonl(&path, &records[1..]).unwrap();
        assert_eq!(load_jsonl(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let path = std::env::temp_dir().join(format!("ale-lab-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"scenario\": \"x\"}\n").unwrap();
        let err = load_jsonl(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        std::fs::remove_file(&path).ok();
    }
}
