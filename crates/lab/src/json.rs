//! Hand-rolled JSON: a tiny value model, renderer, and parser.
//!
//! The workspace builds offline (no `serde`), and the lab's persistence
//! needs are narrow: flat experiment records with string/number/bool
//! fields and one nested object of numeric extras. This module covers
//! exactly that — UTF-8 strings with standard escapes, `u64`/`i64`/`f64`
//! numbers, arrays, and objects with preserved key order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (kept exact — seeds are full-width `u64`s).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with preserved key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (String, Value)>>(pairs: I) -> Value {
        Value::Obj(pairs.into_iter().collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, accepting any numeric representation that is
    /// an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Num(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(f) => render_f64(out, *f),
            Value::Str(s) => render_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn render_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            // Keep integral floats readable and round-trippable.
            let _ = write!(out, "{:.1}", f);
        } else {
            // 17 significant digits round-trip every f64.
            let _ = write!(out, "{}", format_args!("{f:?}"));
        }
    } else {
        // JSON has no NaN/Inf; persist as null (metric() treats it as absent).
        out.push_str("null");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Value`] (the lab's stand-in
/// for `serde::Serialize`).
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not produced by our renderer;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

/// Serializes any [`ToJson`] value to pretty JSON.
pub fn to_json_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::UInt(u64::MAX),
            Value::Int(-42),
            Value::Num(0.125),
            Value::Str("he said \"hi\"\nline2".into()),
        ] {
            let text = v.render();
            assert_eq!(parse(&text).unwrap(), v, "roundtrip of {text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj([
            ("name".to_string(), Value::Str("table1".into())),
            ("seed".to_string(), Value::UInt(18_446_744_073_709_551_615)),
            (
                "metrics".to_string(),
                Value::obj([
                    ("messages".to_string(), Value::UInt(1234)),
                    ("rate".to_string(), Value::Num(0.5)),
                ]),
            ),
            (
                "grid".to_string(),
                Value::Arr(vec![Value::Str("a".into()), Value::Str("b".into())]),
            ),
        ]);
        let compact = parse(&v.render()).unwrap();
        let pretty = parse(&v.render_pretty()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            v.get("metrics").unwrap().get("rate").unwrap().as_f64(),
            Some(0.5)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn float_rendering_roundtrips() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456, 2.0f64.powi(60)] {
            let mut s = String::new();
            render_f64(&mut s, f);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, f, "{s}");
        }
        let mut s = String::new();
        render_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Value::Num(3.0).render(), "3.0");
        assert_eq!(Value::UInt(3).render(), "3");
    }
}
