//! Empirical companion to Theorem 2: split-brain elections on big cycles.
//!
//! Theorem 2 says no algorithm can solve *irrevocable* leader election in
//! bounded time `T(n)` without knowing `n`: on a long cycle `C_N`, far-apart
//! regions cannot be distinguished from full smaller networks within the
//! time budget, so with probability → 1 (as `N` grows) two regions finish
//! the election independently — two leaders.
//!
//! The experiment here realizes exactly that setup with this repo's own
//! Theorem 1 protocol as the stop-by-`T` algorithm `A`: nodes run it
//! **believing** the network is the cycle `C_{n₀}` (knowledge `n = n₀`,
//! `t_mix`, `Φ` of `C_{n₀}`), but the real network is `C_N`, `N ≫ n₀`.
//! Candidates' territories and walks are budgeted for `n₀` nodes, so
//! distant candidates never hear of each other and several raise flags.
//! The same instance run under the **revocable** protocol (which needs no
//! knowledge) converges to a single leader — the paper's motivation for
//! Definition 2.

use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_core::{CoreError, ElectionOutcome};
use ale_graph::{analytic, generators, NetworkKnowledge, Topology};

/// Knowledge a node of `C_{n₀}` would legitimately hold: exact `n₀`, the
/// closed-form conductance of the cycle, and its mixing time (exact for
/// small `n₀`, the `2n₀²` closed-form bound otherwise).
///
/// Using the *exact* mixing time matters for the experiment's economy: the
/// protocol's total running time `T` is the information radius of the run,
/// and Theorem 2's phenomenon appears once `N` exceeds a few multiples of
/// `T` — the tighter `t_mix` is, the smaller the cycles that exhibit it.
pub fn believed_cycle_knowledge(n0: usize) -> NetworkKnowledge {
    let hints = analytic::hints(&Topology::Cycle { n: n0 });
    let fallback = hints.tmix_upper.unwrap_or(2 * (n0 as u64).pow(2));
    let tmix = if n0 <= 64 {
        generators::cycle(n0)
            .ok()
            .and_then(|g| ale_markov::MarkovChain::lazy_random_walk(&g.adjacency()).ok())
            .and_then(|c| ale_markov::mixing::mixing_time_exact(&c, 1 << 24).ok())
            .unwrap_or(fallback)
    } else {
        fallback
    };
    NetworkKnowledge {
        n: n0,
        tmix,
        phi: hints.conductance.unwrap_or(2.0 / n0 as f64),
    }
}

/// Runs the irrevocable protocol on `graph` with (possibly wrong)
/// `knowledge` — the deliberate model violation of Theorem 2's setup.
/// Unlike [`ale_core::irrevocable::run_irrevocable`], the knowledge is
/// **not** checked against the true graph size.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_with_believed_knowledge(
    graph: &ale_graph::Graph,
    cfg: &IrrevocableConfig,
    seed: u64,
) -> Result<ElectionOutcome, CoreError> {
    cfg.validate()?;
    let budget = congest_budget(cfg.knowledge.n.max(2), cfg.congest_factor);
    let cfg_copy = *cfg;
    let mut net = Network::from_fn(graph, seed, budget, |deg, rng| {
        let params = cfg_copy.protocol_params(deg).expect("validated");
        IrrevocableProcess::new(params, rng)
    });
    let status = net.run_to_halt(cfg.total_rounds() + 4)?;
    let verdicts = net.outputs();
    let leaders = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.leader)
        .map(|(i, _)| i)
        .collect();
    let candidates = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.candidate)
        .map(|(i, _)| i)
        .collect();
    Ok(ElectionOutcome::new(
        leaders,
        candidates,
        *net.metrics(),
        status,
    ))
}

/// Result of one split-brain trial.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitBrainTrial {
    /// The believed size `n₀`.
    pub n0: usize,
    /// The true cycle size `N`.
    pub big_n: usize,
    /// Leaders elected (their cycle positions).
    pub leaders: Vec<usize>,
    /// Full outcome with cost metrics.
    pub outcome: ElectionOutcome,
}

impl SplitBrainTrial {
    /// Whether the run violated uniqueness (the Theorem 2 phenomenon).
    pub fn split_brain(&self) -> bool {
        self.leaders.len() >= 2
    }

    /// Minimum cycle distance between any two elected leaders — evidence
    /// that the split leaders are in far-apart "witness" regions.
    pub fn min_leader_distance(&self) -> Option<usize> {
        if self.leaders.len() < 2 {
            return None;
        }
        let mut best = usize::MAX;
        for (i, &a) in self.leaders.iter().enumerate() {
            for &b in &self.leaders[i + 1..] {
                let d = a.abs_diff(b);
                best = best.min(d.min(self.big_n - d));
            }
        }
        Some(best)
    }
}

/// Runs one split-brain trial: the stop-by-`T` protocol believing `n₀` on
/// the true cycle `C_N`.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn split_brain_trial(n0: usize, big_n: usize, seed: u64) -> Result<SplitBrainTrial, CoreError> {
    let graph = generators::cycle(big_n)?;
    let cfg = IrrevocableConfig::from_knowledge(believed_cycle_knowledge(n0));
    let outcome = run_with_believed_knowledge(&graph, &cfg, seed)?;
    Ok(SplitBrainTrial {
        n0,
        big_n,
        leaders: outcome.leaders.clone(),
        outcome,
    })
}

/// One point of the Theorem 2 series: split-brain frequency at a given
/// `N/n₀` blow-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitBrainPoint {
    /// Believed size.
    pub n0: usize,
    /// True size.
    pub big_n: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials electing ≥ 2 leaders.
    pub splits: usize,
    /// Mean number of leaders.
    pub mean_leaders: f64,
}

impl SplitBrainPoint {
    /// Empirical probability of ≥ 2 leaders.
    pub fn split_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.splits as f64 / self.trials as f64
        }
    }
}

/// Sweeps `N = factor·n₀` for each factor, running `trials` seeded trials
/// per point — the empirical analogue of Figures 1–2 + Theorem 2.
///
/// # Errors
///
/// Propagates trial failures.
pub fn split_brain_series(
    n0: usize,
    factors: &[usize],
    trials: usize,
    seed0: u64,
) -> Result<Vec<SplitBrainPoint>, CoreError> {
    let mut series = Vec::with_capacity(factors.len());
    for (fi, &f) in factors.iter().enumerate() {
        let big_n = n0 * f;
        let mut splits = 0usize;
        let mut total_leaders = 0usize;
        for t in 0..trials {
            let trial = split_brain_trial(n0, big_n, seed0 + (fi * trials + t) as u64)?;
            if trial.split_brain() {
                splits += 1;
            }
            total_leaders += trial.leaders.len();
        }
        series.push(SplitBrainPoint {
            n0,
            big_n,
            trials,
            splits,
            mean_leaders: total_leaders as f64 / trials.max(1) as f64,
        });
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn believed_knowledge_is_plausible() {
        let k = believed_cycle_knowledge(16);
        assert_eq!(k.n, 16);
        assert!(k.tmix >= 16);
        assert!((k.phi - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn correct_knowledge_elects_one_leader() {
        // Control: believed size == true size.
        for seed in 0..6 {
            let trial = split_brain_trial(8, 8, seed).unwrap();
            assert_eq!(trial.leaders.len(), 1, "control must elect uniquely");
            assert!(!trial.split_brain());
            assert_eq!(trial.min_leader_distance(), None);
        }
    }

    #[test]
    fn huge_blowup_splits_brain() {
        // N = 32·n0: the protocol's information radius (~2·broadcast steps
        // ≈ 108 hops for n0 = 8) is far below N/2, so distant local-king
        // candidates never hear of each other. Calibration runs show 6/6
        // splits with ~5 leaders at this point.
        let mut splits = 0;
        for seed in 0..5 {
            let trial = split_brain_trial(8, 256, seed).unwrap();
            if trial.split_brain() {
                splits += 1;
                let d = trial.min_leader_distance().unwrap();
                assert!(d > 0, "distinct leaders must be distinct positions");
            }
        }
        assert!(splits >= 4, "split brain in only {splits}/5 trials");
    }

    #[test]
    fn series_is_roughly_monotone() {
        let series = split_brain_series(8, &[1, 32], 5, 11).unwrap();
        assert_eq!(series.len(), 2);
        assert!(
            series[1].split_rate() >= series[0].split_rate(),
            "bigger blow-up should not reduce split rate: {:?}",
            series
        );
        assert!(series[1].mean_leaders > 1.5);
    }
}
