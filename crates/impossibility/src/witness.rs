//! Witness geometry of the pumping-wheel construction (paper Section 5.1,
//! Figures 1 and 2).
//!
//! Theorem 2's proof places disjoint **witnesses** — paths of length
//! `2T(n) + 2n` — around a large cycle `C_N`, separated by at least `2T(n)`
//! nodes so their executions stay independent for `T(n)` rounds. The middle
//! `2n` nodes of a witness form its **core**, split into two **segments**
//! of `n` nodes each; the `t`-semi-core is the core plus all nodes within
//! distance `T(n) − t` (so information from outside cannot have reached it
//! by round `t`).
//!
//! This module reproduces Figures 1–2 as *checkable data*: the layouts and
//! the invariant sets, with unit tests asserting every property the proof
//! uses.

use std::fmt;

/// Layout of witnesses on the cycle `C_N` for a pumping-wheel argument
/// against algorithms that stop by time `T` believing the network has `n₀`
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpingLayout {
    /// The "believed" network size `n₀` (segment length).
    pub n0: usize,
    /// The stop-time bound `T(n₀)`.
    pub t: usize,
    /// The actual cycle size `N`.
    pub big_n: usize,
}

/// One witness: a path of `2T + 2n₀` consecutive cycle nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Index of the witness (0-based).
    pub index: usize,
    /// First node of the witness (inclusive), as a cycle position.
    pub start: usize,
    /// Length of the witness (`2T + 2n₀`).
    pub len: usize,
    /// The believed size `n₀`.
    n0: usize,
    /// The stop bound `T`.
    t: usize,
}

impl PumpingLayout {
    /// Creates a layout. `big_n` must be a multiple of the block size
    /// `4T + 2n₀` (a witness plus its `2T` separation gap), as in the
    /// proof.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string when the parameters are
    /// inconsistent (kept as `String` — this is experiment plumbing, not a
    /// public API surface).
    pub fn new(n0: usize, t: usize, big_n: usize) -> Result<Self, String> {
        if n0 == 0 || t == 0 {
            return Err("n0 and T must be positive".into());
        }
        let block = 4 * t + 2 * n0;
        if big_n == 0 || !big_n.is_multiple_of(block) {
            return Err(format!(
                "N = {big_n} must be a positive multiple of 4T + 2n0 = {block}"
            ));
        }
        Ok(PumpingLayout { n0, t, big_n })
    }

    /// The block size `4T + 2n₀` (witness + separation).
    pub fn block(&self) -> usize {
        4 * self.t + 2 * self.n0
    }

    /// Witness length `2T + 2n₀`.
    pub fn witness_len(&self) -> usize {
        2 * self.t + 2 * self.n0
    }

    /// Number of witnesses `N / (4T + 2n₀)`.
    pub fn witness_count(&self) -> usize {
        self.big_n / self.block()
    }

    /// The minimal `N` (as a multiple of the block size) for which the
    /// proof's union bound gives failure probability `> 1 − c`, i.e.
    /// `x > ln(1/c)/c² · 2^{2n₀T}` blocks. Saturates at `u128::MAX` — the
    /// point of exposing it is to show how astronomically the *proof*
    /// over-provisions compared with the empirically observed failures.
    pub fn proof_block_count(n0: u32, t: u32, c: f64) -> u128 {
        let ln_term = (1.0 / c).ln() / (c * c);
        let exponent = 2u32.saturating_mul(n0).saturating_mul(t);
        if exponent >= 120 {
            return u128::MAX;
        }
        let blocks = ln_term * (1u128 << exponent) as f64;
        if blocks >= u128::MAX as f64 {
            u128::MAX
        } else {
            (blocks.ceil() as u128).max(1)
        }
    }

    /// The `i`-th witness.
    ///
    /// # Panics
    ///
    /// Panics if `i >= witness_count()`.
    pub fn witness(&self, i: usize) -> Witness {
        assert!(i < self.witness_count(), "witness index out of range");
        Witness {
            index: i,
            start: i * self.block(),
            len: self.witness_len(),
            n0: self.n0,
            t: self.t,
        }
    }

    /// Iterator over all witnesses.
    pub fn witnesses(&self) -> impl Iterator<Item = Witness> + '_ {
        (0..self.witness_count()).map(|i| self.witness(i))
    }
}

impl Witness {
    /// Nodes of the witness as cycle positions (wrapping).
    pub fn nodes(&self, big_n: usize) -> Vec<usize> {
        (0..self.len).map(|o| (self.start + o) % big_n).collect()
    }

    /// The core: the middle `2n₀` nodes.
    pub fn core(&self, big_n: usize) -> Vec<usize> {
        (0..2 * self.n0)
            .map(|o| (self.start + self.t + o) % big_n)
            .collect()
    }

    /// The two segments of the core, `n₀` nodes each.
    pub fn segments(&self, big_n: usize) -> (Vec<usize>, Vec<usize>) {
        let core = self.core(big_n);
        let (a, b) = core.split_at(self.n0);
        (a.to_vec(), b.to_vec())
    }

    /// The `t`-semi-core: the core plus all witness nodes within distance
    /// `T − t` of it. `t = 0` gives the whole witness; `t = T` gives the
    /// core.
    ///
    /// # Panics
    ///
    /// Panics if `t > T`.
    pub fn semi_core(&self, t: usize, big_n: usize) -> Vec<usize> {
        assert!(t <= self.t, "semi-core index exceeds T");
        let margin = self.t - t;
        let first = self.t - margin;
        let len = 2 * self.n0 + 2 * margin;
        (0..len).map(|o| (self.start + first + o) % big_n).collect()
    }

    /// Distance from a witness-relative offset to the nearest core node —
    /// the `x` of the proof's invariant (Figure 2).
    pub fn distance_to_core(&self, offset: usize) -> usize {
        if offset < self.t {
            self.t - offset
        } else if offset < self.t + 2 * self.n0 {
            0
        } else {
            offset - (self.t + 2 * self.n0) + 1
        }
    }
}

impl fmt::Display for PumpingLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pumping wheel: N = {}, n0 = {}, T = {}, {} witnesses",
            self.big_n,
            self.n0,
            self.t,
            self.witness_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> PumpingLayout {
        // n0 = 4, T = 3: block = 20, witness = 14. N = 3 blocks.
        PumpingLayout::new(4, 3, 60).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(PumpingLayout::new(0, 3, 60).is_err());
        assert!(PumpingLayout::new(4, 0, 60).is_err());
        assert!(PumpingLayout::new(4, 3, 61).is_err());
        assert!(PumpingLayout::new(4, 3, 0).is_err());
        let l = layout();
        assert_eq!(l.block(), 20);
        assert_eq!(l.witness_len(), 14);
        assert_eq!(l.witness_count(), 3);
    }

    #[test]
    fn witnesses_are_disjoint_and_separated() {
        let l = layout();
        let all: Vec<Vec<usize>> = l.witnesses().map(|w| w.nodes(l.big_n)).collect();
        // Pairwise disjoint.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                for v in &all[i] {
                    assert!(!all[j].contains(v), "witnesses {i} and {j} overlap at {v}");
                }
            }
        }
        // Gap between consecutive witnesses is 2T = 6 nodes.
        let w0_end = (l.witness(0).start + l.witness_len()) % l.big_n;
        let w1_start = l.witness(1).start;
        assert_eq!(w1_start - w0_end, 2 * l.t);
    }

    #[test]
    fn core_and_segments_sizes() {
        let l = layout();
        let w = l.witness(1);
        let core = w.core(l.big_n);
        assert_eq!(core.len(), 2 * l.n0);
        let (a, b) = w.segments(l.big_n);
        assert_eq!(a.len(), l.n0);
        assert_eq!(b.len(), l.n0);
        // Segments partition the core contiguously.
        let mut joined = a.clone();
        joined.extend(&b);
        assert_eq!(joined, core);
        // The core is centered: T nodes on each side within the witness.
        assert_eq!(core[0], w.start + l.t);
    }

    #[test]
    fn semi_cores_nest_and_hit_extremes() {
        let l = layout();
        let w = l.witness(0);
        let full = w.semi_core(0, l.big_n);
        assert_eq!(full.len(), w.len, "0-semi-core is the witness");
        let core = w.semi_core(l.t, l.big_n);
        assert_eq!(core, w.core(l.big_n), "T-semi-core is the core");
        // Nesting: each semi-core contains the next.
        for t in 0..l.t {
            let outer = w.semi_core(t, l.big_n);
            let inner = w.semi_core(t + 1, l.big_n);
            for v in &inner {
                assert!(outer.contains(v), "semi-cores must nest");
            }
            assert_eq!(outer.len(), inner.len() + 2);
        }
    }

    #[test]
    fn distance_to_core_profile() {
        let l = layout();
        let w = l.witness(0);
        // Offsets 0..T approach the core; inside the core distance 0;
        // beyond it grows again.
        assert_eq!(w.distance_to_core(0), l.t);
        assert_eq!(w.distance_to_core(l.t - 1), 1);
        assert_eq!(w.distance_to_core(l.t), 0);
        assert_eq!(w.distance_to_core(l.t + 2 * l.n0 - 1), 0);
        assert_eq!(w.distance_to_core(l.t + 2 * l.n0), 1);
    }

    #[test]
    fn wrapping_layout_works() {
        // A single block exactly fills the cycle; the witness wraps.
        let l = PumpingLayout::new(3, 2, 14).unwrap();
        assert_eq!(l.witness_count(), 1);
        let nodes = l.witness(0).nodes(l.big_n);
        assert_eq!(nodes.len(), 10);
        assert!(nodes.iter().all(|&v| v < 14));
    }

    #[test]
    fn proof_block_count_is_astronomical() {
        // Even toy parameters demand >2^24 blocks — the reason the
        // *empirical* experiment uses much smaller N and still observes
        // the phenomenon (failures only get more likely with N).
        let blocks = PumpingLayout::proof_block_count(4, 3, 0.5);
        assert!(blocks > 1 << 24);
        assert_eq!(PumpingLayout::proof_block_count(64, 64, 0.5), u128::MAX);
    }

    #[test]
    fn display_is_informative() {
        let s = layout().to_string();
        assert!(s.contains("3 witnesses"));
    }
}
