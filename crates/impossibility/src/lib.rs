//! # ale-impossibility — the pumping-wheel construction of Theorem 2
//!
//! Section 5.1 of Kowalski & Mosteiro (ICDCS 2021) proves that **no**
//! algorithm solves Irrevocable Leader Election in bounded time `T(n)`
//! without knowing the network size, via a probabilistic *pumping-wheel*
//! argument on long cycles. This crate reproduces both halves of that
//! argument:
//!
//! * [`witness`] — the combinatorial geometry of Figures 1–2: witnesses,
//!   cores, segments, and `t`-semi-cores on `C_N`, with every property the
//!   proof's invariant uses checked by tests.
//! * [`experiment`] — the phenomenon itself, empirically: run a stop-by-`T`
//!   algorithm (the repo's Theorem 1 protocol, configured for a believed
//!   size `n₀`) on `C_N` with `N ≫ n₀` and watch distant regions elect
//!   separate leaders; the split-brain rate grows with `N/n₀`.
//!
//! ## Example
//!
//! ```
//! use ale_impossibility::experiment::split_brain_trial;
//!
//! // Believe the cycle has 12 nodes; it actually has 96.
//! let trial = split_brain_trial(12, 96, 1)?;
//! // Usually several leaders are elected (whp as N grows — Theorem 2).
//! println!("{} leaders at positions {:?}", trial.leaders.len(), trial.leaders);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod witness;

pub use experiment::{
    believed_cycle_knowledge, run_with_believed_knowledge, split_brain_series, split_brain_trial,
    SplitBrainPoint, SplitBrainTrial,
};
pub use witness::{PumpingLayout, Witness};
