//! A minimal threaded HTTP/1.1 server built on `std::net` alone.
//!
//! `ale-serve` exists so `ale-lab serve` can expose the durable run
//! store to dashboards without pulling a web framework into the
//! offline-shim workspace. It is deliberately small:
//!
//! - a bounded worker pool (`ServerConfig::workers` threads) accepting
//!   on a shared [`std::net::TcpListener`];
//! - per-connection read and write timeouts so a stalled client cannot
//!   pin a worker forever;
//! - one request per connection (`Connection: close`) — dashboards and
//!   `curl` poll, they do not pipeline;
//! - responses either carry a `Content-Length` ([`Body::Full`]) or are
//!   streamed with chunked transfer encoding ([`Body::Stream`]).
//!
//! The crate knows nothing about runs, stores, or JSON: a handler is
//! any `Fn(&Request) -> Response`, and the route table lives in the
//! caller (`crates/lab/src/serve.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Upper bound on the request head (request line + headers) in bytes.
/// Anything longer is rejected with `431 Request Header Fields Too
/// Large` — the lab's routes all fit comfortably in a fraction of this.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Worker-pool size and per-connection socket timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of accept/serve worker threads (clamped to at least 1).
    pub workers: usize,
    /// Read timeout applied to each accepted connection.
    pub read_timeout: Duration,
    /// Write timeout applied to each accepted connection.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A parsed HTTP request head. Bodies are not read: the lab's service
/// is read-only, so every route is driven by method + path + query.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased as received (e.g. `GET`).
    pub method: String,
    /// Percent-decoded path component, e.g. `/runs/smoke/summary`.
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first query parameter named `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A streaming body writes itself to the connection; the `dyn Write`
/// it receives already applies chunked transfer encoding. It returns
/// the number of payload bytes written (for the caller's metrics).
pub type StreamFn = Box<dyn FnOnce(&mut dyn Write) -> io::Result<u64> + Send>;

/// Response payload: either fully materialized (sent with
/// `Content-Length`) or streamed chunk by chunk.
pub enum Body {
    /// Complete payload, sent with a `Content-Length` header.
    Full(Vec<u8>),
    /// Lazily produced payload, sent with `Transfer-Encoding: chunked`.
    Stream(StreamFn),
}

/// An HTTP response assembled by a handler.
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Value for the `Content-Type` header.
    pub content_type: &'static str,
    /// The payload.
    pub body: Body,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: Body::Full(body.into()),
        }
    }

    /// A plain-text response with the given status code.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Full(body.into()),
        }
    }

    /// A `404 Not Found` with a short plain-text explanation.
    pub fn not_found(msg: &str) -> Response {
        Response::text(404, format!("not found: {msg}\n"))
    }

    /// A `400 Bad Request` with a short plain-text explanation.
    pub fn bad_request(msg: &str) -> Response {
        Response::text(400, format!("bad request: {msg}\n"))
    }

    /// A `200 OK` streamed response with chunked transfer encoding.
    pub fn stream(content_type: &'static str, f: StreamFn) -> Response {
        Response {
            status: 200,
            content_type,
            body: Body::Stream(f),
        }
    }
}

/// Request handler shared by all worker threads.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A bound-but-not-yet-serving HTTP server.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
}

impl Server {
    /// Binds `addr` (any `host:port` form accepted by
    /// [`TcpListener::bind`]). Fails if the address cannot be parsed
    /// or the port is already in use.
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, cfg })
    }

    /// The locally bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread plus `workers - 1` helper
    /// threads. Only returns if accepting fails irrecoverably.
    pub fn run(self, handler: Handler) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = self.cfg.workers.max(1);
        let mut helpers = Vec::new();
        for _ in 1..workers {
            let listener = self.listener.try_clone()?;
            let handler = Arc::clone(&handler);
            let cfg = self.cfg.clone();
            let stop = Arc::clone(&stop);
            helpers.push(thread::spawn(move || {
                accept_loop(&listener, &cfg, &handler, &stop)
            }));
        }
        accept_loop(&self.listener, &self.cfg, &handler, &stop);
        for h in helpers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Spawns the worker pool in the background and returns a handle
    /// for shutdown — the test-friendly counterpart of [`Server::run`].
    pub fn spawn(self, handler: Handler) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = self.cfg.workers.max(1);
        let mut threads = Vec::new();
        for _ in 0..workers {
            let listener = self.listener.try_clone()?;
            let handler = Arc::clone(&handler);
            let cfg = self.cfg.clone();
            let stop = Arc::clone(&stop);
            threads.push(thread::spawn(move || {
                accept_loop(&listener, &cfg, &handler, &stop)
            }));
        }
        Ok(ServerHandle {
            addr,
            stop,
            threads,
        })
    }
}

/// Handle for a background server started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops all workers and joins them. Each worker is unblocked from
    /// `accept` by a throwaway local connection.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in &self.threads {
            // Wake one blocked accept per worker; errors are fine (the
            // worker may already have observed the flag and exited).
            let _ = TcpStream::connect(self.addr);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, cfg: &ServerConfig, handler: &Handler, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_connection(stream, cfg, handler);
    }
}

fn serve_connection(stream: TcpStream, cfg: &ServerConfig, handler: &Handler) -> io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    match read_request(&mut reader) {
        Ok(req) => {
            let resp = handler(&req);
            write_response(&mut stream, resp)
        }
        Err(ParseError::Io(e)) => Err(e),
        Err(ParseError::Malformed(msg)) => {
            write_response(&mut stream, Response::text(400, format!("{msg}\n")))?;
            drain(&mut reader)
        }
        Err(ParseError::TooLarge) => {
            write_response(&mut stream, Response::text(431, "request head too large\n"))?;
            drain(&mut reader)
        }
    }
}

/// Discards (bounded) unread request bytes after an error response so
/// closing the socket does not RST the connection before the client
/// has read the response.
fn drain(reader: &mut BufReader<TcpStream>) -> io::Result<()> {
    let mut sink = [0u8; 4096];
    let mut budget = 256 * 1024;
    while budget > 0 {
        match reader.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
    Ok(())
}

enum ParseError {
    Io(io::Error),
    Malformed(&'static str),
    TooLarge,
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn read_line_capped(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ParseError> {
    let mut line = String::new();
    let n = reader
        .take(*budget as u64)
        .read_line(&mut line)
        .map_err(ParseError::Io)?;
    if n == 0 {
        return Err(ParseError::Malformed("unexpected end of request"));
    }
    if !line.ends_with('\n') && n >= *budget {
        return Err(ParseError::TooLarge);
    }
    *budget -= n;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line_capped(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path);
    let query = raw_query.map(parse_query).unwrap_or_default();

    let mut headers = Vec::new();
    loop {
        let line = read_line_capped(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
    })
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes are kept
/// verbatim rather than rejected — the router will simply not match.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: Response) -> io::Result<()> {
    let reason = status_reason(resp.status);
    match resp.body {
        Body::Full(bytes) => {
            let head = format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                resp.status,
                reason,
                resp.content_type,
                bytes.len()
            );
            stream.write_all(head.as_bytes())?;
            stream.write_all(&bytes)?;
            stream.flush()
        }
        Body::Stream(f) => {
            let head = format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
                resp.status, reason, resp.content_type
            );
            stream.write_all(head.as_bytes())?;
            let mut chunked = ChunkWriter { inner: stream };
            f(&mut chunked)?;
            stream.write_all(b"0\r\n\r\n")?;
            stream.flush()
        }
    }
}

/// Wraps a connection so every `write` becomes one HTTP chunk.
struct ChunkWriter<'a> {
    inner: &'a mut TcpStream,
}

impl Write for ChunkWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    fn echo_handler() -> Handler {
        Arc::new(|req: &Request| {
            if req.method != "GET" {
                return Response::text(405, "GET only\n");
            }
            match req.path.as_str() {
                "/hello" => Response::text(200, "world\n"),
                "/echo" => {
                    let q = req.query_param("q").unwrap_or("-");
                    Response::json(format!("{{\"q\":\"{q}\"}}"))
                }
                "/stream" => Response::stream(
                    "text/plain",
                    Box::new(|w: &mut dyn Write| {
                        w.write_all(b"part1\n")?;
                        w.write_all(b"part2\n")?;
                        Ok(12)
                    }),
                ),
                other => Response::not_found(other),
            }
        })
    }

    #[test]
    fn serves_full_and_streamed_bodies() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let handle = server.spawn(echo_handler()).expect("spawn");
        let addr = handle.addr();

        let ok = get(addr, "/hello");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Length: 6\r\n"), "{ok}");
        assert!(ok.ends_with("\r\n\r\nworld\n"), "{ok}");

        let echoed = get(addr, "/echo?q=a%20b+c");
        assert!(echoed.contains("{\"q\":\"a b c\"}"), "{echoed}");

        let streamed = get(addr, "/stream");
        assert!(
            streamed.contains("Transfer-Encoding: chunked"),
            "{streamed}"
        );
        assert!(streamed.contains("6\r\npart1\n\r\n"), "{streamed}");
        assert!(streamed.ends_with("0\r\n\r\n"), "{streamed}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        handle.shutdown();
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let handle = server.spawn(echo_handler()).expect("spawn");
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NONSENSE\r\n\r\n").expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");

        let mut stream = TcpStream::connect(addr).expect("connect");
        let big = "x".repeat(MAX_HEAD_BYTES + 10);
        write!(stream, "GET /{big} HTTP/1.1\r\n\r\n").expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");

        handle.shutdown();
    }

    #[test]
    fn parses_query_pairs_in_order() {
        let q = parse_query("a=1&b=two&flag&c=%2Fx");
        assert_eq!(
            q,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "two".to_string()),
                ("flag".to_string(), String::new()),
                ("c".to_string(), "/x".to_string()),
            ]
        );
    }
}
