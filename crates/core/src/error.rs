//! Error types for the `ale-core` protocol crate.

use std::error::Error;
use std::fmt;

/// Errors produced by protocol configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid protocol configuration.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The underlying graph layer failed.
    Graph(ale_graph::GraphError),
    /// The simulator failed.
    Congest(ale_congest::CongestError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Congest(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Congest(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<ale_graph::GraphError> for CoreError {
    fn from(e: ale_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<ale_congest::CongestError> for CoreError {
    fn from(e: ale_congest::CongestError) -> Self {
        CoreError::Congest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::InvalidConfig {
            reason: "x must be positive".into(),
        };
        assert!(e.to_string().contains("x must be positive"));
        assert!(e.source().is_none());

        let g: CoreError = ale_graph::GraphError::Disconnected.into();
        assert!(g.source().is_some());

        let c: CoreError = ale_congest::CongestError::RoundLimitExceeded { limit: 5 }.into();
        assert!(c.to_string().contains("round limit"));
    }
}
