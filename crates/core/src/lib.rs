//! # ale-core — leader election in anonymous networks
//!
//! Production-quality implementations of the two protocols of
//! Kowalski & Mosteiro, *Time and Communication Complexity of Leader
//! Election in Anonymous Networks* (ICDCS 2021, arXiv:2101.04400):
//!
//! * [`irrevocable`] — **known network size** (Section 4, Theorem 1):
//!   candidates span bounded territories with *cautious broadcast*, probe
//!   them with random walks, and convergecast the largest random ID;
//!   `Õ(√(n·t_mix/Φ))` messages, `O(t_mix·log² n)` rounds, whp-unique
//!   leader.
//! * [`revocable`] — **unknown network size** (Section 5, Theorem 3 /
//!   Corollary 1): irrevocable election is impossible without `n`
//!   (Theorem 2), so nodes probe doubling size estimates with a diffusion-
//!   with-thresholds certification and elect the smallest ID under the
//!   largest certificate, revocably.
//!
//! Both run on the anonymous CONGEST simulator of
//! [`ale_congest`] over graphs from [`ale_graph`].
//!
//! ## Quickstart
//!
//! ```
//! use ale_core::irrevocable::{run_irrevocable, IrrevocableConfig};
//! use ale_graph::Topology;
//!
//! let topo = Topology::Hypercube { dim: 3 };
//! let g = topo.build(0)?;
//! let cfg = IrrevocableConfig::derive_for(&g, &topo)?;
//! let outcome = run_irrevocable(&g, &cfg, 1)?;
//! assert_eq!(outcome.leader_count(), 1);
//! println!(
//!     "elected node {} using {} messages in {} rounds",
//!     outcome.unique_leader().unwrap(),
//!     outcome.metrics.messages,
//!     outcome.metrics.rounds,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod extensions;
pub mod irrevocable;
pub mod outcome;
pub mod revocable;

pub use error::CoreError;
pub use outcome::{ElectionOutcome, SuccessStats};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        assert_send_sync::<ElectionOutcome>();
        assert_send_sync::<irrevocable::IrrevocableConfig>();
        assert_send_sync::<irrevocable::IrrevocableProcess>();
        assert_send_sync::<revocable::RevocableParams>();
        assert_send_sync::<revocable::RevocableProcess>();
    }
}
