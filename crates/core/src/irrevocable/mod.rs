//! Irrevocable Leader Election for **known network size** (paper Section 4).
//!
//! The protocol of Theorem 1: with `n`, mixing time `t_mix`, and conductance
//! `Φ` known (linear upper bounds suffice), elect a unique leader whp using
//! `Õ(√(n·t_mix/Φ))` messages in `O(t_mix·log² n)` rounds in the CONGEST
//! model.
//!
//! * [`IrrevocableConfig`] — knowledge + calibration constants; derives the
//!   paper's parameters `x = Θ(√(n·log n/(Φ·t_mix)))`, the territory target
//!   `x·t_mix·Φ`, and the phase schedule.
//! * [`IrrevocableProcess`] — the per-node state machine (Algorithms 1–5).
//! * [`run_irrevocable`] — wires a network and runs to halt.
//!
//! ## Example
//!
//! ```
//! use ale_core::irrevocable::{run_irrevocable, IrrevocableConfig};
//! use ale_graph::Topology;
//!
//! let topo = Topology::Complete { n: 32 };
//! let g = topo.build(1)?;
//! let cfg = IrrevocableConfig::derive_for(&g, &topo)?;
//! let outcome = run_irrevocable(&g, &cfg, 7)?;
//! assert_eq!(outcome.leader_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cautious;
pub mod msg;
pub mod process;

use crate::error::CoreError;
use crate::outcome::ElectionOutcome;
use ale_congest::{congest_budget, Network};
use ale_graph::{Graph, GraphProps, NetworkKnowledge, Topology};

pub use cautious::{CbBody, ExecState, ReportDiscipline, Status};
pub use msg::IrrMsg;
pub use process::{IrrevocableProcess, NodeVerdict};

/// Configuration of the irrevocable protocol: the assumed network knowledge
/// plus calibration constants (the paper's `c` and the hidden constant in
/// `x = Θ̃(√(n log n/(Φ t_mix)))`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrrevocableConfig {
    /// Known network characteristics `(n, t_mix, Φ)`.
    pub knowledge: NetworkKnowledge,
    /// The paper's constant `c > 0` (phase lengths, candidate probability).
    pub c: f64,
    /// Multiplier on the derived `x` (walk count calibration).
    pub x_cal: f64,
    /// CONGEST budget factor: per-link budget is `congest_factor·⌈log₂n⌉`
    /// bits (message fields span up to `4·log₂ n` bits, so ≥ 6 keeps runs
    /// clean).
    pub congest_factor: usize,
    /// Cautious-broadcast parent-report discipline (ablation knob).
    pub report_discipline: ReportDiscipline,
}

impl IrrevocableConfig {
    /// Builds a config from explicit knowledge with default calibration
    /// (`c = 2`, `x_cal = 1`, budget factor 8).
    pub fn from_knowledge(knowledge: NetworkKnowledge) -> Self {
        IrrevocableConfig {
            knowledge,
            c: 2.0,
            x_cal: 1.0,
            congest_factor: 8,
            report_discipline: ReportDiscipline::OnCrossing,
        }
    }

    /// Computes the graph's properties and derives the config from them.
    ///
    /// # Errors
    ///
    /// Propagates property-computation failures.
    pub fn derive(graph: &Graph) -> Result<Self, CoreError> {
        let props = GraphProps::compute(graph)?;
        Ok(Self::from_knowledge(NetworkKnowledge::from_props(&props)))
    }

    /// Like [`IrrevocableConfig::derive`] but uses closed forms for the
    /// given topology family where available (much faster in sweeps).
    ///
    /// # Errors
    ///
    /// Propagates property-computation failures.
    pub fn derive_for(graph: &Graph, topology: &Topology) -> Result<Self, CoreError> {
        let props = GraphProps::compute_for(graph, topology)?;
        Ok(Self::from_knowledge(NetworkKnowledge::from_props(&props)))
    }

    /// `⌈log₂ n⌉`, at least 1.
    pub fn log2_n(&self) -> u64 {
        let n = self.knowledge.n;
        if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as u64
        }
    }

    /// Super-round width: `⌈4c·log n⌉` slots (the paper's bound on parallel
    /// cautious-broadcast executions, whp).
    pub fn slots(&self) -> u64 {
        ((4.0 * self.c * self.log2_n() as f64).ceil() as u64).max(1)
    }

    /// Cautious-broadcast steps per execution: `⌈c·t_mix·log n⌉`.
    pub fn broadcast_steps(&self) -> u64 {
        ((self.c * self.knowledge.tmix as f64 * self.log2_n() as f64).ceil() as u64).max(1)
    }

    /// Wall-clock rounds of the broadcast phase (steps × slots).
    pub fn broadcast_rounds(&self) -> u64 {
        self.broadcast_steps().saturating_mul(self.slots())
    }

    /// Rounds of the walk phase (walk length `c·t_mix·log n`).
    pub fn walk_rounds(&self) -> u64 {
        self.broadcast_steps()
    }

    /// Rounds of the convergecast phase.
    pub fn converge_rounds(&self) -> u64 {
        self.broadcast_steps()
    }

    /// Total protocol rounds including the decision round.
    pub fn total_rounds(&self) -> u64 {
        self.broadcast_rounds() + self.walk_rounds() + self.converge_rounds() + 1
    }

    /// Number of random walks per candidate:
    /// `x = max(1, ⌈x_cal·√(n·ln n/(Φ·t_mix))⌉)`.
    pub fn x(&self) -> u64 {
        let k = &self.knowledge;
        let n = k.n as f64;
        let raw = self.x_cal * (n * n.ln().max(1.0) / (k.phi * k.tmix as f64)).sqrt();
        (raw.ceil() as u64).max(1)
    }

    /// Territory target `⌈x·t_mix·Φ⌉` for cautious broadcast.
    pub fn final_threshold(&self) -> u64 {
        let k = &self.knowledge;
        ((self.x() as f64 * k.tmix as f64 * k.phi).ceil() as u64).max(2)
    }

    /// Candidate probability `min(1, c·ln n / n)` (Algorithm 1 line 3).
    pub fn candidate_probability(&self) -> f64 {
        let n = self.knowledge.n as f64;
        (self.c * n.ln().max(1.0) / n).min(1.0)
    }

    /// ID space `{1..n⁴}` (Algorithm 1 line 2).
    pub fn id_space(&self) -> u64 {
        (self.knowledge.n as u64).saturating_pow(4).max(2)
    }

    /// Freezes the per-node parameter bundle for a node of the given
    /// degree.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the knowledge is degenerate
    /// (`n < 2`, `t_mix = 0`, `Φ ∉ (0, 1]`, non-positive constants).
    pub fn protocol_params(&self, degree: usize) -> Result<ProtocolParams, CoreError> {
        self.validate()?;
        if degree == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "node degree must be positive in a connected network".into(),
            });
        }
        Ok(ProtocolParams {
            n: self.knowledge.n,
            degree,
            id_space: self.id_space(),
            candidate_probability: self.candidate_probability(),
            x: self.x(),
            final_threshold: self.final_threshold(),
            slots: self.slots(),
            broadcast_rounds: self.broadcast_rounds(),
            walk_rounds: self.walk_rounds(),
            converge_rounds: self.converge_rounds(),
            report_discipline: self.report_discipline,
        })
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] with the violated constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        let k = &self.knowledge;
        if k.n < 2 {
            return Err(CoreError::InvalidConfig {
                reason: format!("need n >= 2, got {}", k.n),
            });
        }
        if k.tmix == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "t_mix must be positive".into(),
            });
        }
        if !(k.phi > 0.0 && k.phi <= 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("conductance must be in (0, 1], got {}", k.phi),
            });
        }
        if self.c <= 0.0 || self.x_cal <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: "calibration constants must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Per-node frozen parameters (what every anonymous node knows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    /// Network size.
    pub n: usize,
    /// This node's degree.
    pub degree: usize,
    /// ID space upper bound (`n⁴`).
    pub id_space: u64,
    /// Candidate probability.
    pub candidate_probability: f64,
    /// Walks per candidate.
    pub x: u64,
    /// Territory target.
    pub final_threshold: u64,
    /// Super-round width.
    pub slots: u64,
    /// Broadcast phase length in rounds.
    pub broadcast_rounds: u64,
    /// Walk phase length in rounds.
    pub walk_rounds: u64,
    /// Convergecast phase length in rounds.
    pub converge_rounds: u64,
    /// Cautious-broadcast parent-report discipline.
    pub report_discipline: ReportDiscipline,
}

/// Runs the irrevocable protocol on `graph` with experiment seed `seed`.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_irrevocable(
    graph: &Graph,
    cfg: &IrrevocableConfig,
    seed: u64,
) -> Result<ElectionOutcome, CoreError> {
    cfg.validate()?;
    if graph.n() != cfg.knowledge.n {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "knowledge says n = {} but graph has {} nodes",
                cfg.knowledge.n,
                graph.n()
            ),
        });
    }
    let budget = congest_budget(cfg.knowledge.n, cfg.congest_factor);
    let cfg_copy = *cfg;
    let mut net = Network::from_fn(graph, seed, budget, |deg, rng| {
        let params = cfg_copy.protocol_params(deg).expect("validated before run");
        IrrevocableProcess::new(params, rng)
    });
    let status = net.run_to_halt(cfg.total_rounds() + 4)?;
    let verdicts = net.outputs();
    let leaders = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.leader)
        .map(|(i, _)| i)
        .collect();
    let candidates = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.candidate)
        .map(|(i, _)| i)
        .collect();
    Ok(ElectionOutcome::new(
        leaders,
        candidates,
        *net.metrics(),
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knowledge() -> NetworkKnowledge {
        NetworkKnowledge {
            n: 64,
            tmix: 8,
            phi: 0.4,
        }
    }

    #[test]
    fn config_derivations_are_consistent() {
        let cfg = IrrevocableConfig::from_knowledge(knowledge());
        assert_eq!(cfg.log2_n(), 6);
        assert_eq!(cfg.slots(), 48);
        assert_eq!(cfg.broadcast_steps(), 2 * 8 * 6);
        assert_eq!(cfg.broadcast_rounds(), 96 * 48);
        assert!(cfg.x() >= 1);
        assert!(cfg.final_threshold() >= 2);
        assert!(cfg.candidate_probability() > 0.0 && cfg.candidate_probability() <= 1.0);
        assert_eq!(cfg.id_space(), 64u64.pow(4));
        assert_eq!(
            cfg.total_rounds(),
            cfg.broadcast_rounds() + 2 * cfg.broadcast_steps() + 1
        );
    }

    #[test]
    fn x_matches_formula_shape() {
        // Doubling Φ·t_mix should shrink x by ~√2.
        let lo = IrrevocableConfig::from_knowledge(NetworkKnowledge {
            n: 1024,
            tmix: 16,
            phi: 0.25,
        });
        let hi = IrrevocableConfig::from_knowledge(NetworkKnowledge {
            n: 1024,
            tmix: 32,
            phi: 0.25,
        });
        let ratio = lo.x() as f64 / hi.x() as f64;
        assert!((1.2..=1.7).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let mut cfg = IrrevocableConfig::from_knowledge(knowledge());
        cfg.knowledge.n = 1;
        assert!(cfg.validate().is_err());
        cfg = IrrevocableConfig::from_knowledge(knowledge());
        cfg.knowledge.phi = 0.0;
        assert!(cfg.validate().is_err());
        cfg = IrrevocableConfig::from_knowledge(knowledge());
        cfg.knowledge.tmix = 0;
        assert!(cfg.validate().is_err());
        cfg = IrrevocableConfig::from_knowledge(knowledge());
        cfg.c = -1.0;
        assert!(cfg.validate().is_err());
        cfg = IrrevocableConfig::from_knowledge(knowledge());
        assert!(cfg.validate().is_ok());
        assert!(cfg.protocol_params(0).is_err());
    }

    #[test]
    fn run_rejects_mismatched_graph() {
        let g = ale_graph::generators::cycle(8).unwrap();
        let cfg = IrrevocableConfig::from_knowledge(knowledge()); // n = 64
        assert!(matches!(
            run_irrevocable(&g, &cfg, 0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
