//! The composed irrevocable leader-election process (paper Algorithm 1).
//!
//! Phase schedule (identical at every node, computed from the shared
//! knowledge `(n, t_mix, Φ, c, x)`):
//!
//! 1. **ID + candidacy** (local, during construction): ID uniform in
//!    `{1..n⁴}`; candidate with probability `c·ln n / n`.
//! 2. **Cautious broadcast**, `c·t_mix·log n` steps per execution,
//!    multiplexed into super-rounds of `4c·log n` slots (paper Section 4,
//!    "Candidate nodes span their territories") — wall-clock
//!    `O(t_mix·log² n)` rounds, the dominant term of Theorem 1's time.
//! 3. **Random-walk probing**: each candidate launches `x` lazy tokens that
//!    carry (and merge to) the largest walk ID (Algorithm 5).
//! 4. **Convergecast** of the largest walk ID along every broadcast tree.
//!    Values are forwarded on change, matching the message accounting of
//!    Theorem 1's proof (the pseudocode's retransmit-every-round variant
//!    would inflate messages past the claimed bound; see DESIGN.md).
//! 5. **Decision**: a candidate raises its flag iff it never saw a walk ID
//!    above its own.

use super::cautious::{CbBody, ExecState};
use super::msg::IrrMsg;
use super::ProtocolParams;
use ale_congest::{Incoming, NodeCtx, OutCtx, Process};
use ale_graph::Port;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Final per-node result of the irrevocable protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeVerdict {
    /// Whether the node stood as a candidate.
    pub candidate: bool,
    /// The node's random ID (drawn from `{1..n⁴}`).
    pub id: u64,
    /// Whether the node raised the leader flag.
    pub leader: bool,
    /// Largest walk ID the node observed (None if no walk reached it).
    pub observed_walk_max: Option<u64>,
}

/// Execution phase, derived from the global round number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Broadcast,
    Walk,
    Converge,
    Decide,
    Done,
}

/// One node's state machine for the whole irrevocable protocol.
#[derive(Debug, Clone)]
pub struct IrrevocableProcess {
    params: ProtocolParams,
    id: u64,
    candidate: bool,
    // Cautious broadcast (phase 2).
    exec_order: Vec<u64>,
    execs: BTreeMap<u64, ExecState>,
    buffers: BTreeMap<u64, Vec<(Port, CbBody)>>,
    overflow_execs: u64,
    // Random walks (phase 3).
    tokens: u64,
    walk_id_max: Option<u64>,
    // Convergecast (phase 4).
    parent_ports: BTreeSet<Port>,
    last_converged: Option<u64>,
    // Decision (phase 5).
    leader: bool,
    halted: bool,
}

impl IrrevocableProcess {
    /// Creates a node, drawing its ID and candidacy from `rng` exactly as
    /// Algorithm 1 lines 2–3 prescribe.
    pub fn new(params: ProtocolParams, rng: &mut StdRng) -> Self {
        let id = rng.gen_range(1..=params.id_space);
        let candidate = rng.gen_bool(params.candidate_probability);
        Self::with_candidacy(params, id, candidate)
    }

    /// Creates a node with forced ID/candidacy — used by the lemma-level
    /// experiments (e.g. a single-candidate cautious-broadcast run for
    /// Lemma 1) and by tests. Not part of the protocol itself.
    pub fn with_candidacy(params: ProtocolParams, id: u64, candidate: bool) -> Self {
        IrrevocableProcess {
            params,
            id,
            candidate,
            exec_order: Vec::new(),
            execs: BTreeMap::new(),
            buffers: BTreeMap::new(),
            overflow_execs: 0,
            tokens: 0,
            walk_id_max: if candidate { Some(id) } else { None },
            parent_ports: BTreeSet::new(),
            last_converged: None,
            leader: false,
            halted: false,
        }
    }

    /// The node's random ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the node is a candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate
    }

    /// Execution ids (candidate IDs) whose territory this node joined —
    /// the candidate's "broadcast territory" membership used by the
    /// Lemma 1/2 experiments.
    pub fn known_sources(&self) -> Vec<u64> {
        self.execs.keys().copied().collect()
    }

    /// Tree parent port for execution `src`, if this node is a member.
    pub fn tree_parent(&self, src: u64) -> Option<Port> {
        self.execs.get(&src).and_then(ExecState::parent)
    }

    /// Number of walk tokens currently resident.
    pub fn token_count(&self) -> u64 {
        self.tokens
    }

    /// Executions this node could not schedule into super-round slots
    /// (would require more parallel candidates than `4c·log n`; zero whp).
    pub fn overflow_executions(&self) -> u64 {
        self.overflow_execs
    }

    fn phase(&self, round: u64) -> Phase {
        let p = &self.params;
        if self.halted {
            Phase::Done
        } else if round < p.broadcast_rounds {
            Phase::Broadcast
        } else if round < p.broadcast_rounds + p.walk_rounds {
            Phase::Walk
        } else if round < p.broadcast_rounds + p.walk_rounds + p.converge_rounds {
            Phase::Converge
        } else {
            Phase::Decide
        }
    }

    fn absorb_inbox(&mut self, inbox: &[Incoming<IrrMsg>]) {
        for m in inbox {
            match &m.msg {
                IrrMsg::Cb { src, body } => {
                    if let Some(state) = self.execs.get_mut(src) {
                        let _ = state; // buffered for slot-time processing
                        self.buffers
                            .entry(*src)
                            .or_default()
                            .push((m.port, body.clone()));
                    } else if matches!(body, CbBody::Invite) {
                        // First invitation for an unknown execution: adopt
                        // the sender as parent (paper: the first inviter
                        // wins; later invites are handled by the state).
                        let mut state = ExecState::new_member(
                            *src,
                            m.port,
                            self.params.degree,
                            self.params.final_threshold,
                        );
                        state.set_discipline(self.params.report_discipline);
                        self.execs.insert(*src, state);
                        self.exec_order.push(*src);
                    }
                    // Non-invite messages for unknown executions cannot
                    // occur (only tree members are addressed); ignore.
                }
                IrrMsg::Walk { id_max, count } => {
                    self.tokens += count;
                    self.observe_walk_id(*id_max);
                }
                IrrMsg::Converge { id_max } => {
                    self.observe_walk_id(*id_max);
                }
            }
        }
    }

    fn observe_walk_id(&mut self, id: u64) {
        if self.walk_id_max.is_none_or(|cur| id > cur) {
            self.walk_id_max = Some(id);
        }
    }

    fn broadcast_round(&mut self, round: u64, rng: &mut StdRng, out: &mut OutCtx<'_, IrrMsg>) {
        if round == 0 && self.candidate {
            let mut root =
                ExecState::new_root(self.id, self.params.degree, self.params.final_threshold);
            root.set_discipline(self.params.report_discipline);
            self.execs.insert(self.id, root);
            self.exec_order.push(self.id);
        }
        let slot = (round % self.params.slots) as usize;
        if slot >= self.exec_order.len() {
            if self.exec_order.len() > self.params.slots as usize {
                self.overflow_execs = (self.exec_order.len() as u64) - self.params.slots;
            }
            return;
        }
        let src = self.exec_order[slot];
        let state = self.execs.get_mut(&src).expect("exec_order tracks execs");
        if let Some(pending) = self.buffers.remove(&src) {
            for (port, body) in pending {
                state.on_message(port, &body);
            }
        }
        for (port, body) in state.step(rng) {
            out.send(port, IrrMsg::Cb { src, body });
        }
    }

    fn walk_round(&mut self, first: bool, rng: &mut StdRng, out: &mut OutCtx<'_, IrrMsg>) {
        let degree = self.params.degree;
        let mut moving: Vec<u64> = vec![0; degree];
        if first {
            if !self.candidate {
                return;
            }
            // Algorithm 5 lines 4–6: the candidate launches x tokens to
            // uniformly random neighbors.
            for _ in 0..self.params.x {
                moving[rng.gen_range(0..degree)] += 1;
            }
        } else {
            // Lazy step: each resident token stays with probability 1/2.
            let resident = self.tokens;
            let mut stayed = 0u64;
            for _ in 0..resident {
                if rng.gen_bool(0.5) {
                    stayed += 1;
                } else {
                    moving[rng.gen_range(0..degree)] += 1;
                }
            }
            self.tokens = stayed;
        }
        let id_max = match self.walk_id_max {
            Some(id) => id,
            None => return, // no tokens can be here without an ID
        };
        for (port, count) in moving.into_iter().enumerate() {
            if count > 0 {
                out.send(port, IrrMsg::Walk { id_max, count });
            }
        }
    }

    fn converge_round(&mut self, first: bool, out: &mut OutCtx<'_, IrrMsg>) {
        if first {
            self.parent_ports = self.execs.values().filter_map(ExecState::parent).collect();
        }
        let Some(id_max) = self.walk_id_max else {
            return;
        };
        if self.last_converged == Some(id_max) {
            return;
        }
        self.last_converged = Some(id_max);
        for &p in &self.parent_ports {
            out.send(p, IrrMsg::Converge { id_max });
        }
    }
}

impl Process for IrrevocableProcess {
    type Msg = IrrMsg;
    type Output = NodeVerdict;

    fn round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<IrrMsg>],
        out: &mut OutCtx<'_, IrrMsg>,
    ) {
        debug_assert_eq!(ctx.degree, self.params.degree, "degree mismatch");
        self.absorb_inbox(inbox);
        let p = &self.params;
        match self.phase(ctx.round) {
            Phase::Broadcast => self.broadcast_round(ctx.round, ctx.rng, out),
            Phase::Walk => {
                let first = ctx.round == p.broadcast_rounds;
                self.walk_round(first, ctx.rng, out)
            }
            Phase::Converge => {
                let first = ctx.round == p.broadcast_rounds + p.walk_rounds;
                self.converge_round(first, out)
            }
            Phase::Decide => {
                // Algorithm 1 line 7: leader ⇔ own ID is the largest walk
                // ID observed (candidates only; walk IDs are candidate IDs).
                self.leader = self.candidate && self.walk_id_max == Some(self.id);
                self.halted = true;
            }
            Phase::Done => {}
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> NodeVerdict {
        NodeVerdict {
            candidate: self.candidate,
            id: self.id,
            leader: self.leader,
            observed_walk_max: self.walk_id_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irrevocable::IrrevocableConfig;
    use ale_graph::NetworkKnowledge;
    use rand::SeedableRng;

    fn params(degree: usize) -> ProtocolParams {
        let cfg = IrrevocableConfig::from_knowledge(NetworkKnowledge {
            n: 16,
            tmix: 4,
            phi: 0.5,
        });
        cfg.protocol_params(degree).unwrap()
    }

    /// Runs one round against a collector, returning the sends — the
    /// unit-test stand-in for the old `Outbox` return value.
    fn drive(
        proc: &mut IrrevocableProcess,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<IrrMsg>],
    ) -> Vec<(usize, IrrMsg)> {
        let mut sent = Vec::new();
        proc.round(ctx, inbox, &mut OutCtx::collector(ctx.degree, &mut sent));
        sent
    }

    #[test]
    fn candidate_creates_root_execution_at_round_zero() {
        let mut proc = IrrevocableProcess::with_candidacy(params(3), 99, true);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = NodeCtx {
            degree: 3,
            round: 0,
            rng: &mut rng,
        };
        drive(&mut proc, &mut ctx, &[]);
        assert_eq!(proc.known_sources(), vec![99]);
        assert!(!proc.is_halted());
    }

    #[test]
    fn invitation_creates_member_state() {
        let mut proc = IrrevocableProcess::with_candidacy(params(2), 5, false);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = NodeCtx {
            degree: 2,
            round: 0,
            rng: &mut rng,
        };
        let invite = Incoming {
            port: 1,
            msg: IrrMsg::Cb {
                src: 42,
                body: CbBody::Invite,
            },
        };
        drive(&mut proc, &mut ctx, &[invite]);
        assert_eq!(proc.known_sources(), vec![42]);
        assert_eq!(proc.tree_parent(42), Some(1));
    }

    #[test]
    fn walk_tokens_merge_and_track_max() {
        let mut proc = IrrevocableProcess::with_candidacy(params(2), 5, false);
        let mut rng = StdRng::seed_from_u64(0);
        let p = params(2);
        let walk_start = p.broadcast_rounds;
        let mut ctx = NodeCtx {
            degree: 2,
            round: walk_start + 1,
            rng: &mut rng,
        };
        let inbox = [
            Incoming {
                port: 0,
                msg: IrrMsg::Walk {
                    id_max: 7,
                    count: 3,
                },
            },
            Incoming {
                port: 1,
                msg: IrrMsg::Walk {
                    id_max: 11,
                    count: 2,
                },
            },
        ];
        let out = drive(&mut proc, &mut ctx, &inbox);
        // 5 tokens arrived; some stay, some move; all carry id 11.
        let moved: u64 = out
            .iter()
            .map(|(_, m)| match m {
                IrrMsg::Walk { count, .. } => *count,
                _ => 0,
            })
            .sum();
        assert_eq!(moved + proc.token_count(), 5);
        for (_, m) in &out {
            if let IrrMsg::Walk { id_max, .. } = m {
                assert_eq!(*id_max, 11);
            }
        }
    }

    #[test]
    fn candidate_launches_exactly_x_tokens() {
        let p = params(4);
        let mut proc = IrrevocableProcess::with_candidacy(p, 5, true);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = NodeCtx {
            degree: 4,
            round: p.broadcast_rounds,
            rng: &mut rng,
        };
        let out = drive(&mut proc, &mut ctx, &[]);
        let launched: u64 = out
            .iter()
            .map(|(_, m)| match m {
                IrrMsg::Walk { count, .. } => *count,
                _ => 0,
            })
            .sum();
        assert_eq!(launched, p.x);
    }

    #[test]
    fn converge_sends_only_on_change() {
        let p = params(2);
        let mut proc = IrrevocableProcess::with_candidacy(p, 5, false);
        // Join a tree first so there is a parent port.
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx0 = NodeCtx {
            degree: 2,
            round: 0,
            rng: &mut rng,
        };
        drive(
            &mut proc,
            &mut ctx0,
            &[Incoming {
                port: 0,
                msg: IrrMsg::Cb {
                    src: 42,
                    body: CbBody::Invite,
                },
            }],
        );
        let conv_start = p.broadcast_rounds + p.walk_rounds;
        // First converge round with a walk ID observed.
        let mut ctx1 = NodeCtx {
            degree: 2,
            round: conv_start,
            rng: &mut rng,
        };
        let out = drive(
            &mut proc,
            &mut ctx1,
            &[Incoming {
                port: 1,
                msg: IrrMsg::Walk {
                    id_max: 9,
                    count: 1,
                },
            }],
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, IrrMsg::Converge { id_max: 9 }));
        // Unchanged value: silence.
        let mut ctx2 = NodeCtx {
            degree: 2,
            round: conv_start + 1,
            rng: &mut rng,
        };
        assert!(drive(&mut proc, &mut ctx2, &[]).is_empty());
        // Larger value arrives: resend.
        let mut ctx3 = NodeCtx {
            degree: 2,
            round: conv_start + 2,
            rng: &mut rng,
        };
        let out = drive(
            &mut proc,
            &mut ctx3,
            &[Incoming {
                port: 1,
                msg: IrrMsg::Converge { id_max: 12 },
            }],
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, IrrMsg::Converge { id_max: 12 }));
    }

    #[test]
    fn decision_round_halts_and_decides() {
        let p = params(2);
        let total = p.broadcast_rounds + p.walk_rounds + p.converge_rounds;
        let mut cand = IrrevocableProcess::with_candidacy(p, 5, true);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = NodeCtx {
            degree: 2,
            round: total,
            rng: &mut rng,
        };
        drive(&mut cand, &mut ctx, &[]);
        assert!(cand.is_halted());
        // Candidate that never saw a bigger walk ID is the leader.
        assert!(cand.output().leader);

        let p2 = params(2);
        let mut loser = IrrevocableProcess::with_candidacy(p2, 5, true);
        let mut ctx2 = NodeCtx {
            degree: 2,
            round: total,
            rng: &mut rng,
        };
        drive(
            &mut loser,
            &mut ctx2,
            &[Incoming {
                port: 0,
                msg: IrrMsg::Converge { id_max: 999 },
            }],
        );
        assert!(loser.is_halted());
        assert!(!loser.output().leader);
        assert_eq!(loser.output().observed_walk_max, Some(999));
    }

    #[test]
    fn non_candidate_never_leads() {
        let p = params(2);
        let total = p.broadcast_rounds + p.walk_rounds + p.converge_rounds;
        let mut proc = IrrevocableProcess::with_candidacy(p, 5, false);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = NodeCtx {
            degree: 2,
            round: total,
            rng: &mut rng,
        };
        drive(&mut proc, &mut ctx, &[]);
        assert!(!proc.output().leader);
        assert!(!proc.output().candidate);
    }
}
