//! Wire messages of the irrevocable protocol (Algorithms 1–5).

use super::cautious::CbBody;
use ale_congest::message::{bits_for_u64, Payload};

/// All messages exchanged by
/// [`IrrevocableProcess`](super::process::IrrevocableProcess).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrrMsg {
    /// Cautious-broadcast control message for the execution rooted at the
    /// candidate with random ID `src`.
    Cb {
        /// Execution id (the source candidate's random ID).
        src: u64,
        /// The control body.
        body: CbBody,
    },
    /// Random-walk tokens: `count` fungible tokens carrying the largest
    /// walk ID seen by the sender (the paper's CONGEST encoding — only the
    /// dominant ID travels per link per round).
    Walk {
        /// Largest walk ID at the sender.
        id_max: u64,
        /// Number of tokens moving through this port this round.
        count: u64,
    },
    /// Convergecast of the largest walk ID along broadcast trees.
    Converge {
        /// Largest walk ID at the sender.
        id_max: u64,
    },
}

impl Payload for IrrMsg {
    fn bit_size(&self) -> usize {
        // 2 tag bits plus field widths.
        match self {
            IrrMsg::Cb { src, body } => 2 + bits_for_u64(*src) + body.body_bits(),
            IrrMsg::Walk { id_max, count } => 2 + bits_for_u64(*id_max) + bits_for_u64(*count),
            IrrMsg::Converge { id_max } => 2 + bits_for_u64(*id_max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_fields() {
        let small = IrrMsg::Walk {
            id_max: 1,
            count: 1,
        };
        let big = IrrMsg::Walk {
            id_max: u64::MAX,
            count: 1000,
        };
        assert!(big.bit_size() > small.bit_size());
        let cb = IrrMsg::Cb {
            src: 12345,
            body: CbBody::Size(77),
        };
        assert!(cb.bit_size() >= 2 + 14 + 3);
        let cv = IrrMsg::Converge { id_max: 255 };
        assert_eq!(cv.bit_size(), 2 + 8);
    }

    #[test]
    fn id_in_n4_fits_congest_budget_with_constant_factor() {
        // IDs live in {1..n^4}: 4·log2(n) bits. With budget factor 8 the
        // whole message fits in one CONGEST round.
        let n: u64 = 1 << 15;
        let id = n.pow(4);
        let msg = IrrMsg::Converge { id_max: id };
        let budget = ale_congest::message::congest_budget(n as usize, 8);
        assert!(msg.bit_size() <= budget, "{} > {budget}", msg.bit_size());
    }
}
