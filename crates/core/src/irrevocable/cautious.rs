//! The **Cautious Broadcast** per-execution state machine
//! (paper Algorithms 2–4).
//!
//! A candidate spans a bounded "territory" tree: growth is throttled by
//! doubling thresholds on *confirmed* subtree sizes, so the tree never
//! overshoots its size target `x·t_mix·Φ` by more than a factor of 2, and
//! every link carries only `O(1)` messages per threshold doubling — the two
//! facts behind Lemma 1's `Õ(x·t_mix)` message bound.
//!
//! The machine here is **per execution** (one broadcast source); a node runs
//! one instance per candidate it has heard from, multiplexed into
//! super-round slots by
//! [`IrrevocableProcess`](crate::irrevocable::process::IrrevocableProcess).
//!
//! Where the paper's pseudocode and prose diverge we follow the prose, which
//! the analysis relies on (see `DESIGN.md`):
//!
//! * subtree sizes are reported to the parent **on change/crossing**, not
//!   every round (prose: "once its confirmed number exceeds a threshold 2^i
//!   ... sends this number to its parent"), preserving the message bound;
//! * a parent re-activates exactly the children whose new confirmed numbers
//!   did *not* push it over its threshold (prose's legitimization rule),
//!   tracked here via believed-status bookkeeping.

use ale_graph::Port;
use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use std::collections::{BTreeMap, BTreeSet};

/// Per-execution control messages of cautious broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbBody {
    /// `⟨source⟩`: invitation to join this execution's tree.
    Invite,
    /// Confirmed subtree size reported by a child to its parent.
    Size(u64),
    /// Re-activation permit (parent → child).
    Activate,
    /// Growth pause (parent → child).
    Deactivate,
    /// Territory reached its final threshold; freeze the execution.
    Stop,
}

impl CbBody {
    /// Payload bits excluding the execution tag.
    pub fn body_bits(&self) -> usize {
        match self {
            CbBody::Size(s) => 3 + ale_congest::message::bits_for_u64(*s),
            _ => 3,
        }
    }
}

/// Searching status of a node within one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// May extend the tree through an unused port.
    Active,
    /// Paused, waiting for a re-activation permit.
    Passive,
    /// Execution frozen (final threshold reached somewhere).
    Stopped,
}

/// When a node reports its confirmed subtree size to its parent.
///
/// The paper's pseudocode (Algorithm 4 line 24) writes the size to the
/// parent every round; its message analysis ("a link is used a constant
/// number of times per each change of the thresholds") implies reporting
/// only on threshold crossings. The two readings trade message count
/// against territory-overshoot tightness — the `ablation_cautious` bench
/// quantifies the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportDiscipline {
    /// Report only when the subtree crosses the current threshold — the
    /// message-optimal reading used by default (`O(log)` reports/link).
    #[default]
    OnCrossing,
    /// Report whenever the subtree size changed — closer to the pseudocode
    /// (minus idempotent repeats); tighter overshoot, more messages.
    OnChange,
}

/// What this node last signalled to a neighbor in this execution — used to
/// send `Activate`/`Deactivate`/`Stop` transitions exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Believed {
    Active,
    Passive,
    Stopped,
}

/// One node's state in one cautious-broadcast execution.
#[derive(Debug, Clone)]
pub struct ExecState {
    /// The execution id (the source candidate's random ID).
    src: u64,
    /// Whether this node is the execution's source.
    is_root: bool,
    /// Port towards the parent (None at the root).
    parent: Option<Port>,
    /// Confirmed children and their last reported subtree sizes.
    sizes: BTreeMap<Port, u64>,
    /// Last status this node signalled per child port.
    believed: BTreeMap<Port, Believed>,
    /// Children whose latest report has not been legitimized yet.
    pending_confirm: BTreeSet<Port>,
    /// Ports never used in this execution (no message sent or received).
    avail: BTreeSet<Port>,
    /// Current doubling threshold.
    threshold: u64,
    /// Final territory threshold `⌈x·t_mix·Φ⌉`.
    final_threshold: u64,
    /// Own searching status.
    status: Status,
    /// Last subtree size reported to the parent.
    last_reported: Option<u64>,
    /// Stop wave still to be emitted.
    pending_stop: bool,
    /// Parent-report discipline (see [`ReportDiscipline`]).
    discipline: ReportDiscipline,
}

impl ExecState {
    /// Creates the root (candidate) state for execution `src`.
    pub fn new_root(src: u64, degree: usize, final_threshold: u64) -> Self {
        ExecState {
            src,
            is_root: true,
            parent: None,
            sizes: BTreeMap::new(),
            believed: BTreeMap::new(),
            pending_confirm: BTreeSet::new(),
            avail: (0..degree).collect(),
            threshold: 1,
            final_threshold: final_threshold.max(1),
            status: Status::Active,
            last_reported: None,
            pending_stop: false,
            discipline: ReportDiscipline::OnCrossing,
        }
    }

    /// Creates a member state after adopting the inviter on `parent` as
    /// parent (the first inviter wins, per the paper).
    pub fn new_member(src: u64, parent: Port, degree: usize, final_threshold: u64) -> Self {
        let mut avail: BTreeSet<Port> = (0..degree).collect();
        avail.remove(&parent);
        ExecState {
            src,
            is_root: false,
            parent: Some(parent),
            sizes: BTreeMap::new(),
            believed: BTreeMap::new(),
            pending_confirm: BTreeSet::new(),
            avail,
            threshold: 1,
            final_threshold: final_threshold.max(1),
            status: Status::Active,
            last_reported: None,
            pending_stop: false,
            discipline: ReportDiscipline::OnCrossing,
        }
    }

    /// Sets the parent-report discipline (ablation knob; the default is
    /// the message-optimal [`ReportDiscipline::OnCrossing`]).
    pub fn set_discipline(&mut self, discipline: ReportDiscipline) {
        self.discipline = discipline;
    }

    /// The execution id.
    pub fn src(&self) -> u64 {
        self.src
    }

    /// Whether this node is the source.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// Parent port, if any.
    pub fn parent(&self) -> Option<Port> {
        self.parent
    }

    /// Confirmed children ports.
    pub fn children(&self) -> impl Iterator<Item = Port> + '_ {
        self.sizes.keys().copied()
    }

    /// Current confirmed subtree size (this node plus confirmed reports).
    pub fn subtree(&self) -> u64 {
        1 + self.sizes.values().sum::<u64>()
    }

    /// Own status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Current doubling threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Handles one received message for this execution.
    pub fn on_message(&mut self, port: Port, body: &CbBody) {
        match body {
            CbBody::Invite => {
                // Another branch of the same tree (or a mutual invite);
                // the port has now been used in this execution.
                self.avail.remove(&port);
            }
            CbBody::Size(s) => {
                self.avail.remove(&port);
                // A child reports after crossing its threshold, at which
                // point it goes passive and waits for legitimization.
                self.sizes.insert(port, *s);
                self.believed.insert(port, Believed::Passive);
                if self.status != Status::Stopped {
                    self.pending_confirm.insert(port);
                }
            }
            CbBody::Activate => {
                if self.status != Status::Stopped {
                    self.status = Status::Active;
                }
            }
            CbBody::Deactivate => {
                if self.status != Status::Stopped {
                    self.status = Status::Passive;
                }
            }
            CbBody::Stop => {
                self.believed.insert(port, Believed::Stopped);
                if self.status != Status::Stopped {
                    self.status = Status::Stopped;
                    self.pending_stop = true;
                }
            }
        }
    }

    /// Executes one broadcast step (the paper's per-super-round action),
    /// returning messages to send.
    pub fn step(&mut self, rng: &mut StdRng) -> Vec<(Port, CbBody)> {
        let mut out = Vec::new();

        if self.status == Status::Stopped {
            if self.pending_stop {
                self.emit_stop(&mut out);
                self.pending_stop = false;
            }
            return out;
        }

        // Paper Algorithm 4 line 2: freeze once the threshold reaches the
        // territory target.
        if self.threshold >= self.final_threshold {
            self.status = Status::Stopped;
            self.emit_stop(&mut out);
            return out;
        }

        let subtree = self.subtree();
        if subtree >= self.threshold {
            // Crossing: report up (non-root), pause, double, and pause the
            // children until the new count is legitimized from above.
            if !self.is_root {
                if self.last_reported != Some(subtree) {
                    let parent = self.parent.expect("non-root always has a parent");
                    out.push((parent, CbBody::Size(subtree)));
                    self.last_reported = Some(subtree);
                }
                self.status = Status::Passive;
            }
            while self.threshold <= subtree {
                self.threshold *= 2;
            }
            let to_pause: Vec<Port> = self
                .sizes
                .keys()
                .copied()
                .filter(|p| self.believed.get(p) == Some(&Believed::Active))
                .collect();
            for p in to_pause {
                out.push((p, CbBody::Deactivate));
                self.believed.insert(p, Believed::Passive);
            }
            self.pending_confirm.clear();
            return out;
        }

        // Below threshold. Under the OnChange ablation discipline, report
        // any growth to the parent immediately (the pseudocode's line 24
        // behavior, deduplicated); the default OnCrossing discipline stays
        // silent until the next threshold crossing.
        if self.discipline == ReportDiscipline::OnChange
            && !self.is_root
            && self.last_reported != Some(subtree)
        {
            let parent = self.parent.expect("non-root always has a parent");
            out.push((parent, CbBody::Size(subtree)));
            self.last_reported = Some(subtree);
        }

        // Legitimize growth.
        let to_activate: Vec<Port> = if self.status == Status::Active {
            // Active nodes (roots after doubling, or nodes re-activated by
            // their parent) wake all paused children — this is the prose's
            // "sends re-activate message to its children".
            self.sizes
                .keys()
                .copied()
                .filter(|p| {
                    !matches!(
                        self.believed.get(p),
                        Some(Believed::Active) | Some(Believed::Stopped)
                    )
                })
                .collect()
        } else {
            // Passive nodes still legitimize freshly reported growth that
            // did not cross their threshold.
            self.pending_confirm
                .iter()
                .copied()
                .filter(|p| self.believed.get(p) != Some(&Believed::Stopped))
                .collect()
        };
        for p in to_activate {
            out.push((p, CbBody::Activate));
            self.believed.insert(p, Believed::Active);
        }
        self.pending_confirm.clear();

        // Active nodes extend the tree through one fresh random port.
        if self.status == Status::Active {
            if let Some(&p) = self.avail.iter().choose(rng) {
                self.avail.remove(&p);
                out.push((p, CbBody::Invite));
            }
        }
        out
    }

    fn emit_stop(&mut self, out: &mut Vec<(Port, CbBody)>) {
        let mut targets: Vec<Port> = self
            .sizes
            .keys()
            .copied()
            .filter(|p| self.believed.get(p) != Some(&Believed::Stopped))
            .collect();
        if let Some(parent) = self.parent {
            if self.believed.get(&parent) != Some(&Believed::Stopped) {
                targets.push(parent);
            }
        }
        for p in targets {
            out.push((p, CbBody::Stop));
            self.believed.insert(p, Believed::Stopped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn body_bits_reasonable() {
        assert_eq!(CbBody::Invite.body_bits(), 3);
        assert!(CbBody::Size(1000).body_bits() > CbBody::Size(1).body_bits());
    }

    #[test]
    fn root_first_steps_double_then_invite() {
        let mut r = rng();
        let mut root = ExecState::new_root(42, 3, 100);
        // Step 1: subtree = 1 >= threshold = 1: double to 2, no children.
        let out = root.step(&mut r);
        assert!(out.is_empty());
        assert_eq!(root.threshold(), 2);
        // Step 2: below threshold: invite one random port.
        let out = root.step(&mut r);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, CbBody::Invite));
        // Step 3: still below threshold, one more invite (different port).
        let out2 = root.step(&mut r);
        assert_eq!(out2.len(), 1);
        assert_ne!(out2[0].0, out[0].0, "ports must not repeat");
    }

    #[test]
    fn member_confirms_then_waits_for_permit() {
        let mut r = rng();
        let mut member = ExecState::new_member(42, 0, 2, 100);
        assert_eq!(member.parent(), Some(0));
        // First step: subtree 1 >= threshold 1: report Size(1), passive.
        let out = member.step(&mut r);
        assert_eq!(out, vec![(0, CbBody::Size(1))]);
        assert_eq!(member.status(), Status::Passive);
        assert_eq!(member.threshold(), 2);
        // Without a permit the member does not invite.
        let out = member.step(&mut r);
        assert!(out.is_empty());
        // Permit arrives: becomes active, invites through its free port.
        member.on_message(0, &CbBody::Activate);
        assert_eq!(member.status(), Status::Active);
        let out = member.step(&mut r);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], (1, CbBody::Invite));
    }

    #[test]
    fn parent_legitimizes_fresh_reports() {
        let mut r = rng();
        let mut root = ExecState::new_root(9, 4, 100);
        root.step(&mut r); // threshold 1 -> 2
                           // A child on port 2 reports size 1.
        root.on_message(2, &CbBody::Size(1));
        assert_eq!(root.subtree(), 2);
        // Next step: subtree 2 >= threshold 2: crossing — double, pause.
        let out = root.step(&mut r);
        assert_eq!(root.threshold(), 4);
        // The child is believed passive already (it paused after reporting),
        // so no deactivate is sent; pending confirmations are cleared.
        assert!(out.iter().all(|(_, b)| !matches!(b, CbBody::Deactivate)));
        // Following step (below threshold): the root re-activates the child
        // and invites a fresh port.
        let out = root.step(&mut r);
        let activates: Vec<_> = out
            .iter()
            .filter(|(_, b)| matches!(b, CbBody::Activate))
            .collect();
        assert_eq!(activates.len(), 1);
        assert_eq!(activates[0].0, 2);
        assert!(out.iter().any(|(_, b)| matches!(b, CbBody::Invite)));
    }

    #[test]
    fn passive_node_legitimizes_only_pending() {
        let mut r = rng();
        let mut node = ExecState::new_member(9, 0, 3, 100);
        node.step(&mut r); // reports Size(1), passive, threshold 2
        node.on_message(1, &CbBody::Size(1)); // grandchild joined through us?
                                              // subtree = 2 >= threshold 2: crossing again — reports up.
        let out = node.step(&mut r);
        assert!(out.contains(&(0, CbBody::Size(2))));
        assert_eq!(node.threshold(), 4);
        // Child reports growth that does NOT cross (threshold now 4).
        node.on_message(1, &CbBody::Size(2));
        let out = node.step(&mut r);
        // Passive, but must legitimize the fresh report.
        assert_eq!(out, vec![(1, CbBody::Activate)]);
        // And does not invite while passive.
        assert!(node.step(&mut r).is_empty());
    }

    #[test]
    fn final_threshold_triggers_stop_wave() {
        let mut r = rng();
        let mut root = ExecState::new_root(9, 2, 4);
        root.on_message(0, &CbBody::Size(5)); // huge child report
                                              // Crossing pushes threshold past final (1 -> 8 ≥ 4).
        root.step(&mut r);
        assert!(root.threshold() >= 4);
        let out = root.step(&mut r);
        assert!(
            out.contains(&(0, CbBody::Stop)),
            "root must freeze its tree: {out:?}"
        );
        assert_eq!(root.status(), Status::Stopped);
        // Stop is not re-sent.
        assert!(root.step(&mut r).is_empty());
    }

    #[test]
    fn stop_reception_propagates_once() {
        let mut r = rng();
        let mut node = ExecState::new_member(9, 0, 3, 100);
        node.step(&mut r); // join + report
        node.on_message(0, &CbBody::Activate);
        node.step(&mut r); // invite on some port
        node.on_message(1, &CbBody::Size(1)); // child on port 1
        node.on_message(0, &CbBody::Stop); // parent says stop
        assert_eq!(node.status(), Status::Stopped);
        let out = node.step(&mut r);
        // Propagates to the child but NOT back to the parent.
        assert!(out.contains(&(1, CbBody::Stop)));
        assert!(!out.iter().any(|(p, _)| *p == 0));
        assert!(node.step(&mut r).is_empty());
    }

    #[test]
    fn invites_never_reuse_ports_and_exhaust() {
        let mut r = rng();
        let mut root = ExecState::new_root(1, 3, 1000);
        let mut invited = BTreeSet::new();
        for _ in 0..50 {
            for (p, b) in root.step(&mut r) {
                if matches!(b, CbBody::Invite) {
                    assert!(invited.insert(p), "port {p} reinvited");
                }
            }
        }
        assert_eq!(invited.len(), 3, "all ports eventually tried");
    }

    #[test]
    fn invite_reception_consumes_port() {
        let mut r = rng();
        let mut root = ExecState::new_root(1, 2, 1000);
        root.on_message(0, &CbBody::Invite); // same-tree collision
        let mut invited = BTreeSet::new();
        for _ in 0..20 {
            for (p, b) in root.step(&mut r) {
                if matches!(b, CbBody::Invite) {
                    invited.insert(p);
                }
            }
        }
        assert_eq!(invited, BTreeSet::from([1]), "port 0 must not be invited");
    }

    #[test]
    fn subtree_counts_are_monotone_under_reports() {
        let mut node = ExecState::new_member(3, 0, 5, 1000);
        assert_eq!(node.subtree(), 1);
        node.on_message(1, &CbBody::Size(2));
        node.on_message(2, &CbBody::Size(3));
        assert_eq!(node.subtree(), 6);
        node.on_message(1, &CbBody::Size(4)); // child grew
        assert_eq!(node.subtree(), 8);
        assert_eq!(node.children().count(), 2);
    }

    #[test]
    fn on_change_discipline_reports_every_growth() {
        let mut r = rng();
        let mut node = ExecState::new_member(9, 0, 4, 1000);
        node.set_discipline(ReportDiscipline::OnChange);
        node.step(&mut r); // crossing: Size(1), threshold 2, passive
        node.on_message(0, &CbBody::Activate);
        // Child reports 1 → subtree 2 ≥ threshold 2: crossing path reports.
        node.on_message(1, &CbBody::Size(1));
        let out = node.step(&mut r);
        assert!(out.contains(&(0, CbBody::Size(2))));
        // Child grows to 2 → subtree 3 < threshold 4: the OnChange
        // discipline still reports; OnCrossing would stay silent.
        node.on_message(1, &CbBody::Size(2));
        let out = node.step(&mut r);
        assert!(
            out.contains(&(0, CbBody::Size(3))),
            "OnChange must report sub-threshold growth: {out:?}"
        );
        // And a control: OnCrossing stays silent in the same situation.
        let mut quiet = ExecState::new_member(9, 0, 4, 1000);
        quiet.step(&mut r);
        quiet.on_message(0, &CbBody::Activate);
        quiet.on_message(1, &CbBody::Size(1));
        quiet.step(&mut r); // crossing report
        quiet.on_message(1, &CbBody::Size(2));
        let out = quiet.step(&mut r);
        assert!(
            !out.iter().any(|(_, b)| matches!(b, CbBody::Size(_))),
            "OnCrossing must not report below threshold: {out:?}"
        );
    }

    #[test]
    fn stopped_state_ignores_status_flips() {
        let mut node = ExecState::new_member(3, 0, 2, 1000);
        node.on_message(0, &CbBody::Stop);
        node.on_message(0, &CbBody::Activate);
        assert_eq!(node.status(), Status::Stopped);
        node.on_message(0, &CbBody::Deactivate);
        assert_eq!(node.status(), Status::Stopped);
    }
}
