//! BFS spanning-tree construction rooted at the elected leader
//! (the "tree construction" extension of Section 3).
//!
//! Two phases on the anonymous CONGEST substrate:
//!
//! 1. **Flood**: the root floods a `Join(level)` wave; each node adopts the
//!    first sender as parent and records its level — `O(m)` messages,
//!    `O(D)` rounds.
//! 2. **Echo**: leaves report subtree size 1; internal nodes report
//!    `1 + Σ children` once all confirmed children have reported — `O(n)`
//!    messages, `O(D)` additional rounds. The root learns `n`, which is
//!    how an elected leader can *verify* a believed network size.
//!
//! The resulting parent pointers support `O(n)`-message broadcast and
//! convergecast thereafter — the reductions the paper alludes to.

use crate::error::CoreError;
use ale_congest::message::bits_for_u64;
use ale_congest::{congest_budget, Incoming, Network, NodeCtx, OutCtx, Payload, Process};
use ale_graph::{Graph, Port};

/// Tree-construction messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMsg {
    /// Flood wave carrying the sender's level.
    Join {
        /// Sender's BFS level.
        level: u64,
    },
    /// Child → parent: "my subtree is complete and has `size` nodes".
    Echo {
        /// Subtree size.
        size: u64,
    },
    /// Parent → child acknowledgement of adoption (so nodes know which
    /// neighbors are children vs mere flood duplicates).
    Adopt,
}

impl Payload for TreeMsg {
    fn bit_size(&self) -> usize {
        match self {
            TreeMsg::Join { level } => 2 + bits_for_u64(*level),
            TreeMsg::Echo { size } => 2 + bits_for_u64(*size),
            TreeMsg::Adopt => 2,
        }
    }
}

/// Per-node view of the constructed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Parent port (None at the root).
    pub parent: Option<Port>,
    /// BFS level (0 at the root).
    pub level: Option<u64>,
    /// Size of this node's subtree (populated by the echo phase).
    pub subtree_size: Option<u64>,
    /// Child ports.
    pub children: Vec<Port>,
}

/// Aggregate outcome of tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeOutcome {
    /// Per-node views, indexed by host-side node id.
    pub nodes: Vec<TreeNode>,
    /// The size the root counted (should equal `n`).
    pub root_count: Option<u64>,
}

#[derive(Debug, Clone)]
struct TreeProcess {
    rounds: u64,
    parent: Option<Port>,
    level: Option<u64>,
    // Ports we sent Join to and who adopted us (confirmed children).
    children: Vec<Port>,
    // Ports that sent us Join after we already had a parent (non-children
    // neighbors in the tree sense); used to know when echo can fire:
    // every neighbor is eventually parent, child, or co-flooded.
    resolved_ports: Vec<bool>,
    pending_adopt: Option<Port>,
    flooded: bool,
    echo_sizes: Vec<Option<u64>>, // per child port index
    echoed: bool,
    subtree: Option<u64>,
    halted: bool,
}

impl TreeProcess {
    fn new(is_root: bool, degree: usize, rounds: u64) -> Self {
        TreeProcess {
            rounds,
            parent: None,
            level: if is_root { Some(0) } else { None },
            children: Vec::new(),
            resolved_ports: vec![false; degree],
            pending_adopt: None,
            flooded: false,
            echo_sizes: Vec::new(),
            echoed: false,
            subtree: None,
            halted: false,
        }
    }

    fn try_echo(&mut self) -> Option<u64> {
        if self.echoed || !self.flooded {
            return None;
        }
        // All ports must be resolved (we know who our children are — they
        // sent Adopt...no: we adopt children when THEY echo or adopt us).
        // Echo fires when every confirmed child has reported.
        if self
            .echo_sizes
            .iter()
            .zip(&self.children)
            .any(|(s, _)| s.is_none())
        {
            return None;
        }
        // And all neighbor ports are resolved (parent / co-flooded / child),
        // so no more children can appear.
        if self.resolved_ports.iter().any(|r| !r) {
            return None;
        }
        let size = 1 + self.echo_sizes.iter().map(|s| s.unwrap_or(0)).sum::<u64>();
        self.echoed = true;
        self.subtree = Some(size);
        Some(size)
    }
}

impl Process for TreeProcess {
    type Msg = TreeMsg;
    type Output = TreeNode;

    fn round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<TreeMsg>],
        out: &mut OutCtx<'_, TreeMsg>,
    ) {
        for m in inbox {
            match m.msg {
                TreeMsg::Join { level } => {
                    self.resolved_ports[m.port] = true;
                    if self.level.is_none() {
                        self.level = Some(level + 1);
                        self.parent = Some(m.port);
                        self.pending_adopt = Some(m.port);
                    }
                }
                TreeMsg::Adopt => {
                    // The neighbor on this port became our child.
                    self.resolved_ports[m.port] = true;
                    self.children.push(m.port);
                    self.echo_sizes.push(None);
                }
                TreeMsg::Echo { size } => {
                    if let Some(idx) = self.children.iter().position(|&c| c == m.port) {
                        self.echo_sizes[idx] = Some(size);
                    }
                }
            }
        }

        if ctx.round >= self.rounds {
            self.halted = true;
            return;
        }

        if let Some(p) = self.pending_adopt.take() {
            out.send(p, TreeMsg::Adopt);
        }

        if !self.flooded {
            if let Some(level) = self.level {
                self.flooded = true;
                // Mark the parent port resolved; flood the rest.
                if let Some(pp) = self.parent {
                    self.resolved_ports[pp] = true;
                }
                for p in 0..ctx.degree {
                    if Some(p) != self.parent {
                        // Port conflict with the Adopt above is impossible:
                        // Adopt goes to the parent, Join to non-parents.
                        out.send(p, TreeMsg::Join { level });
                    }
                }
                return;
            }
        }

        if let Some(size) = self.try_echo() {
            if let Some(pp) = self.parent {
                out.send(pp, TreeMsg::Echo { size });
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> TreeNode {
        TreeNode {
            parent: self.parent,
            level: self.level,
            subtree_size: self.subtree,
            children: self.children.clone(),
        }
    }
}

/// Builds a BFS tree rooted at `root` and runs the echo phase.
///
/// `rounds` should be at least `2·D + 4`; use `2·(n − 1) + 4` when only
/// `n` is known.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for out-of-range root or zero rounds;
/// simulation errors are propagated.
pub fn run_tree_construction(
    graph: &Graph,
    root: usize,
    rounds: u64,
    seed: u64,
) -> Result<TreeOutcome, CoreError> {
    if root >= graph.n() {
        return Err(CoreError::InvalidConfig {
            reason: format!("root {root} out of range for n = {}", graph.n()),
        });
    }
    if rounds == 0 {
        return Err(CoreError::InvalidConfig {
            reason: "round budget must be positive".into(),
        });
    }
    let budget = congest_budget(graph.n(), 8);
    let procs: Vec<TreeProcess> = (0..graph.n())
        .map(|v| TreeProcess::new(v == root, graph.degree(v), rounds))
        .collect();
    let mut net = Network::new(graph, procs, seed, budget)?;
    net.run_to_halt(rounds + 4)?;
    let nodes: Vec<TreeNode> = net.outputs();
    let root_count = nodes[root].subtree_size;
    Ok(TreeOutcome { nodes, root_count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;

    fn tree_on(g: &Graph, root: usize) -> TreeOutcome {
        run_tree_construction(g, root, 2 * g.n() as u64 + 4, 1).unwrap()
    }

    #[test]
    fn levels_match_bfs_distances() {
        let g = generators::grid2d(4, 4, false).unwrap();
        let out = tree_on(&g, 5);
        let bfs = g.bfs_distances(5);
        for (v, node) in out.nodes.iter().enumerate() {
            assert_eq!(node.level, Some(bfs[v] as u64), "node {v} level");
        }
    }

    #[test]
    fn root_counts_the_whole_network() {
        for g in [
            generators::cycle(11).unwrap(),
            generators::complete(9).unwrap(),
            generators::binary_tree(13).unwrap(),
            generators::barbell(5).unwrap(),
        ] {
            let out = tree_on(&g, 0);
            assert_eq!(
                out.root_count,
                Some(g.n() as u64),
                "root must count n = {}",
                g.n()
            );
        }
    }

    #[test]
    fn parent_pointers_form_a_tree() {
        let g = generators::random_regular(20, 3, 4).unwrap();
        let out = tree_on(&g, 3);
        let mut edges = 0;
        for (v, node) in out.nodes.iter().enumerate() {
            if v == 3 {
                assert_eq!(node.parent, None);
                continue;
            }
            let p = node.parent.expect("non-root has a parent");
            let u = g.port_target(v, p);
            // Parent is one level up.
            assert_eq!(
                out.nodes[u].level.unwrap() + 1,
                node.level.unwrap(),
                "node {v}'s parent must be one level up"
            );
            edges += 1;
        }
        assert_eq!(edges, g.n() - 1, "a tree has n-1 edges");
    }

    #[test]
    fn children_lists_are_consistent_with_parents() {
        let g = generators::cycle(8).unwrap();
        let out = tree_on(&g, 0);
        for (v, node) in out.nodes.iter().enumerate() {
            for &c in &node.children {
                let u = g.port_target(v, c);
                let back = g.reverse_port(v, c);
                assert_eq!(
                    out.nodes[u].parent,
                    Some(back),
                    "child {u} must point back to {v}"
                );
            }
        }
    }

    #[test]
    fn subtree_sizes_add_up() {
        let g = generators::binary_tree(15).unwrap();
        let out = tree_on(&g, 0);
        for (v, node) in out.nodes.iter().enumerate() {
            let kids: u64 = node
                .children
                .iter()
                .map(|&c| out.nodes[g.port_target(v, c)].subtree_size.unwrap())
                .sum();
            assert_eq!(node.subtree_size, Some(kids + 1));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::cycle(5).unwrap();
        assert!(run_tree_construction(&g, 7, 10, 0).is_err());
        assert!(run_tree_construction(&g, 1, 0, 0).is_err());
    }

    #[test]
    fn msg_sizes() {
        assert!(TreeMsg::Join { level: 100 }.bit_size() > TreeMsg::Adopt.bit_size());
        assert_eq!(TreeMsg::Adopt.bit_size(), 2);
    }
}
