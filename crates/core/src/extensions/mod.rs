//! Post-election extensions the paper points to (Section 3): "Some of the
//! results above are extended to other problems, such as Broadcast, tree
//! construction and explicit Leader Election, once a leader has been
//! elected."
//!
//! These are the standard reductions, built on the same anonymous CONGEST
//! substrate:
//!
//! * [`explicit`] — turn an implicit election into an explicit one: the
//!   leader floods its random ID; every node learns the leader's ID and
//!   its own BFS distance to it. `O(m)` messages, `O(D)` rounds.
//! * [`tree`] — BFS spanning-tree construction rooted at the leader:
//!   every non-leader learns its parent port, level, and subtree size
//!   (via a convergecast echo). The tree enables `O(n)`-message broadcast
//!   afterwards.

pub mod explicit;
pub mod tree;

pub use explicit::{run_explicit_phase, ExplicitOutcome};
pub use tree::{run_tree_construction, TreeNode, TreeOutcome};
