//! Explicit leader election: flood the elected leader's ID so every node
//! learns it (the implicit → explicit reduction of Section 3).
//!
//! Input: each node knows whether it is the leader (the elected node's
//! flag from the irrevocable protocol) and an upper bound on the diameter
//! (computable from the known `n` as `n − 1`, or supplied exactly).
//! The leader floods `⟨its ID⟩`; nodes adopt the first value heard and
//! forward once — `O(m)` messages, `O(D)` rounds, `O(log n)` bits per
//! message.

use crate::error::CoreError;
use ale_congest::message::bits_for_u64;
use ale_congest::{congest_budget, Incoming, Network, NodeCtx, OutCtx, Payload, Process};
use ale_graph::Graph;

/// Flood message: the leader's ID plus hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderAnnounce {
    /// The leader's random ID.
    pub leader_id: u64,
    /// Hops travelled so far.
    pub distance: u64,
}

impl Payload for LeaderAnnounce {
    fn bit_size(&self) -> usize {
        bits_for_u64(self.leader_id) + bits_for_u64(self.distance)
    }
}

/// Per-node result of the explicit phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitOutcome {
    /// The leader's ID as learned by this node (None = never reached —
    /// cannot happen on a connected graph with enough rounds).
    pub leader_id: Option<u64>,
    /// BFS distance to the leader (hops the flood travelled).
    pub distance: Option<u64>,
}

/// One node of the explicit-election flood.
#[derive(Debug, Clone)]
struct ExplicitProcess {
    is_leader: bool,
    own_id: u64,
    rounds: u64,
    learned: Option<LeaderAnnounce>,
    forwarded: bool,
    halted: bool,
}

impl Process for ExplicitProcess {
    type Msg = LeaderAnnounce;
    type Output = ExplicitOutcome;

    fn round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<LeaderAnnounce>],
        out: &mut OutCtx<'_, LeaderAnnounce>,
    ) {
        for m in inbox {
            if self.learned.is_none() {
                self.learned = Some(m.msg);
            }
        }
        if ctx.round >= self.rounds {
            self.halted = true;
            return;
        }
        if ctx.round == 0 && self.is_leader {
            self.learned = Some(LeaderAnnounce {
                leader_id: self.own_id,
                distance: 0,
            });
            self.forwarded = true;
            out.broadcast(LeaderAnnounce {
                leader_id: self.own_id,
                distance: 1,
            });
            return;
        }
        if !self.forwarded {
            if let Some(a) = self.learned {
                self.forwarded = true;
                out.broadcast(LeaderAnnounce {
                    leader_id: a.leader_id,
                    distance: a.distance + 1,
                });
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> ExplicitOutcome {
        ExplicitOutcome {
            leader_id: self.learned.map(|a| a.leader_id),
            distance: self.learned.map(|a| a.distance),
        }
    }
}

/// Runs the explicit phase after an election: `leader` is the elected
/// node (host-side id), `leader_id` its random ID, `diameter_bound` the
/// flood duration.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when `leader` is out of range or the bound
/// is zero; simulation errors are propagated.
pub fn run_explicit_phase(
    graph: &Graph,
    leader: usize,
    leader_id: u64,
    diameter_bound: u64,
    seed: u64,
) -> Result<Vec<ExplicitOutcome>, CoreError> {
    if leader >= graph.n() {
        return Err(CoreError::InvalidConfig {
            reason: format!("leader {leader} out of range for n = {}", graph.n()),
        });
    }
    if diameter_bound == 0 {
        return Err(CoreError::InvalidConfig {
            reason: "diameter bound must be positive".into(),
        });
    }
    let budget = congest_budget(graph.n(), 8);
    let procs: Vec<ExplicitProcess> = (0..graph.n())
        .map(|v| ExplicitProcess {
            is_leader: v == leader,
            own_id: leader_id,
            rounds: diameter_bound + 1,
            learned: None,
            forwarded: false,
            halted: false,
        })
        .collect();
    let mut net = Network::new(graph, procs, seed, budget)?;
    net.run_to_halt(diameter_bound + 4)?;
    Ok(net.outputs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;

    #[test]
    fn every_node_learns_the_leader() {
        let g = generators::grid2d(4, 5, false).unwrap();
        let outs = run_explicit_phase(&g, 7, 12345, g.diameter() as u64, 3).unwrap();
        for (v, o) in outs.iter().enumerate() {
            assert_eq!(o.leader_id, Some(12345), "node {v} missed the flood");
        }
    }

    #[test]
    fn distances_match_bfs() {
        let g = generators::cycle(9).unwrap();
        let leader = 2usize;
        let outs = run_explicit_phase(&g, leader, 7, g.diameter() as u64, 1).unwrap();
        let bfs = g.bfs_distances(leader);
        for (v, o) in outs.iter().enumerate() {
            assert_eq!(
                o.distance,
                Some(bfs[v] as u64),
                "node {v}: flood distance must equal BFS distance"
            );
        }
    }

    #[test]
    fn message_cost_is_linear_in_edges() {
        // Each node forwards exactly once: ≤ 2m messages total.
        let g = generators::complete(10).unwrap();
        let budget = congest_budget(g.n(), 8);
        let procs: Vec<ExplicitProcess> = (0..g.n())
            .map(|v| ExplicitProcess {
                is_leader: v == 0,
                own_id: 5,
                rounds: 4,
                learned: None,
                forwarded: false,
                halted: false,
            })
            .collect();
        let mut net = Network::new(&g, procs, 0, budget).unwrap();
        net.run_to_halt(10).unwrap();
        assert!(net.metrics().messages <= 2 * g.m() as u64);
    }

    #[test]
    fn announce_payload_size() {
        let a = LeaderAnnounce {
            leader_id: 255,
            distance: 3,
        };
        assert_eq!(a.bit_size(), 8 + 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::cycle(5).unwrap();
        assert!(run_explicit_phase(&g, 9, 1, 3, 0).is_err());
        assert!(run_explicit_phase(&g, 1, 1, 0, 0).is_err());
    }
}
