//! Election outcomes and their verification.
//!
//! Both protocols (and the baselines in `ale-baselines`) report an
//! [`ElectionOutcome`]: who raised the leader flag, who was a candidate,
//! and what the run cost — the quantities Definitions 1 and 2 and
//! Theorems 1 and 3 of the paper talk about.

use ale_congest::{Metrics, RunStatus};
use ale_graph::NodeId;

/// The result of running a leader-election protocol on a network.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectionOutcome {
    /// Nodes whose leader flag is raised (host-side ids).
    pub leaders: Vec<NodeId>,
    /// Nodes that stood as candidates (empty for protocols without an
    /// explicit candidacy step).
    pub candidates: Vec<NodeId>,
    /// Cost accounting from the simulator.
    pub metrics: Metrics,
    /// Why the run stopped.
    pub status: RunStatus,
}

impl ElectionOutcome {
    /// Creates an outcome from its parts.
    pub fn new(
        leaders: Vec<NodeId>,
        candidates: Vec<NodeId>,
        metrics: Metrics,
        status: RunStatus,
    ) -> Self {
        ElectionOutcome {
            leaders,
            candidates,
            metrics,
            status,
        }
    }

    /// The elected leader, if the election produced exactly one.
    pub fn unique_leader(&self) -> Option<NodeId> {
        match self.leaders.as_slice() {
            [l] => Some(*l),
            _ => None,
        }
    }

    /// Number of nodes with a raised flag (the paper's success criterion is
    /// exactly one, with high probability).
    pub fn leader_count(&self) -> usize {
        self.leaders.len()
    }

    /// True when exactly one leader was elected.
    pub fn is_successful(&self) -> bool {
        self.leaders.len() == 1
    }

    /// Convenience accessor mirroring the examples in the README.
    pub fn leaders(&self) -> &[NodeId] {
        &self.leaders
    }
}

/// Success-rate summary across repeated seeded runs — the unit the
/// experiment harness reports ("whp" claims become empirical rates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SuccessStats {
    /// Total runs.
    pub runs: usize,
    /// Runs with exactly one leader.
    pub unique: usize,
    /// Runs with no leader at all.
    pub none: usize,
    /// Runs with more than one leader (split brain).
    pub multiple: usize,
}

impl SuccessStats {
    /// Folds one outcome into the tally.
    pub fn record(&mut self, outcome: &ElectionOutcome) {
        self.runs += 1;
        match outcome.leader_count() {
            0 => self.none += 1,
            1 => self.unique += 1,
            _ => self.multiple += 1,
        }
    }

    /// Fraction of runs with exactly one leader.
    pub fn success_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.unique as f64 / self.runs as f64
        }
    }

    /// Fraction of runs with more than one leader.
    pub fn split_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.multiple as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(leaders: Vec<NodeId>) -> ElectionOutcome {
        ElectionOutcome::new(leaders, vec![], Metrics::new(32), RunStatus::AllHalted)
    }

    #[test]
    fn unique_leader_detection() {
        assert_eq!(outcome(vec![3]).unique_leader(), Some(3));
        assert_eq!(outcome(vec![]).unique_leader(), None);
        assert_eq!(outcome(vec![1, 2]).unique_leader(), None);
        assert!(outcome(vec![5]).is_successful());
        assert!(!outcome(vec![1, 2]).is_successful());
        assert_eq!(outcome(vec![1, 2]).leader_count(), 2);
    }

    #[test]
    fn stats_tally() {
        let mut s = SuccessStats::default();
        s.record(&outcome(vec![1]));
        s.record(&outcome(vec![1]));
        s.record(&outcome(vec![]));
        s.record(&outcome(vec![1, 2, 3]));
        assert_eq!(s.runs, 4);
        assert_eq!(s.unique, 2);
        assert_eq!(s.none, 1);
        assert_eq!(s.multiple, 1);
        assert!((s.success_rate() - 0.5).abs() < 1e-12);
        assert!((s.split_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SuccessStats::default();
        assert_eq!(s.success_rate(), 0.0);
        assert_eq!(s.split_rate(), 0.0);
    }
}
