//! Wire messages of the revocable protocol (Algorithm 7).

use super::record::LeaderRecord;
use ale_congest::message::Payload;

/// Messages of the `Avg` procedure.
#[derive(Debug, Clone, PartialEq)]
pub enum RevMsg {
    /// Diffusion-phase broadcast: `⟨Φ, q, c, id_ldr, K_ldr⟩`.
    Diffuse {
        /// Potential value. Conceptually an exact rational with denominator
        /// `(2k^{1+ε})^round`; carried as `f64` (see DESIGN.md) while
        /// `pot_bits` charges the paper's exact serialized width.
        potential: f64,
        /// Whether the sender has flagged the estimate as low.
        low: bool,
        /// Whether the sender is/was a white node this iteration.
        white: bool,
        /// The sender's current leader view.
        view: Option<LeaderRecord>,
        /// Serialized width of the potential in bits at this diffusion
        /// round: `round·⌈log₂(2k^{1+ε})⌉` (paper's bit-by-bit accounting).
        pot_bits: usize,
    },
    /// Dissemination-phase broadcast: `⟨q, c, id_ldr, K_ldr⟩`.
    Disseminate {
        /// Low-estimate flag.
        low: bool,
        /// White-node-seen flag.
        white: bool,
        /// The sender's current leader view.
        view: Option<LeaderRecord>,
    },
}

impl Payload for RevMsg {
    fn bit_size(&self) -> usize {
        match self {
            RevMsg::Diffuse { view, pot_bits, .. } => {
                1 + 2 + pot_bits + 1 + view.map_or(0, |r| r.bit_size())
            }
            RevMsg::Disseminate { view, .. } => 1 + 2 + 1 + view.map_or(0, |r| r.bit_size()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffuse_grows_with_round_index() {
        let early = RevMsg::Diffuse {
            potential: 0.5,
            low: false,
            white: false,
            view: None,
            pot_bits: 10,
        };
        let late = RevMsg::Diffuse {
            potential: 0.5,
            low: false,
            white: false,
            view: None,
            pot_bits: 500,
        };
        assert_eq!(late.bit_size() - early.bit_size(), 490);
    }

    #[test]
    fn disseminate_is_small() {
        let m = RevMsg::Disseminate {
            low: true,
            white: false,
            view: Some(LeaderRecord::new(8, 12345)),
        };
        // Flags + record only.
        assert!(m.bit_size() < 64);
        let empty = RevMsg::Disseminate {
            low: false,
            white: false,
            view: None,
        };
        assert!(empty.bit_size() <= 4);
    }
}
