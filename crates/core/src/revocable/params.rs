//! Parameter functions of the revocable protocol (Theorem 3 / Corollary 1).
//!
//! The paper fixes, for estimate `k` and constants `0 < ε ≤ 1`, `0 < ξ < 1`:
//!
//! * `p(k) = ln 2 / k^{1+ε}` — white-node probability;
//! * `τ(k) = 1 − 1/(k^{1+ε} − 1)` — potential threshold;
//! * `f(k) = (4√2/(√2−1)²)·ln(k^{1+ε}/ξ)` — certification iterations;
//! * `r(k) = (8k^{2(1+ε)}/i(G)²)·log(k^{2(1+ε)}) + k^{1+ε}·log(2k)` —
//!   diffusion rounds when the isoperimetric number `i(G)` is known
//!   (Theorem 3); the blind variant (Corollary 1) substitutes the universal
//!   lower bound `i(G) ≥ 2/k`, giving
//!   `r(k) = 2k^{2(2+ε)}·log(k^{2(1+ε)}) + k^{1+ε}·log(2k)`;
//! * dissemination length `k^{1+ε}`;
//! * ID range `[1, k^{4(1+ε)}·log⁴(4k)]`.
//!
//! Paper-exact parameters are astronomically expensive (`Õ(n^{8+4ε})`
//! rounds for the blind variant), so [`RevocableParams`] also exposes
//! **documented scale knobs** (`r_scale`, `f_scale`, `diss_scale`) that
//! shrink the constants while preserving every functional form in `k` —
//! the mode the shape experiments use (see DESIGN.md "Substitutions" and
//! EXPERIMENTS.md, which reports the mode of every run).

use crate::error::CoreError;

/// The paper's constant `4√2/(√2−1)²` in `f(k)`.
pub fn f_constant() -> f64 {
    4.0 * std::f64::consts::SQRT_2 / (std::f64::consts::SQRT_2 - 1.0).powi(2)
}

/// Parameters of Blind Leader Election with Certificates via Diffusion with
/// Thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevocableParams {
    /// The paper's `ε ∈ (0, 1]`.
    pub eps: f64,
    /// The paper's failure-budget `ξ ∈ (0, 1)`.
    pub xi: f64,
    /// Known isoperimetric number `i(G)` (Theorem 3 variant); `None` runs
    /// the blind Corollary 1 variant with `i(G) → 2/k`.
    pub ig: Option<f64>,
    /// Multiplier on `r(k)` (1.0 = paper-exact).
    pub r_scale: f64,
    /// Multiplier on `f(k)` (1.0 = paper-exact).
    pub f_scale: f64,
    /// Multiplier on the dissemination length (1.0 = paper-exact).
    pub diss_scale: f64,
    /// CONGEST budget factor for metering.
    pub congest_factor: usize,
}

impl RevocableParams {
    /// Paper-exact blind parameters (Corollary 1). Tractable only for tiny
    /// networks; see the module docs.
    pub fn paper_blind(eps: f64, xi: f64) -> Self {
        RevocableParams {
            eps,
            xi,
            ig: None,
            r_scale: 1.0,
            f_scale: 1.0,
            diss_scale: 1.0,
            congest_factor: 8,
        }
    }

    /// Paper-exact parameters with known isoperimetric number (Theorem 3).
    pub fn paper_with_ig(eps: f64, xi: f64, ig: f64) -> Self {
        RevocableParams {
            ig: Some(ig),
            ..Self::paper_blind(eps, xi)
        }
    }

    /// Applies scale knobs (shape-experiment mode). Scales must be in
    /// `(0, 1]`; functional forms in `k` are unchanged.
    pub fn with_scales(mut self, r_scale: f64, f_scale: f64, diss_scale: f64) -> Self {
        self.r_scale = r_scale;
        self.f_scale = f_scale;
        self.diss_scale = diss_scale;
        self
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.eps > 0.0 && self.eps <= 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("eps must be in (0, 1], got {}", self.eps),
            });
        }
        if !(self.xi > 0.0 && self.xi < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("xi must be in (0, 1), got {}", self.xi),
            });
        }
        if let Some(ig) = self.ig {
            if ig <= 0.0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!("isoperimetric number must be positive, got {ig}"),
                });
            }
        }
        for (name, v) in [
            ("r_scale", self.r_scale),
            ("f_scale", self.f_scale),
            ("diss_scale", self.diss_scale),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(CoreError::InvalidConfig {
                    reason: format!("{name} must be in (0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }

    /// `k^{1+ε}` as a float.
    pub fn k_pow(&self, k: u64) -> f64 {
        (k as f64).powf(1.0 + self.eps)
    }

    /// White-node probability `p(k) = ln 2 / k^{1+ε}`.
    pub fn p(&self, k: u64) -> f64 {
        (std::f64::consts::LN_2 / self.k_pow(k)).min(1.0)
    }

    /// Potential threshold `τ(k) = 1 − 1/(k^{1+ε} − 1)`.
    ///
    /// # Panics
    ///
    /// Panics for `k < 2` (the estimate loop starts at `k = 2`, where
    /// `k^{1+ε} > 2 > 1`).
    pub fn tau(&self, k: u64) -> f64 {
        assert!(k >= 2, "estimates start at k = 2");
        1.0 - 1.0 / (self.k_pow(k) - 1.0)
    }

    /// Certification iterations `f(k)` (scaled, at least 1).
    pub fn f(&self, k: u64) -> u64 {
        let raw = f_constant() * (self.k_pow(k) / self.xi).ln();
        ((self.f_scale * raw).ceil() as u64).max(1)
    }

    /// Diffusion rounds `r(k)` (scaled, at least 1).
    ///
    /// Uses the known `i(G)` when provided (Theorem 3), else the blind
    /// `i(G) → 2/k` substitution (Corollary 1).
    pub fn r(&self, k: u64) -> u64 {
        let kp = self.k_pow(k);
        let ig = self.ig.unwrap_or(2.0 / k as f64);
        let spectral_term = 8.0 * kp * kp / (ig * ig) * (kp * kp).log2().max(1.0);
        let reach_term = kp * (2.0 * k as f64).log2();
        ((self.r_scale * (spectral_term + reach_term)).ceil() as u64).max(1)
    }

    /// Dissemination rounds (scaled `k^{1+ε}`, at least 1).
    pub fn dissemination(&self, k: u64) -> u64 {
        ((self.diss_scale * self.k_pow(k)).ceil() as u64).max(1)
    }

    /// ID range upper bound `k^{4(1+ε)}·log₂⁴(4k)`.
    pub fn id_range(&self, k: u64) -> u128 {
        let kp = self.k_pow(k);
        let log4 = (4.0 * k as f64).log2().powi(4);
        let raw = kp.powi(4) * log4;
        if raw >= u128::MAX as f64 {
            u128::MAX
        } else {
            (raw.ceil() as u128).max(2)
        }
    }

    /// Rounds of one full iteration (diffusion + dissemination) at
    /// estimate `k`.
    pub fn iteration_rounds(&self, k: u64) -> u64 {
        self.r(k) + self.dissemination(k)
    }

    /// Total simulator rounds to finish every estimate up to and including
    /// `max_k` — the natural run budget for a simulation horizon.
    pub fn rounds_through(&self, max_k: u64) -> u64 {
        let mut total = 0u64;
        let mut k = 2u64;
        while k <= max_k {
            total = total.saturating_add(self.f(k).saturating_mul(self.iteration_rounds(k)));
            k *= 2;
        }
        total.saturating_add(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blind() -> RevocableParams {
        RevocableParams::paper_blind(0.5, 0.1)
    }

    #[test]
    fn f_constant_value() {
        assert!((f_constant() - 32.97).abs() < 0.01);
    }

    #[test]
    fn parameter_formulas_match_paper() {
        let p = blind();
        // p(k): ln2 / k^{1.5}
        assert!((p.p(4) - std::f64::consts::LN_2 / 8.0).abs() < 1e-12);
        // tau(k): 1 - 1/(k^{1.5} - 1)
        assert!((p.tau(4) - (1.0 - 1.0 / 7.0)).abs() < 1e-12);
        // f(k) grows logarithmically.
        assert!(p.f(4) > p.f(2));
        assert!(p.f(1024) < 4 * p.f(2), "f grows only logarithmically");
    }

    #[test]
    fn blind_r_matches_corollary_form() {
        let p = blind();
        // Blind: r(k) ≈ 2·k^{2(2+ε)}·log2(k^{2(1+ε)}) + k^{1+ε}log2(2k).
        let k = 4u64;
        let kp = p.k_pow(k); // 8
        let expected = 2.0 * (k as f64).powf(2.0 * (2.0 + p.eps)) * (kp * kp).log2()
            + kp * (2.0 * k as f64).log2();
        let got = p.r(k) as f64;
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn known_ig_shrinks_r() {
        let blind = blind();
        let informed = RevocableParams::paper_with_ig(0.5, 0.1, 8.0);
        assert!(informed.r(16) < blind.r(16));
    }

    #[test]
    fn scales_shrink_but_preserve_monotonicity() {
        let p = blind().with_scales(0.01, 0.05, 0.5);
        assert!(p.validate().is_ok());
        assert!(p.r(8) < blind().r(8));
        assert!(p.f(8) < blind().f(8));
        assert!(p.r(16) > p.r(8), "monotone in k");
        assert!(p.dissemination(16) > p.dissemination(8));
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(RevocableParams::paper_blind(0.0, 0.1).validate().is_err());
        assert!(RevocableParams::paper_blind(1.5, 0.1).validate().is_err());
        assert!(RevocableParams::paper_blind(0.5, 0.0).validate().is_err());
        assert!(RevocableParams::paper_blind(0.5, 1.0).validate().is_err());
        assert!(RevocableParams::paper_with_ig(0.5, 0.1, -1.0)
            .validate()
            .is_err());
        assert!(blind().with_scales(0.0, 1.0, 1.0).validate().is_err());
        assert!(blind().with_scales(1.0, 2.0, 1.0).validate().is_err());
        assert!(blind().validate().is_ok());
    }

    #[test]
    fn id_range_grows_fast_enough_for_uniqueness() {
        let p = blind();
        // Once k^{1+ε}·log(4k) ≥ n, the range is ≥ n⁴ (Theorem 3's proof).
        let k = 16u64;
        let kp = p.k_pow(k);
        let n_equiv = kp * (4.0 * k as f64).log2();
        assert!(p.id_range(k) as f64 >= n_equiv.powi(4) * 0.99);
    }

    #[test]
    fn rounds_budget_is_dominated_by_last_estimate() {
        let p = blind().with_scales(0.001, 0.1, 1.0);
        let through8 = p.rounds_through(8);
        let through16 = p.rounds_through(16);
        assert!(through16 > through8);
        let last = p.f(16) * p.iteration_rounds(16);
        assert!(through16 - through8 >= last);
    }

    #[test]
    #[should_panic(expected = "estimates start at k = 2")]
    fn tau_rejects_k1() {
        blind().tau(1);
    }
}
