//! Revocable Leader Election for **unknown network size**
//! (paper Section 5.2–5.3).
//!
//! No algorithm can solve irrevocable leader election without knowing `n`
//! (Theorem 2; see the `ale-impossibility` crate), so the paper defines the
//! revocable variant: the final leader must be elected within bounded time,
//! but nodes may never know their decision is final and may revoke it.
//!
//! **Blind Leader Election with Certificates via Diffusion with Thresholds**
//! probes doubling estimates `k` of the network size. Each estimate runs
//! `f(k)` certification iterations — a white/black coloring, a potential
//! diffusion with threshold alarms, and a dissemination — and nodes that
//! fail to detect `k` as low choose an ID in a range polynomial in `k`,
//! compounded with `k` as a *certificate*. The best record (largest
//! certificate, then smallest ID) is the leader.
//!
//! * [`RevocableParams`] — the paper's `p(k)`, `τ(k)`, `f(k)`, `r(k)`
//!   functions (Theorem 3 with known `i(G)` or blind Corollary 1), plus
//!   documented scale knobs for tractable shape experiments.
//! * [`RevocableProcess`] — the never-halting per-node machine.
//! * [`run_revocable`] — drives a network until the host-side oracle
//!   observes stabilization (all IDs chosen, all views equal).
//!
//! ## Example
//!
//! ```
//! use ale_core::revocable::{run_revocable, RevocableParams};
//! use ale_graph::generators;
//!
//! let g = generators::complete(4)?;
//! // Scaled parameters keep the demo fast; see DESIGN.md for modes.
//! let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.05, 1.0);
//! let result = run_revocable(&g, &params, 1, 64)?;
//! assert!(result.stabilized);
//! assert_eq!(result.outcome.leader_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod msg;
pub mod params;
pub mod process;
pub mod record;

use crate::error::CoreError;
use crate::outcome::ElectionOutcome;
use ale_congest::{congest_budget, AsyncNetwork, ExecConfig, Network, RunStatus};
use ale_graph::Graph;

pub use msg::RevMsg;
pub use params::RevocableParams;
pub use process::{RevocableProcess, RevocableVerdict};
pub use record::LeaderRecord;

/// Result of driving the revocable protocol to (attempted) stabilization.
#[derive(Debug, Clone, PartialEq)]
pub struct RevocableOutcome {
    /// Leaders / candidates / cost summary. `candidates` lists every node
    /// that chose an ID (they all "stand" in this protocol).
    pub outcome: ElectionOutcome,
    /// Whether the stabilization oracle fired: every node chose an ID and
    /// all views agree (an absorbing state — certificates only improve).
    pub stabilized: bool,
    /// The largest estimate `k` reached by any node.
    pub final_k: u64,
    /// Round at which stabilization was first observed.
    pub rounds_at_stability: Option<u64>,
    /// Full per-node verdicts for downstream analysis.
    pub verdicts: Vec<RevocableVerdict>,
}

/// Runs the revocable protocol until stabilization or until every estimate
/// up to `max_k` has been exhausted.
///
/// The protocol itself never halts (Definition 2); `max_k` is the host-side
/// simulation horizon. Theory predicts stabilization once `k^{1+ε} > 4n`,
/// so pass a `max_k` at least a constant factor above `(4n)^{1/(1+ε)}`.
///
/// # Errors
///
/// Propagates parameter-validation and simulation failures.
pub fn run_revocable(
    graph: &Graph,
    params: &RevocableParams,
    seed: u64,
    max_k: u64,
) -> Result<RevocableOutcome, CoreError> {
    params.validate()?;
    if max_k < 2 {
        return Err(CoreError::InvalidConfig {
            reason: "max_k must be at least 2".into(),
        });
    }
    let budget = congest_budget(graph.n().max(2), params.congest_factor);
    let p = *params;
    let mut net = Network::from_fn(graph, seed, budget, |deg, _rng| {
        // The horizon freezes nodes before they execute estimates beyond
        // max_k, whose per-estimate cost grows like k^{2(2+ε)} (blind).
        RevocableProcess::with_horizon(p, deg, Some(max_k))
    });
    let round_budget = params.rounds_through(max_k).saturating_add(64);
    let mut rounds_at_stability = None;

    // Stops on: stabilization (checked sparsely — the recorded round is at
    // most 16 late), the horizon freeze (all nodes halt in lockstep), or
    // the round cap (defensive; unreachable given the freeze).
    let status = net.run_until(round_budget, |n| {
        n.round() % 16 == 0 && stabilized(&n.outputs())
    })?;
    let verdicts_now = net.outputs();
    if status == RunStatus::PredicateMet && stabilized(&verdicts_now) {
        rounds_at_stability = Some(net.round());
    }

    let verdicts = verdicts_now;
    let leaders = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.leader)
        .map(|(i, _)| i)
        .collect();
    let candidates = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.id.is_some())
        .map(|(i, _)| i)
        .collect();
    let final_k = verdicts.iter().map(|v| v.k).max().unwrap_or(2);
    let outcome = ElectionOutcome::new(leaders, candidates, *net.metrics(), status);
    Ok(RevocableOutcome {
        stabilized: rounds_at_stability.is_some(),
        final_k,
        rounds_at_stability,
        verdicts,
        outcome,
    })
}

/// [`run_revocable`] on the event-driven asynchronous engine: the same
/// protocol, horizon, and stabilization oracle, but message deliveries
/// follow `exec`'s latency distribution and its adversary may crash
/// nodes, drop sends, or inject duplicates.
///
/// With `ExecConfig::default()` (unit latency, zero faults) the run is
/// byte-identical to [`run_revocable`] — same outputs, metrics, and
/// rounds — which is what lets fault sweeps share the synchronous runs'
/// baselines. Under faults the protocol keeps its absorbing-state
/// structure (certificates only improve), so the oracle still reports
/// stabilization among the *surviving* nodes when views converge; with
/// crashes, "all nodes" means all non-crashed nodes that still execute.
///
/// # Errors
///
/// Propagates parameter-validation, execution-config, and simulation
/// failures.
pub fn run_revocable_async(
    graph: &Graph,
    params: &RevocableParams,
    seed: u64,
    max_k: u64,
    exec: &ExecConfig,
) -> Result<RevocableOutcome, CoreError> {
    params.validate()?;
    if max_k < 2 {
        return Err(CoreError::InvalidConfig {
            reason: "max_k must be at least 2".into(),
        });
    }
    let budget = congest_budget(graph.n().max(2), params.congest_factor);
    let p = *params;
    let mut net = AsyncNetwork::from_fn_with(graph, seed, budget, *exec, |deg, _rng| {
        RevocableProcess::with_horizon(p, deg, Some(max_k))
    })?;
    let round_budget = params.rounds_through(max_k).saturating_add(64);
    let mut rounds_at_stability = None;

    let status = net.run_until(round_budget, |n| {
        n.round() % 16 == 0 && stabilized(&n.outputs())
    })?;
    let verdicts_now = net.outputs();
    if status == RunStatus::PredicateMet && stabilized(&verdicts_now) {
        rounds_at_stability = Some(net.round());
    }

    let verdicts = verdicts_now;
    let leaders = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.leader)
        .map(|(i, _)| i)
        .collect();
    let candidates = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.id.is_some())
        .map(|(i, _)| i)
        .collect();
    let final_k = verdicts.iter().map(|v| v.k).max().unwrap_or(2);
    let outcome = ElectionOutcome::new(leaders, candidates, *net.metrics(), status);
    Ok(RevocableOutcome {
        stabilized: rounds_at_stability.is_some(),
        final_k,
        rounds_at_stability,
        verdicts,
        outcome,
    })
}

/// The stabilization oracle: all nodes chose IDs and share the same view.
///
/// This is an absorbing predicate: IDs are never re-chosen and views only
/// move toward the globally best record.
pub fn stabilized(verdicts: &[RevocableVerdict]) -> bool {
    if verdicts.is_empty() {
        return false;
    }
    if verdicts.iter().any(|v| v.id.is_none() || v.view.is_none()) {
        return false;
    }
    let first = verdicts[0].view;
    verdicts.iter().all(|v| v.view == first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;

    fn fast_params() -> RevocableParams {
        RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.05, 1.0)
    }

    #[test]
    fn stabilizes_on_tiny_complete_graph() {
        let g = generators::complete(4).unwrap();
        let r = run_revocable(&g, &fast_params(), 1, 64).unwrap();
        assert!(r.stabilized, "did not stabilize: final_k = {}", r.final_k);
        assert_eq!(r.outcome.leader_count(), 1);
        assert_eq!(r.outcome.candidates.len(), 4, "all nodes choose IDs");
        // The leader's record must be the best one.
        let best = r
            .verdicts
            .iter()
            .filter_map(|v| v.view)
            .next()
            .expect("stabilized implies views");
        for v in &r.verdicts {
            assert_eq!(v.view, Some(best));
        }
    }

    #[test]
    fn explicit_election_all_nodes_know_leader() {
        let g = generators::cycle(5).unwrap();
        let r = run_revocable(&g, &fast_params(), 11, 64).unwrap();
        assert!(r.stabilized);
        let views: Vec<_> = r.verdicts.iter().map(|v| v.view).collect();
        assert!(views.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn leader_has_best_record() {
        let g = generators::path(4).unwrap();
        let r = run_revocable(&g, &fast_params(), 5, 64).unwrap();
        assert!(r.stabilized);
        let leader = r.outcome.unique_leader().expect("unique leader");
        let lv = &r.verdicts[leader];
        assert_eq!(
            Some(LeaderRecord::new(lv.cert.unwrap(), lv.id.unwrap())),
            lv.view
        );
    }

    #[test]
    fn unstabilized_run_reports_false() {
        let g = generators::complete(4).unwrap();
        // max_k = 2 gives the protocol no room to reach k^{1+ε} > 4n.
        let r = run_revocable(&g, &fast_params(), 3, 2).unwrap();
        assert!(!r.stabilized);
        assert_eq!(r.rounds_at_stability, None);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let g = generators::complete(4).unwrap();
        let bad = RevocableParams::paper_blind(0.0, 0.1);
        assert!(run_revocable(&g, &bad, 0, 64).is_err());
        assert!(run_revocable(&g, &fast_params(), 0, 1).is_err());
    }

    #[test]
    fn async_zero_fault_run_matches_the_synchronous_run_exactly() {
        let g = generators::complete(4).unwrap();
        for seed in [1, 5, 11] {
            let sync = run_revocable(&g, &fast_params(), seed, 64).unwrap();
            let evented =
                run_revocable_async(&g, &fast_params(), seed, 64, &ExecConfig::default()).unwrap();
            assert_eq!(sync, evented, "seed {seed}");
        }
    }

    #[test]
    fn async_faulty_run_reconciles_and_rejects_bad_configs() {
        let g = generators::complete(4).unwrap();
        let exec = ExecConfig {
            faults: ale_congest::FaultSpec {
                drop: 0.05,
                duplicate: 0.025,
                ..Default::default()
            },
            ..ExecConfig::default()
        };
        let r = run_revocable_async(&g, &fast_params(), 1, 16, &exec).unwrap();
        let m = r.outcome.metrics;
        assert_eq!(m.delivered, m.messages - m.dropped + m.duplicated);

        let bad = ExecConfig {
            faults: ale_congest::FaultSpec {
                drop: 2.0,
                ..Default::default()
            },
            ..ExecConfig::default()
        };
        assert!(run_revocable_async(&g, &fast_params(), 1, 16, &bad).is_err());
    }

    #[test]
    fn stabilized_predicate_logic() {
        use process::RevocableVerdict;
        let v = |id: Option<u128>, view: Option<LeaderRecord>| RevocableVerdict {
            id,
            cert: id.map(|_| 4),
            leader: false,
            view,
            k: 8,
            revocations: 0,
        };
        assert!(!stabilized(&[]));
        let rec = LeaderRecord::new(4, 9);
        assert!(!stabilized(&[v(None, Some(rec))]));
        assert!(!stabilized(&[v(Some(1), None)]));
        assert!(stabilized(&[v(Some(1), Some(rec)), v(Some(2), Some(rec))]));
        let other = LeaderRecord::new(8, 1);
        assert!(!stabilized(&[
            v(Some(1), Some(rec)),
            v(Some(2), Some(other))
        ]));
    }
}
