//! The revocable leader-election process (paper Algorithms 6–7).
//!
//! Every node runs the same estimate-doubling schedule, so the whole
//! network is in lockstep at the same `(k, iteration, phase round)` at all
//! times — which is what makes the synchronous diffusion of `Avg` well
//! defined. One iteration at estimate `k` spans `r(k) + diss(k)` rounds:
//!
//! ```text
//! round   0 .. r(k)-1        diffusion sends (absorb previous exchange)
//! round   r(k)               threshold check τ(k), dissemination send 0
//! round   r(k)+1 .. +diss(k) dissemination sends / merges
//! round   r(k)+diss(k)       iteration tally; possibly the decision phase
//!                            (= round 0 of the next iteration)
//! ```
//!
//! The process **never halts** — revocable leader election (Definition 2)
//! allows leadership to change; the harness decides when the network has
//! stabilized (see [`run_revocable`](super::run_revocable)).
//!
//! One deviation from the listing, following the analysis instead: the
//! pseudocode places the `Φ > τ(k)` check inside the diffusion loop, but
//! black nodes start at `Φ = 1 > τ(k)`, so a per-round check would flag
//! every node low immediately and the infection would never clear —
//! contradicting Lemmas 5–8, which evaluate the threshold **at the end of
//! the diffusion phase**. We check at the end (see DESIGN.md).

use super::msg::RevMsg;
use super::params::RevocableParams;
use super::record::{merge_view, LeaderRecord};
use ale_congest::{Incoming, NodeCtx, OutCtx, Process};
use rand::rngs::StdRng;
use rand::Rng;

/// Observable state of a revocable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevocableVerdict {
    /// The chosen ID, if the node has decided.
    pub id: Option<u128>,
    /// The certificate (estimate `k`) under which the ID was chosen.
    pub cert: Option<u64>,
    /// Whether the node currently considers itself the leader.
    pub leader: bool,
    /// The node's current view of the best leader record.
    pub view: Option<LeaderRecord>,
    /// The node's current estimate `k`.
    pub k: u64,
    /// How many times this node's leader view changed after first being
    /// set — observed **revocations**, the phenomenon Definition 2 admits.
    pub revocations: u64,
}

// Boolean state, bit-packed into one byte (the memory-diet layout: at
// n = 10⁶ nodes every `Vec<RevocableProcess>` byte is a megabyte).
const FLAG_STARTED: u8 = 1 << 0;
const FLAG_LINGERING: u8 = 1 << 1;
const FLAG_FROZEN: u8 = 1 << 2;
const FLAG_WHITE: u8 = 1 << 3;
const FLAG_LOW: u8 = 1 << 4;
const FLAG_WHITE_SEEN: u8 = 1 << 5;

/// One node's state machine for Blind Leader Election with Certificates via
/// Diffusion with Thresholds.
///
/// # Memory layout
///
/// The struct is on a diet (`size_of` is pinned by a regression test): the
/// six boolean flags pack into one byte, the degree is `u32` (node ids are
/// `u32` engine-wide), and the per-estimate derived constants
/// (`k^{1+ε}`, `τ(k)`, the potential word width) are cached at estimate
/// boundaries instead of being recomputed from `powf`/`log2` every round —
/// the single biggest CPU cost in large-n ladder runs.
#[derive(Debug, Clone)]
pub struct RevocableProcess {
    params: RevocableParams,
    degree: u32,
    /// Bit-packed booleans (`FLAG_*`).
    flags: u8,
    /// Host-side simulation horizon: the largest estimate to execute.
    /// `None` = run forever (the true protocol). When the estimate doubles
    /// past the horizon the process first **lingers** — it keeps
    /// broadcasting dissemination messages for one dissemination length of
    /// the final executed estimate, so records chosen at the horizon still
    /// spread exactly as the real protocol's next estimate would spread
    /// them — then freezes. This is **not** part of the protocol, only the
    /// harness's way of bounding a simulation whose later estimates cost
    /// `Ω(k^{2(2+ε)})` rounds each.
    horizon: Option<u64>,
    linger_left: u64,
    // Estimate-level state.
    k: u64,
    f_k: u64,
    r_k: u64,
    diss_k: u64,
    iter: u64,
    phase_round: u64,
    // Derived per-estimate constants, recomputed only when `k` changes
    // (identical values to evaluating the formulas every round — f64
    // arithmetic is deterministic).
    k_pow: f64,
    tau_k: f64,
    /// Potential word width `⌈log₂(2k^{1+ε})⌉` (≥ 1) for bit accounting.
    word: u32,
    // Iteration-level state.
    potential: f64,
    // Estimate-level tallies.
    empty_count: u64,
    probing_count: u64,
    // Global decision state.
    id: Option<u128>,
    cert: Option<u64>,
    view: Option<LeaderRecord>,
    revocations: u64,
}

/// Bit-by-bit potential word width `⌈log₂(2k^{1+ε})⌉`, at least 1.
fn word_width(k_pow: f64) -> u32 {
    (2.0 * k_pow).log2().ceil().max(1.0) as u32
}

impl RevocableProcess {
    /// Creates a node. The protocol uses **no** network knowledge — only
    /// the node's degree (its port count) and private randomness.
    pub fn new(params: RevocableParams, degree: usize) -> Self {
        Self::with_horizon(params, degree, None)
    }

    /// Creates a node that freezes once its estimate doubles past
    /// `horizon` — the harness's simulation cutoff (see the field docs).
    pub fn with_horizon(params: RevocableParams, degree: usize, horizon: Option<u64>) -> Self {
        let k_pow = params.k_pow(2);
        RevocableProcess {
            params,
            degree: degree.try_into().expect("degree fits in u32"),
            flags: 0,
            horizon,
            linger_left: 0,
            k: 2,
            f_k: params.f(2),
            r_k: params.r(2),
            diss_k: params.dissemination(2),
            iter: 0,
            phase_round: 0,
            k_pow,
            tau_k: params.tau(2),
            word: word_width(k_pow),
            potential: 1.0,
            empty_count: 0,
            probing_count: 0,
            id: None,
            cert: None,
            view: None,
            revocations: 0,
        }
    }

    fn flag(&self, bit: u8) -> bool {
        self.flags & bit != 0
    }

    fn set_flag(&mut self, bit: u8, value: bool) {
        if value {
            self.flags |= bit;
        } else {
            self.flags &= !bit;
        }
    }

    /// The current estimate `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Current iteration index within the estimate.
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    /// Current potential value.
    pub fn potential(&self) -> f64 {
        self.potential
    }

    /// Whether the node flagged the current estimate low.
    pub fn is_low(&self) -> bool {
        self.flag(FLAG_LOW)
    }

    /// Whether the node was white this iteration.
    pub fn is_white(&self) -> bool {
        self.flag(FLAG_WHITE)
    }

    /// Merges an incoming record, counting view *changes after the first
    /// adoption* as revocations.
    fn merge_and_count(&mut self, incoming: Option<&LeaderRecord>) {
        let had = self.view.is_some();
        if merge_view(&mut self.view, incoming) && had {
            self.revocations += 1;
        }
    }

    fn start_iteration(&mut self, rng: &mut StdRng) {
        // Algorithm 6 line 10: white with probability p(k).
        let white = rng.gen_bool(self.params.p(self.k).clamp(0.0, 1.0));
        self.set_flag(FLAG_WHITE, white);
        // Algorithm 7 lines 2–4.
        self.set_flag(FLAG_WHITE_SEEN, white);
        self.set_flag(FLAG_LOW, false);
        self.potential = if white { 0.0 } else { 1.0 };
    }

    fn advance_estimate(&mut self, rng: &mut StdRng) {
        // Decision phase (Algorithm 6 lines 14–17).
        if self.id.is_none() && 2 * self.empty_count > self.f_k && self.probing_count > 0 {
            let range = self.params.id_range(self.k);
            let chosen = rng.gen_range(1..=range);
            self.id = Some(chosen);
            self.cert = Some(self.k);
            merge_view(&mut self.view, Some(&LeaderRecord::new(self.k, chosen)));
        }
        self.k *= 2;
        if self.horizon.is_some_and(|h| self.k > h) {
            // Drain phase: spread final records for one dissemination
            // length of the last executed estimate (k/2), then freeze.
            self.set_flag(FLAG_LINGERING, true);
            self.linger_left = 2 * self.params.dissemination(self.k / 2) + 2;
            return;
        }
        self.f_k = self.params.f(self.k);
        self.r_k = self.params.r(self.k);
        self.diss_k = self.params.dissemination(self.k);
        self.k_pow = self.params.k_pow(self.k);
        self.tau_k = self.params.tau(self.k);
        self.word = word_width(self.k_pow);
        self.iter = 0;
        self.empty_count = 0;
        self.probing_count = 0;
    }

    fn absorb(&mut self, inbox: &[Incoming<RevMsg>]) {
        if !self.flag(FLAG_STARTED) || self.phase_round == 0 {
            return;
        }
        if self.phase_round <= self.r_k {
            // Diffusion exchange `phase_round - 1`.
            let mut sum_in = 0.0;
            let mut any_low = false;
            let mut count = 0usize;
            for m in inbox {
                if let RevMsg::Diffuse {
                    potential,
                    low,
                    view,
                    ..
                } = &m.msg
                {
                    sum_in += potential;
                    any_low |= low;
                    count += 1;
                    self.merge_and_count(view.as_ref());
                }
            }
            // On the synchronous engines `count == degree` (lockstep
            // exchange); under the asynchronous adversary messages may be
            // dropped, duplicated, or delayed, so the averaging simply
            // folds in whatever arrived — the potential leak that drops
            // introduce is exactly what a fault sweep measures.
            let _ = count;
            // Algorithm 7 lines 7–9: averaging only while everyone probes
            // and the degree fits the estimate.
            let k_pow = self.k_pow;
            if !self.flag(FLAG_LOW) && (self.degree as f64) <= k_pow && !any_low {
                let alpha = 1.0 / (2.0 * k_pow);
                self.potential += alpha * sum_in - alpha * self.degree as f64 * self.potential;
            } else {
                self.set_flag(FLAG_LOW, true);
                self.potential = 1.0;
            }
        } else {
            // Dissemination merge (Algorithm 7 lines 16–21).
            let mut low = self.flag(FLAG_LOW);
            let mut white_seen = self.flag(FLAG_WHITE_SEEN);
            for m in inbox {
                if let RevMsg::Disseminate {
                    low: l,
                    white,
                    view,
                } = &m.msg
                {
                    low |= l;
                    white_seen |= white;
                    self.merge_and_count(view.as_ref());
                }
            }
            self.set_flag(FLAG_LOW, low);
            self.set_flag(FLAG_WHITE_SEEN, white_seen);
        }
    }

    fn diffuse_msg(&self) -> RevMsg {
        RevMsg::Diffuse {
            potential: self.potential,
            low: self.flag(FLAG_LOW),
            white: self.flag(FLAG_WHITE),
            view: self.view,
            // Bit-by-bit potential width at send index `phase_round`
            // (1-indexed in the paper's accounting); `word` is the cached
            // per-estimate `⌈log₂(2k^{1+ε})⌉`.
            pot_bits: (self.phase_round as usize + 1) * self.word as usize,
        }
    }

    fn disseminate_msg(&self) -> RevMsg {
        RevMsg::Disseminate {
            low: self.flag(FLAG_LOW),
            white: self.flag(FLAG_WHITE_SEEN),
            view: self.view,
        }
    }
}

impl Process for RevocableProcess {
    type Msg = RevMsg;
    type Output = RevocableVerdict;

    fn round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<RevMsg>],
        out: &mut OutCtx<'_, RevMsg>,
    ) {
        debug_assert_eq!(ctx.degree, self.degree as usize);
        if self.flag(FLAG_FROZEN) {
            return;
        }
        if self.flag(FLAG_LINGERING) {
            // Horizon drain: merge views from anything still arriving and
            // keep disseminating the final record.
            for m in inbox {
                match &m.msg {
                    RevMsg::Diffuse { view, .. } | RevMsg::Disseminate { view, .. } => {
                        self.merge_and_count(view.as_ref());
                    }
                }
            }
            if self.linger_left == 0 {
                self.set_flag(FLAG_FROZEN, true);
                return;
            }
            self.linger_left -= 1;
            out.broadcast(self.disseminate_msg());
            return;
        }
        self.absorb(inbox);

        if !self.flag(FLAG_STARTED) {
            self.set_flag(FLAG_STARTED, true);
            self.start_iteration(ctx.rng);
            out.broadcast(self.diffuse_msg());
            self.phase_round = 1;
            return;
        }

        if self.phase_round < self.r_k {
            out.broadcast(self.diffuse_msg());
            self.phase_round += 1;
            return;
        }

        if self.phase_round == self.r_k {
            // End-of-diffusion threshold detection (Lemma 5's check).
            if self.potential > self.tau_k {
                self.set_flag(FLAG_LOW, true);
                self.potential = 1.0;
            }
            out.broadcast(self.disseminate_msg());
            self.phase_round += 1;
            return;
        }

        if self.phase_round < self.r_k + self.diss_k {
            out.broadcast(self.disseminate_msg());
            self.phase_round += 1;
            return;
        }

        // phase_round == r_k + diss_k: iteration boundary.
        if !self.flag(FLAG_WHITE_SEEN) {
            self.empty_count += 1;
        }
        if !self.flag(FLAG_LOW) {
            self.probing_count += 1;
        }
        self.iter += 1;
        if self.iter >= self.f_k {
            self.advance_estimate(ctx.rng);
            if self.flag(FLAG_LINGERING) {
                self.linger_left -= 1;
                out.broadcast(self.disseminate_msg());
                return;
            }
        }
        self.start_iteration(ctx.rng);
        out.broadcast(self.diffuse_msg());
        self.phase_round = 1;
    }

    fn is_halted(&self) -> bool {
        // The protocol never halts (Definition 2); freezing is purely the
        // harness's simulation cutoff.
        self.flag(FLAG_FROZEN)
    }

    fn output(&self) -> RevocableVerdict {
        let own = match (self.cert, self.id) {
            (Some(c), Some(i)) => Some(LeaderRecord::new(c, i)),
            _ => None,
        };
        RevocableVerdict {
            id: self.id,
            cert: self.cert,
            leader: own.is_some() && own == self.view,
            view: self.view,
            k: self.k,
            revocations: self.revocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_params() -> RevocableParams {
        RevocableParams::paper_blind(0.5, 0.2).with_scales(0.001, 0.05, 1.0)
    }

    fn ctx<'a>(rng: &'a mut StdRng, degree: usize, round: u64) -> NodeCtx<'a> {
        NodeCtx { degree, round, rng }
    }

    /// Runs one round against a collector, returning the sends — the
    /// unit-test stand-in for the old `Outbox` return value.
    fn drive(
        p: &mut RevocableProcess,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<RevMsg>],
    ) -> Vec<(usize, RevMsg)> {
        let mut sent = Vec::new();
        p.round(ctx, inbox, &mut OutCtx::collector(ctx.degree, &mut sent));
        sent
    }

    #[test]
    fn first_round_broadcasts_diffusion_to_all_ports() {
        let mut p = RevocableProcess::new(small_params(), 3);
        let mut rng = StdRng::seed_from_u64(0);
        let out = drive(&mut p, &mut ctx(&mut rng, 3, 0), &[]);
        assert_eq!(out.len(), 3);
        for (_, m) in &out {
            assert!(matches!(m, RevMsg::Diffuse { .. }));
        }
        assert_eq!(p.k(), 2);
        assert_eq!(p.iteration(), 0);
    }

    #[test]
    fn potential_initialization_matches_color() {
        let mut p = RevocableProcess::new(small_params(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        drive(&mut p, &mut ctx(&mut rng, 2, 0), &[]);
        if p.is_white() {
            assert_eq!(p.potential(), 0.0);
        } else {
            assert_eq!(p.potential(), 1.0);
        }
    }

    #[test]
    fn diffusion_averages_neighbors() {
        let params = small_params();
        let mut p = RevocableProcess::new(params, 2);
        let mut rng = StdRng::seed_from_u64(3);
        drive(&mut p, &mut ctx(&mut rng, 2, 0), &[]); // send #0
        let before = p.potential();
        let mk = |potential| Incoming {
            port: 0,
            msg: RevMsg::Diffuse {
                potential,
                low: false,
                white: false,
                view: None,
                pot_bits: 4,
            },
        };
        let inbox = [mk(0.0), mk(0.0)];
        let inbox: Vec<_> = inbox
            .into_iter()
            .enumerate()
            .map(|(i, mut m)| {
                m.port = i;
                m
            })
            .collect();
        drive(&mut p, &mut ctx(&mut rng, 2, 1), &inbox);
        let k_pow = params.k_pow(2);
        let alpha = 1.0 / (2.0 * k_pow);
        let expected = before + alpha * 0.0 - alpha * 2.0 * before;
        assert!((p.potential() - expected).abs() < 1e-12);
        assert!(!p.is_low());
    }

    #[test]
    fn low_neighbor_infects() {
        let mut p = RevocableProcess::new(small_params(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        drive(&mut p, &mut ctx(&mut rng, 1, 0), &[]);
        let inbox = [Incoming {
            port: 0,
            msg: RevMsg::Diffuse {
                potential: 1.0,
                low: true,
                white: false,
                view: None,
                pot_bits: 4,
            },
        }];
        drive(&mut p, &mut ctx(&mut rng, 1, 1), &inbox);
        assert!(p.is_low());
        assert_eq!(p.potential(), 1.0);
    }

    #[test]
    fn oversized_degree_flags_low() {
        // degree 9 > 2^{1.5} ≈ 2.83 at k = 2.
        let mut p = RevocableProcess::new(small_params(), 9);
        let mut rng = StdRng::seed_from_u64(5);
        drive(&mut p, &mut ctx(&mut rng, 9, 0), &[]);
        let inbox: Vec<_> = (0..9)
            .map(|i| Incoming {
                port: i,
                msg: RevMsg::Diffuse {
                    potential: 0.0,
                    low: false,
                    white: false,
                    view: None,
                    pot_bits: 4,
                },
            })
            .collect();
        drive(&mut p, &mut ctx(&mut rng, 9, 1), &inbox);
        assert!(p.is_low(), "degree above k^{{1+eps}} must flag low");
    }

    #[test]
    fn never_halts() {
        let p = RevocableProcess::new(small_params(), 2);
        assert!(!p.is_halted(), "revocable processes must not halt");
    }

    #[test]
    fn view_merge_updates_leader_flag() {
        let mut p = RevocableProcess::new(small_params(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        drive(&mut p, &mut ctx(&mut rng, 1, 0), &[]);
        // Simulate having chosen an ID.
        p.id = Some(10);
        p.cert = Some(4);
        p.view = Some(LeaderRecord::new(4, 10));
        assert!(p.output().leader);
        // A better record arrives via diffusion: leadership revoked.
        let inbox = [Incoming {
            port: 0,
            msg: RevMsg::Diffuse {
                potential: 0.5,
                low: false,
                white: false,
                view: Some(LeaderRecord::new(8, 999)),
                pot_bits: 4,
            },
        }];
        drive(&mut p, &mut ctx(&mut rng, 1, 1), &inbox);
        assert!(!p.output().leader, "bigger certificate must revoke");
        assert_eq!(p.output().view, Some(LeaderRecord::new(8, 999)));
    }

    #[test]
    fn schedule_advances_through_iterations_and_estimates() {
        let params = small_params();
        let mut p = RevocableProcess::new(params, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let quiet = |pot| Incoming {
            port: 0,
            msg: RevMsg::Diffuse {
                potential: pot,
                low: false,
                white: false,
                view: None,
                pot_bits: 4,
            },
        };
        let diss = Incoming {
            port: 0,
            msg: RevMsg::Disseminate {
                low: false,
                white: false,
                view: None,
            },
        };
        let per_iter = params.r(2) + params.dissemination(2);
        let total = params.f(2) * per_iter + 2;
        let mut round = 0u64;
        drive(&mut p, &mut ctx(&mut rng, 1, round), &[]);
        round += 1;
        for _ in 0..total {
            let inbox: Vec<Incoming<RevMsg>> = if p.phase_round <= p.r_k && p.phase_round >= 1 {
                vec![quiet(p.potential())]
            } else {
                vec![diss.clone()]
            };
            drive(&mut p, &mut ctx(&mut rng, 1, round), &inbox);
            round += 1;
        }
        assert!(p.k() >= 4, "estimate must have advanced, k = {}", p.k());
    }

    #[test]
    fn memory_diet_struct_sizes_are_pinned() {
        // At n = 10⁶ nodes, every byte of `RevocableProcess` is a megabyte
        // of RSS and every byte of `RevMsg` is ~4 MB of delivery arena on a
        // torus. These budgets are the memory-diet contract; raising them
        // is a deliberate decision, not drive-by field growth.
        assert!(
            std::mem::size_of::<RevocableProcess>() <= 304,
            "RevocableProcess grew to {} bytes",
            std::mem::size_of::<RevocableProcess>()
        );
        assert!(
            std::mem::size_of::<RevMsg>() <= 80,
            "RevMsg grew to {} bytes",
            std::mem::size_of::<RevMsg>()
        );
    }

    #[test]
    fn flag_packing_roundtrips() {
        let mut p = RevocableProcess::new(small_params(), 2);
        assert!(!p.is_low() && !p.is_white());
        p.set_flag(FLAG_LOW, true);
        p.set_flag(FLAG_WHITE, true);
        assert!(p.is_low() && p.is_white());
        p.set_flag(FLAG_LOW, false);
        assert!(!p.is_low() && p.is_white(), "flags are independent");
    }

    #[test]
    fn cached_estimate_constants_match_the_formulas() {
        let params = small_params();
        let p = RevocableProcess::new(params, 2);
        assert_eq!(p.k_pow, params.k_pow(2));
        assert_eq!(p.tau_k, params.tau(2));
        assert_eq!(p.word as usize, {
            (2.0 * params.k_pow(2)).log2().ceil().max(1.0) as usize
        });
    }

    #[test]
    fn verdict_reports_current_state() {
        let p = RevocableProcess::new(small_params(), 2);
        let v = p.output();
        assert_eq!(v.k, 2);
        assert_eq!(v.id, None);
        assert!(!v.leader);
        assert_eq!(v.view, None);
    }
}
