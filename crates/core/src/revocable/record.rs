//! Leader records: ID + certificate pairs.
//!
//! The revocable protocol compounds each chosen ID with the estimate `k`
//! ("certificate") used to choose it. The leader is the node with the
//! **smallest ID among those with the largest certificate** (Section 5.2:
//! "The node with smallest ID, among those with largest estimate, is the
//! leader").

use ale_congest::message::{bits_for_u128, bits_for_u64};

/// A candidate leader: `(certificate, id)` with the paper's ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaderRecord {
    /// The estimate `k` in force when the ID was chosen (the certificate).
    pub cert: u64,
    /// The chosen ID.
    pub id: u128,
}

impl LeaderRecord {
    /// Creates a record.
    pub fn new(cert: u64, id: u128) -> Self {
        LeaderRecord { cert, id }
    }

    /// The paper's preference order: larger certificate wins; ties broken
    /// by smaller ID.
    pub fn beats(&self, other: &LeaderRecord) -> bool {
        self.cert > other.cert || (self.cert == other.cert && self.id < other.id)
    }

    /// Merges `other` into `self` if it is preferable; returns whether an
    /// update happened (drives send-on-change logic and revocations).
    pub fn merge(&mut self, other: &LeaderRecord) -> bool {
        if other.beats(self) {
            *self = *other;
            true
        } else {
            false
        }
    }

    /// Wire size in bits.
    pub fn bit_size(&self) -> usize {
        bits_for_u64(self.cert) + bits_for_u128(self.id)
    }
}

/// Merges an optional incoming record into an optional current view.
/// Returns whether the view changed.
pub fn merge_view(view: &mut Option<LeaderRecord>, incoming: Option<&LeaderRecord>) -> bool {
    match (view.as_mut(), incoming) {
        (_, None) => false,
        (None, Some(r)) => {
            *view = Some(*r);
            true
        }
        (Some(cur), Some(r)) => cur.merge(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_prefers_bigger_cert_then_smaller_id() {
        let a = LeaderRecord::new(8, 100);
        let b = LeaderRecord::new(4, 1);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
        let c = LeaderRecord::new(8, 50);
        assert!(c.beats(&a));
        assert!(!a.beats(&c));
        assert!(!a.beats(&a), "a record does not beat itself");
    }

    #[test]
    fn merge_updates_only_on_improvement() {
        let mut v = LeaderRecord::new(4, 10);
        assert!(!v.merge(&LeaderRecord::new(4, 11)));
        assert_eq!(v.id, 10);
        assert!(v.merge(&LeaderRecord::new(4, 3)));
        assert_eq!(v.id, 3);
        assert!(v.merge(&LeaderRecord::new(16, 99)));
        assert_eq!(v.cert, 16);
    }

    #[test]
    fn merge_view_handles_none() {
        let mut view = None;
        assert!(!merge_view(&mut view, None));
        assert!(merge_view(&mut view, Some(&LeaderRecord::new(2, 5))));
        assert_eq!(view, Some(LeaderRecord::new(2, 5)));
        assert!(!merge_view(&mut view, Some(&LeaderRecord::new(2, 9))));
        assert!(merge_view(&mut view, Some(&LeaderRecord::new(2, 1))));
    }

    #[test]
    fn bit_size_scales() {
        let small = LeaderRecord::new(2, 3);
        let big = LeaderRecord::new(1 << 40, u128::MAX);
        assert!(big.bit_size() > small.bit_size());
    }
}
