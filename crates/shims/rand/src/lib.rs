//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access, so instead of the crates-io
//! `rand` this path crate provides the same *surface*: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), and the `seq` helpers
//! (`SliceRandom`, `IteratorRandom`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but every consumer in this
//! repository only relies on determinism-per-seed and statistical quality,
//! never on the exact stream, so the substitution is behavior-preserving
//! for the test suite and experiments.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — the standard seed-expansion stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; stands in for
    /// `rand::rngs::StdRng` (the consumers only need per-seed determinism).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state is the one forbidden fixed point.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from an RNG's raw words (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` endpoints.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u128 offset arithmetic.
    fn to_u128(self) -> u128;
    /// Narrows back after offsetting.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u128, u64, u32, u16, u8);

/// Unbiased uniform draw in `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let draw = |rng: &mut R| ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    if span.is_power_of_two() {
        return draw(rng) & (span - 1);
    }
    let zone = u128::MAX - (u128::MAX % span) - 1;
    loop {
        let x = draw(rng);
        if x <= zone {
            return x % span;
        }
    }
}

/// Ranges `gen_range` accepts (half-open and inclusive integer ranges).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u128(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = hi - lo;
        if span == u128::MAX {
            let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            return T::from_u128(raw);
        }
        T::from_u128(lo + uniform_below(rng, span + 1))
    }
}

/// The user-facing extension trait (blanket-implemented for every RNG),
/// mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires 0 <= p <= 1");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice and iterator sampling helpers.

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Reservoir sampling over iterators (`rand::seq::IteratorRandom`).
    pub trait IteratorRandom: Iterator + Sized {
        /// Uniformly chooses one item, or `None` if the iterator is empty.
        fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
            let mut chosen = None;
            let mut seen: usize = 0;
            for item in self {
                seen += 1;
                if seen == 1 || rng.gen_range(0..seen) == 0 {
                    chosen = Some(item);
                }
            }
            chosen
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IteratorRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn range_draws_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} far from 0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn choose_on_slices_and_iterators() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let picked = (0..10).choose(&mut rng);
        assert!(matches!(picked, Some(0..=9)));
        assert!((0..0).choose(&mut rng).is_none());
        // Reservoir choice is roughly uniform.
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[(0..4usize).choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 1600), "skewed: {counts:?}");
    }
}
