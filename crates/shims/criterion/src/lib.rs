//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`.
//!
//! It is a *timing harness*, not a statistics engine: each benchmark is
//! warmed up, then timed for a bounded number of iterations, and the mean
//! wall-clock per iteration is printed. Good enough for the before/after
//! deltas recorded in the bench sources; swap in real criterion when the
//! build environment has network access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted and echoed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Filled by `iter`: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, storing the mean-per-iteration measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also sizes very slow benchmarks).
        let warm_start = Instant::now();
        std_black_box(f());
        let once = warm_start.elapsed();

        // Budget ~1s of measurement, between 3 and `sample_size` iters.
        let budget = Duration::from_secs(1);
        let fit = if once.is_zero() {
            self.sample_size as u64
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)) as u64
        };
        let iters = fit.clamp(3, self.sample_size as u64);

        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn report(id: &str, b: &Bencher) {
    match b.result {
        Some((iters, total)) => {
            let per = total.as_secs_f64() / iters as f64;
            let pretty = if per >= 1.0 {
                format!("{per:.3} s")
            } else if per >= 1e-3 {
                format!("{:.3} ms", per * 1e3)
            } else if per >= 1e-6 {
                format!("{:.3} µs", per * 1e6)
            } else {
                format!("{:.1} ns", per * 1e9)
            };
            println!("bench: {id:<48} {pretty}/iter ({iters} iters)");
        }
        None => println!("bench: {id:<48} (no measurement — iter() not called)"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim does not normalize by it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Runs one benchmark with an input payload.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Ends the group (no-op beyond marking intent).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hookup; the shim has no CLI to parse.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        report(&id.0, &b);
        self
    }

    /// Printed at the end of a `criterion_main!` run.
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        group.finish();
        assert!(calls >= 4, "warm-up + >=3 measured iterations, got {calls}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).0, "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.0, "plain");
    }
}
