//! Topology generators for the experiment suite.
//!
//! The paper's bounds are parameterized by conductance `Φ` and mixing time
//! `t_mix`, so the harness needs families spanning the spectrum:
//!
//! * **well-connected** (clique, hypercube, random regular): `Φ = Θ(1)` or
//!   `Θ(1/log n)`, `t_mix` polylogarithmic — where the paper's protocol is
//!   near-optimal;
//! * **poorly-connected** (cycle, path, barbell, lollipop): `Φ = Θ(1/n)`,
//!   `t_mix = Θ(n²)` — where message bounds blow up and crossovers appear;
//! * **intermediate** (2-D torus/grid, ring of cliques): `Φ = Θ(1/√n)`.
//!
//! Every generator is deterministic in its `seed` argument (ignored by the
//! deterministic families) and returns a validated, connected [`Graph`].

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::implicit::ImplicitTopology;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::fmt;

/// Node count at and above which [`Topology::build`] switches the families
/// with closed-form port maps (cycle, torus, hypercube, CCC) to the
/// O(1)-memory [`ImplicitTopology`] backend. Below it the explicit CSR
/// builder is used, which doubles as the equivalence oracle in tests.
pub const IMPLICIT_THRESHOLD: usize = 100_000;

/// A named topology with its parameters; build concrete graphs with
/// [`Topology::build`].
///
/// # Examples
///
/// ```
/// use ale_graph::Topology;
/// let g = Topology::Cycle { n: 8 }.build(0)?;
/// assert_eq!(g.n(), 8);
/// assert_eq!(g.m(), 8);
/// # Ok::<(), ale_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Cycle `C_n` (n ≥ 3): the paper's impossibility arena.
    Cycle {
        /// Number of nodes.
        n: usize,
    },
    /// Path `P_n` (n ≥ 2).
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// Complete graph `K_n` (n ≥ 2).
    Complete {
        /// Number of nodes.
        n: usize,
    },
    /// Star `K_{1,n−1}` (n ≥ 2): hub is node 0.
    Star {
        /// Number of nodes including the hub.
        n: usize,
    },
    /// 2-D grid, optionally wrapped into a torus.
    Grid2d {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Wrap both dimensions (torus) — keeps the graph vertex-transitive.
        torus: bool,
    },
    /// Hypercube `Q_d` on `2^d` nodes.
    Hypercube {
        /// Dimension (d ≥ 1).
        dim: usize,
    },
    /// Cube-connected cycles `CCC_d` on `d·2^d` nodes: each hypercube
    /// corner replaced by a `d`-cycle, giving a degree-3 vertex-transitive
    /// expander-adjacent family that scales to millions of nodes with O(1)
    /// graph memory.
    Ccc {
        /// Dimension (3 ≤ d ≤ 26).
        dim: usize,
    },
    /// Complete binary tree on `n` nodes (n ≥ 1).
    BinaryTree {
        /// Number of nodes.
        n: usize,
    },
    /// Random `d`-regular graph by the pairing model with retries
    /// (a standard expander for `d ≥ 3`).
    RandomRegular {
        /// Number of nodes (`n·d` must be even, `d < n`).
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Erdős–Rényi `G(n, p)` conditioned on connectivity (retries).
    Gnp {
        /// Number of nodes.
        n: usize,
        /// Edge probability in parts per million (integer so the enum stays
        /// `Eq + Hash` for use as a map key; `p = ppm / 1e6`).
        ppm: u32,
    },
    /// Two cliques `K_k` joined by a single edge — the classic low-
    /// conductance "dumbbell".
    Barbell {
        /// Clique size (k ≥ 2); total nodes `2k`.
        k: usize,
    },
    /// Clique `K_k` with a path of `tail` extra nodes attached — the
    /// lollipop, worst case for hitting times.
    Lollipop {
        /// Clique size (k ≥ 2).
        k: usize,
        /// Path length.
        tail: usize,
    },
    /// `c` cliques of size `k` arranged in a ring, consecutive cliques
    /// joined by one edge.
    RingOfCliques {
        /// Number of cliques (c ≥ 3).
        cliques: usize,
        /// Clique size (k ≥ 2).
        k: usize,
    },
}

impl Topology {
    /// Builds the concrete graph. Randomized families use `seed`;
    /// deterministic families ignore it.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] for out-of-range parameters;
    /// [`GraphError::GenerationFailed`] if a randomized family exhausts its
    /// retry budget.
    ///
    /// Families with closed-form port maps (cycle, torus, hypercube, CCC)
    /// switch to the O(1)-memory implicit backend once the node count
    /// reaches [`IMPLICIT_THRESHOLD`]; the produced graph is structurally
    /// identical to the explicit one (same neighbors, ports, and reverse
    /// ports — see `tests/implicit_equivalence.rs`).
    pub fn build(self, seed: u64) -> Result<Graph, GraphError> {
        if let Some(topo) = self.implicit_form() {
            if self.node_count() >= IMPLICIT_THRESHOLD {
                return Graph::from_implicit(topo);
            }
        }
        match self {
            Topology::Cycle { n } => cycle(n),
            Topology::Path { n } => path(n),
            Topology::Complete { n } => complete(n),
            Topology::Star { n } => star(n),
            Topology::Grid2d { rows, cols, torus } => grid2d(rows, cols, torus),
            Topology::Hypercube { dim } => hypercube(dim),
            Topology::Ccc { dim } => ccc(dim),
            Topology::BinaryTree { n } => binary_tree(n),
            Topology::RandomRegular { n, d } => random_regular(n, d, seed),
            Topology::Gnp { n, ppm } => gnp_connected(n, ppm as f64 / 1e6, seed),
            Topology::Barbell { k } => barbell(k),
            Topology::Lollipop { k, tail } => lollipop(k, tail),
            Topology::RingOfCliques { cliques, k } => ring_of_cliques(cliques, k),
        }
    }

    /// The implicit counterpart of this topology, if one exists.
    fn implicit_form(self) -> Option<ImplicitTopology> {
        match self {
            Topology::Cycle { n } => Some(ImplicitTopology::Ring { n }),
            Topology::Grid2d {
                rows,
                cols,
                torus: true,
            } => Some(ImplicitTopology::Torus { rows, cols }),
            Topology::Hypercube { dim } => Some(ImplicitTopology::Hypercube { dim }),
            Topology::Ccc { dim } => Some(ImplicitTopology::Ccc { dim }),
            _ => None,
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(self) -> usize {
        match self {
            Topology::Cycle { n }
            | Topology::Path { n }
            | Topology::Complete { n }
            | Topology::Star { n }
            | Topology::BinaryTree { n }
            | Topology::RandomRegular { n, .. }
            | Topology::Gnp { n, .. } => n,
            Topology::Grid2d { rows, cols, .. } => rows * cols,
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::Ccc { dim } => dim << dim,
            Topology::Barbell { k } => 2 * k,
            Topology::Lollipop { k, tail } => k + tail,
            Topology::RingOfCliques { cliques, k } => cliques * k,
        }
    }

    /// A short machine-friendly family name (for CSV columns).
    pub fn family(&self) -> &'static str {
        match self {
            Topology::Cycle { .. } => "cycle",
            Topology::Path { .. } => "path",
            Topology::Complete { .. } => "complete",
            Topology::Star { .. } => "star",
            Topology::Grid2d { torus: true, .. } => "torus",
            Topology::Grid2d { torus: false, .. } => "grid",
            Topology::Hypercube { .. } => "hypercube",
            Topology::Ccc { .. } => "ccc",
            Topology::BinaryTree { .. } => "btree",
            Topology::RandomRegular { .. } => "rregular",
            Topology::Gnp { .. } => "gnp",
            Topology::Barbell { .. } => "barbell",
            Topology::Lollipop { .. } => "lollipop",
            Topology::RingOfCliques { .. } => "ringcliques",
        }
    }

    /// The round-trippable `family:args` spec — exactly the CLI form
    /// [`std::str::FromStr`] parses, unlike [`std::fmt::Display`]'s
    /// human-oriented `family(k=v)` rendering. Run manifests persist
    /// topology overrides in this form so a stored run can be re-expanded
    /// verbatim (`ale-lab run --resume`).
    pub fn spec(&self) -> String {
        match self {
            Topology::Cycle { n } => format!("cycle:{n}"),
            Topology::Path { n } => format!("path:{n}"),
            Topology::Complete { n } => format!("complete:{n}"),
            Topology::Star { n } => format!("star:{n}"),
            Topology::Grid2d {
                rows,
                cols,
                torus: false,
            } => format!("grid:{rows}x{cols}"),
            Topology::Grid2d {
                rows,
                cols,
                torus: true,
            } => format!("torus:{rows}x{cols}"),
            Topology::Hypercube { dim } => format!("hypercube:{dim}"),
            Topology::Ccc { dim } => format!("ccc:{dim}"),
            Topology::BinaryTree { n } => format!("btree:{n}"),
            Topology::RandomRegular { n, d } => format!("rregular:{n}x{d}"),
            Topology::Gnp { n, ppm } => format!("gnp:{n}x{}", *ppm as f64 / 1e6),
            Topology::Barbell { k } => format!("barbell:{k}"),
            Topology::Lollipop { k, tail } => format!("lollipop:{k}x{tail}"),
            Topology::RingOfCliques { cliques, k } => format!("ringcliques:{cliques}x{k}"),
        }
    }
}

impl std::str::FromStr for Topology {
    type Err = GraphError;

    /// Parses the grid-friendly CLI form `family:args`, e.g.
    /// `complete:64`, `cycle:32`, `hypercube:6`, `grid:8x8`, `torus:8x8`,
    /// `rregular:64x4`, `gnp:64x0.05`, `barbell:8`, `lollipop:8x4`,
    /// `ringcliques:8x8`, `btree:15`, `path:16`, `star:16`.
    fn from_str(s: &str) -> Result<Self, GraphError> {
        let bad = |msg: String| GraphError::InvalidParameters { reason: msg };
        let (family, args) = s
            .split_once(':')
            .ok_or_else(|| bad(format!("'{s}': expected family:args (e.g. complete:64)")))?;
        let ints = || -> Result<Vec<usize>, GraphError> {
            args.split('x')
                .map(|p| {
                    p.trim()
                        .parse::<usize>()
                        .map_err(|_| bad(format!("'{s}': '{p}' is not an integer")))
                })
                .collect()
        };
        let one = || -> Result<usize, GraphError> {
            let v = ints()?;
            if v.len() == 1 {
                Ok(v[0])
            } else {
                Err(bad(format!("'{s}': expected one integer argument")))
            }
        };
        let two = || -> Result<(usize, usize), GraphError> {
            let v = ints()?;
            if v.len() == 2 {
                Ok((v[0], v[1]))
            } else {
                Err(bad(format!("'{s}': expected AxB arguments")))
            }
        };
        match family.trim() {
            "cycle" => Ok(Topology::Cycle { n: one()? }),
            "path" => Ok(Topology::Path { n: one()? }),
            "complete" | "clique" => Ok(Topology::Complete { n: one()? }),
            "star" => Ok(Topology::Star { n: one()? }),
            "hypercube" => Ok(Topology::Hypercube { dim: one()? }),
            "ccc" => Ok(Topology::Ccc { dim: one()? }),
            "btree" => Ok(Topology::BinaryTree { n: one()? }),
            "barbell" => Ok(Topology::Barbell { k: one()? }),
            "grid" => {
                let (rows, cols) = two()?;
                Ok(Topology::Grid2d {
                    rows,
                    cols,
                    torus: false,
                })
            }
            "torus" => {
                let (rows, cols) = two()?;
                Ok(Topology::Grid2d {
                    rows,
                    cols,
                    torus: true,
                })
            }
            "rregular" => {
                let (n, d) = two()?;
                Ok(Topology::RandomRegular { n, d })
            }
            "lollipop" => {
                let (k, tail) = two()?;
                Ok(Topology::Lollipop { k, tail })
            }
            "ringcliques" => {
                let (cliques, k) = two()?;
                Ok(Topology::RingOfCliques { cliques, k })
            }
            "gnp" => {
                let (n_str, p_str) = args
                    .split_once('x')
                    .ok_or_else(|| bad(format!("'{s}': expected gnp:NxP")))?;
                let n = n_str
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| bad(format!("'{s}': '{n_str}' is not an integer")))?;
                let p = p_str
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| bad(format!("'{s}': '{p_str}' is not a probability")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(format!("'{s}': p must be in [0, 1]")));
                }
                Ok(Topology::Gnp {
                    n,
                    ppm: (p * 1e6).round() as u32,
                })
            }
            other => Err(bad(format!(
                "unknown topology family '{other}' \
                 (cycle, path, complete, star, grid, torus, hypercube, ccc, \
                 btree, rregular, gnp, barbell, lollipop, ringcliques)"
            ))),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Cycle { n } => write!(f, "cycle(n={n})"),
            Topology::Path { n } => write!(f, "path(n={n})"),
            Topology::Complete { n } => write!(f, "complete(n={n})"),
            Topology::Star { n } => write!(f, "star(n={n})"),
            Topology::Grid2d { rows, cols, torus } => {
                write!(
                    f,
                    "{}({rows}x{cols})",
                    if *torus { "torus" } else { "grid" }
                )
            }
            Topology::Hypercube { dim } => write!(f, "hypercube(d={dim})"),
            Topology::Ccc { dim } => write!(f, "ccc(d={dim})"),
            Topology::BinaryTree { n } => write!(f, "btree(n={n})"),
            Topology::RandomRegular { n, d } => write!(f, "rregular(n={n},d={d})"),
            Topology::Gnp { n, ppm } => write!(f, "gnp(n={n},p={})", *ppm as f64 / 1e6),
            Topology::Barbell { k } => write!(f, "barbell(k={k})"),
            Topology::Lollipop { k, tail } => write!(f, "lollipop(k={k},tail={tail})"),
            Topology::RingOfCliques { cliques, k } => {
                write!(f, "ringcliques(c={cliques},k={k})")
            }
        }
    }
}

fn invalid(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidParameters {
        reason: reason.into(),
    }
}

/// Cycle `C_n`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(invalid("cycle requires n >= 3"));
    }
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

/// Path `P_n`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(invalid("path requires n >= 2"));
    }
    let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(invalid("complete graph requires n >= 2"));
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Star with hub 0.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(invalid("star requires n >= 2"));
    }
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges)
}

/// 2-D grid or torus on `rows x cols` nodes.
pub fn grid2d(rows: usize, cols: usize, torus: bool) -> Result<Graph, GraphError> {
    if rows < 1 || cols < 1 || rows * cols < 2 {
        return Err(invalid("grid requires at least 2 nodes"));
    }
    if torus && (rows < 3 || cols < 3) {
        return Err(invalid("torus requires rows, cols >= 3 (else multi-edges)"));
    }
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            } else if torus {
                edges.push((id(r, c), id(r, 0)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            } else if torus {
                edges.push((id(r, c), id(0, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// Hypercube `Q_d`.
pub fn hypercube(dim: usize) -> Result<Graph, GraphError> {
    if dim == 0 || dim > 24 {
        return Err(invalid("hypercube requires 1 <= dim <= 24"));
    }
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim / 2);
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1 << b);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Cube-connected cycles `CCC_d`: hypercube corner `w` becomes the cycle
/// of nodes `(w, i)` for `i ∈ 0..d` (node id `w·d + i`), with ring edges
/// along each cycle and an "across" edge from `(w, i)` to `(w ⊕ 2^i, i)`.
///
/// Built by materializing the implicit port formulas — the CCC port order
/// `[ring-pred, ring-succ, across]` is not expressible as a single edge
/// list fed to [`Graph::from_edges`], so the implicit backend is the
/// canonical definition and this explicit form is its materialization.
pub fn ccc(dim: usize) -> Result<Graph, GraphError> {
    ImplicitTopology::Ccc { dim }.materialize()
}

/// Complete binary tree (heap layout: children of `i` are `2i+1`, `2i+2`).
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(invalid("binary tree requires n >= 2"));
    }
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..n {
        edges.push(((i - 1) / 2, i));
    }
    Graph::from_edges(n, &edges)
}

/// Random `d`-regular graph via the pairing (configuration) model,
/// retrying until the result is simple and connected.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if d == 0 || d >= n || !(n * d).is_multiple_of(2) {
        return Err(invalid(format!(
            "d-regular requires 0 < d < n and n*d even (n={n}, d={d})"
        )));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    const ATTEMPTS: usize = 500;
    for _ in 0..ATTEMPTS {
        // Stubs: node i appears d times.
        let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut ok = true;
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut edges = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                ok = false;
                break;
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                ok = false;
                break;
            }
            edges.push((u, v));
        }
        if !ok {
            continue;
        }
        match Graph::from_edges(n, &edges) {
            Ok(g) => return Ok(g),
            Err(GraphError::Disconnected) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(GraphError::GenerationFailed { attempts: ATTEMPTS })
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if n < 2 || !(0.0..=1.0).contains(&p) {
        return Err(invalid(format!(
            "gnp requires n >= 2, 0 <= p <= 1 (n={n}, p={p})"
        )));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    const ATTEMPTS: usize = 200;
    for _ in 0..ATTEMPTS {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        match Graph::from_edges(n, &edges) {
            Ok(g) => return Ok(g),
            Err(GraphError::Disconnected) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(GraphError::GenerationFailed { attempts: ATTEMPTS })
}

/// Two `K_k` cliques joined by one edge (nodes `0..k` and `k..2k`,
/// bridge `(k-1, k)`).
pub fn barbell(k: usize) -> Result<Graph, GraphError> {
    if k < 2 {
        return Err(invalid("barbell requires clique size k >= 2"));
    }
    let mut edges = Vec::new();
    for base in [0, k] {
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((base + u, base + v));
            }
        }
    }
    edges.push((k - 1, k));
    Graph::from_edges(2 * k, &edges)
}

/// Clique `K_k` with a path of `tail` nodes hanging off node `k−1`.
pub fn lollipop(k: usize, tail: usize) -> Result<Graph, GraphError> {
    if k < 2 || tail < 1 {
        return Err(invalid("lollipop requires k >= 2 and tail >= 1"));
    }
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u, v));
        }
    }
    edges.push((k - 1, k));
    for i in 0..tail - 1 {
        edges.push((k + i, k + i + 1));
    }
    Graph::from_edges(k + tail, &edges)
}

/// `cliques` copies of `K_k` in a ring; clique `i`'s last node connects to
/// clique `i+1`'s first node.
pub fn ring_of_cliques(cliques: usize, k: usize) -> Result<Graph, GraphError> {
    if cliques < 3 || k < 2 {
        return Err(invalid("ring of cliques requires cliques >= 3, k >= 2"));
    }
    let n = cliques * k;
    let mut edges = Vec::new();
    for c in 0..cliques {
        let base = c * k;
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((base + u, base + v));
            }
        }
        let next_base = ((c + 1) % cliques) * k;
        edges.push((base + k - 1, next_base));
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_properties() {
        let g = cycle(8).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 8);
        assert!(g.is_connected());
        assert!((0..8).all(|v| g.degree(v) == 2));
        assert_eq!(g.diameter(), 4);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_properties() {
        let g = path(5).unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(g.diameter(), 4);
        assert!(path(1).is_err());
    }

    #[test]
    fn complete_properties() {
        let g = complete(6).unwrap();
        assert_eq!(g.m(), 15);
        assert_eq!(g.diameter(), 1);
        assert!((0..6).all(|v| g.degree(v) == 5));
        assert!(complete(1).is_err());
    }

    #[test]
    fn star_properties() {
        let g = star(7).unwrap();
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid2d(3, 4, false).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 4 * 2); // horizontal 3*3, vertical 2*4
        let t = grid2d(3, 4, true).unwrap();
        assert_eq!(t.m(), 2 * 12); // torus is 4-regular
        assert!((0..12).all(|v| t.degree(v) == 4));
        assert!(grid2d(2, 2, true).is_err());
        assert!(grid2d(0, 5, false).is_err());
    }

    #[test]
    fn hypercube_properties() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert_eq!(g.diameter(), 4);
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn ccc_properties() {
        let g = ccc(3).unwrap();
        assert_eq!(g.n(), 24);
        assert_eq!(g.m(), 36);
        assert!((0..24).all(|v| g.degree(v) == 3));
        assert!(g.is_connected());
        assert!(ccc(2).is_err());
    }

    #[test]
    fn large_families_switch_to_the_implicit_backend() {
        // Just below the threshold: explicit. At/above: implicit.
        let small = Topology::Cycle { n: 1000 }.build(0).unwrap();
        assert!(!small.is_implicit());
        let big = Topology::Cycle {
            n: IMPLICIT_THRESHOLD,
        }
        .build(0)
        .unwrap();
        assert!(big.is_implicit());
        assert_eq!(big.n(), IMPLICIT_THRESHOLD);
        assert_eq!(big.degree(0), 2);
        // Non-closed-form families never switch.
        let tree = Topology::BinaryTree { n: 200_000 }.build(0).unwrap();
        assert!(!tree.is_implicit());
    }

    #[test]
    fn binary_tree_properties() {
        let g = binary_tree(7).unwrap();
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(6), 1);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn random_regular_is_regular_connected() {
        for seed in 0..5 {
            let g = random_regular(24, 3, seed).unwrap();
            assert_eq!(g.n(), 24);
            assert!((0..24).all(|v| g.degree(v) == 3));
            assert!(g.is_connected());
        }
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn random_regular_deterministic_in_seed() {
        let a = random_regular(16, 4, 7).unwrap();
        let b = random_regular(16, 4, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_connected_works() {
        let g = gnp_connected(20, 0.3, 3).unwrap();
        assert!(g.is_connected());
        assert!(gnp_connected(1, 0.5, 0).is_err());
        assert!(gnp_connected(10, 1.5, 0).is_err());
        // p = 0 can never connect: must exhaust retries.
        assert!(matches!(
            gnp_connected(4, 0.0, 0),
            Err(GraphError::GenerationFailed { .. })
        ));
    }

    #[test]
    fn barbell_and_lollipop() {
        let g = barbell(4).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 6 + 1);
        let l = lollipop(4, 3).unwrap();
        assert_eq!(l.n(), 7);
        assert_eq!(l.m(), 6 + 3);
        assert_eq!(l.degree(6), 1);
        assert!(barbell(1).is_err());
        assert!(lollipop(4, 0).is_err());
    }

    #[test]
    fn ring_of_cliques_shape() {
        let g = ring_of_cliques(4, 3).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 4 * 3 + 4);
        assert!(g.is_connected());
        assert!(ring_of_cliques(2, 3).is_err());
    }

    #[test]
    fn parses_cli_specs() {
        let cases: [(&str, Topology); 11] = [
            ("complete:64", Topology::Complete { n: 64 }),
            ("clique:8", Topology::Complete { n: 8 }),
            ("cycle:32", Topology::Cycle { n: 32 }),
            ("hypercube:6", Topology::Hypercube { dim: 6 }),
            ("ccc:4", Topology::Ccc { dim: 4 }),
            (
                "grid:4x6",
                Topology::Grid2d {
                    rows: 4,
                    cols: 6,
                    torus: false,
                },
            ),
            (
                "torus:8x8",
                Topology::Grid2d {
                    rows: 8,
                    cols: 8,
                    torus: true,
                },
            ),
            ("rregular:64x4", Topology::RandomRegular { n: 64, d: 4 }),
            ("lollipop:8x4", Topology::Lollipop { k: 8, tail: 4 }),
            (
                "ringcliques:8x8",
                Topology::RingOfCliques { cliques: 8, k: 8 },
            ),
            ("gnp:64x0.05", Topology::Gnp { n: 64, ppm: 50_000 }),
        ];
        for (text, expected) in cases {
            assert_eq!(text.parse::<Topology>().unwrap(), expected, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "complete",
            "complete:x",
            "grid:8",
            "torus:8x8x8",
            "gnp:64x1.5",
            "klein-bottle:4",
            "rregular:64",
        ] {
            assert!(bad.parse::<Topology>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn topology_enum_roundtrip() {
        let topos = [
            Topology::Cycle { n: 10 },
            Topology::Path { n: 10 },
            Topology::Complete { n: 10 },
            Topology::Star { n: 10 },
            Topology::Grid2d {
                rows: 4,
                cols: 4,
                torus: true,
            },
            Topology::Hypercube { dim: 3 },
            Topology::Ccc { dim: 3 },
            Topology::BinaryTree { n: 10 },
            Topology::RandomRegular { n: 10, d: 3 },
            Topology::Gnp {
                n: 10,
                ppm: 400_000,
            },
            Topology::Barbell { k: 5 },
            Topology::Lollipop { k: 5, tail: 5 },
            Topology::RingOfCliques { cliques: 3, k: 4 },
        ];
        for t in topos {
            let g = t.build(11).unwrap();
            assert_eq!(g.n(), t.node_count(), "node_count mismatch for {t}");
            assert!(g.is_connected());
            assert!(!t.family().is_empty());
            assert!(!t.to_string().is_empty());
            // The spec form round-trips through FromStr (the Display form
            // intentionally does not — it is for humans).
            assert_eq!(t.spec().parse::<Topology>().unwrap(), t, "{t}");
        }
        // A grid (non-torus) variant too, since the array above only has
        // the torus flavor.
        let grid = Topology::Grid2d {
            rows: 3,
            cols: 5,
            torus: false,
        };
        assert_eq!(grid.spec(), "grid:3x5");
        assert_eq!(grid.spec().parse::<Topology>().unwrap(), grid);
    }
}
