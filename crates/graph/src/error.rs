//! Error types for the `ale-graph` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and property computation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The requested topology parameters are invalid (e.g. a 3-regular graph
    /// on 3 nodes, a cycle on fewer than 3 nodes).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An edge references a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop was supplied; the paper's model uses simple graphs.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// The graph is not connected, but the operation requires connectivity
    /// (the paper's model assumes a connected network).
    Disconnected,
    /// A randomized generator exhausted its retry budget (e.g. the pairing
    /// model kept producing self-loops/multi-edges).
    GenerationFailed {
        /// Number of attempts made.
        attempts: usize,
    },
    /// A property computation was asked for an exact answer on a graph too
    /// large for the exponential brute force.
    TooLargeForExact {
        /// Maximum supported size.
        limit: usize,
        /// Actual size.
        n: usize,
    },
    /// An underlying spectral/Markov computation failed.
    Numeric {
        /// Message from the numeric layer.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid topology parameters: {reason}")
            }
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for n = {n}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v})")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::GenerationFailed { attempts } => {
                write!(f, "random generation failed after {attempts} attempts")
            }
            GraphError::TooLargeForExact { limit, n } => {
                write!(
                    f,
                    "graph too large for exact computation: n = {n} > {limit}"
                )
            }
            GraphError::Numeric { reason } => write!(f, "numeric failure: {reason}"),
        }
    }
}

impl Error for GraphError {}

impl From<ale_markov::MarkovError> for GraphError {
    fn from(e: ale_markov::MarkovError) -> Self {
        GraphError::Numeric {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants = vec![
            GraphError::InvalidParameters {
                reason: "n too small".into(),
            },
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::DuplicateEdge { u: 0, v: 1 },
            GraphError::Disconnected,
            GraphError::GenerationFailed { attempts: 10 },
            GraphError::TooLargeForExact { limit: 22, n: 100 },
            GraphError::Numeric {
                reason: "overflow".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn from_markov_error() {
        let e: GraphError = ale_markov::MarkovError::Empty.into();
        assert!(matches!(e, GraphError::Numeric { .. }));
    }
}
