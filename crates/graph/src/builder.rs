//! Incremental graph construction.
//!
//! [`GraphBuilder`] is the convenient front door for custom topologies
//! (generated families live in [`crate::generators`]): accumulate edges,
//! then validate once at [`GraphBuilder::build`].
//!
//! ```
//! use ale_graph::GraphBuilder;
//!
//! // A 4-node diamond.
//! let g = GraphBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(0, 2)
//!     .edge(1, 3)
//!     .edge(2, 3)
//!     .build()?;
//! assert_eq!(g.m(), 4);
//! assert_eq!(g.diameter(), 2);
//! # Ok::<(), ale_graph::GraphError>(())
//! ```

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// A non-consuming builder for [`Graph`] (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds one undirected edge.
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// The same conditions as [`Graph::from_edges`]: out-of-range nodes,
    /// self-loops, duplicate edges, or a disconnected result.
    pub fn build(&self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.n, &self.edges)
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_and_bulk_edges() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1).edge(1, 2);
        b.edges([(2, 3), (3, 4)]);
        assert_eq!(b.edge_count(), 4);
        let g = b.build().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn builder_is_reusable() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 2);
        let g1 = b.build().unwrap();
        b.edge(0, 2); // complete the triangle
        let g2 = b.build().unwrap();
        assert_eq!(g1.m(), 2);
        assert_eq!(g2.m(), 3);
    }

    #[test]
    fn extend_impl() {
        let mut b = GraphBuilder::new(3);
        b.extend(vec![(0, 1), (1, 2)]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn propagates_validation_errors() {
        assert!(GraphBuilder::new(2).edge(0, 0).build().is_err());
        assert!(GraphBuilder::new(4).edge(0, 1).build().is_err()); // disconnected
        let mut dup = GraphBuilder::new(2);
        dup.edge(0, 1).edge(1, 0);
        assert!(dup.build().is_err());
    }
}
