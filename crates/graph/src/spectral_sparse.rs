//! Sparse spectral computations that scale to large graphs.
//!
//! The dense Jacobi/power tools in `ale-markov` cost `O(n²)` memory; for the
//! larger networks in the experiment sweeps we instead run power iteration
//! against the **normalized lazy walk operator** in `O(m)` per step:
//!
//! `N = ½I + ½ D^{-1/2} A D^{-1/2}`
//!
//! `N` is symmetric and similar to the lazy walk `P = ½I + ½D⁻¹A`
//! (via `N = D^{1/2} P D^{-1/2}`), so they share eigenvalues; the principal
//! eigenvector of `N` is `D^{1/2}𝟙` (∝ `√deg`), which we deflate against to
//! extract `λ₂`.
//!
//! The operator itself is a [`ale_markov::CsrMatrix`] built by
//! [`crate::transition::normalized_lazy_csr`] — the same sparse kernel the
//! chain-level code uses — applied through `mul_vec_into` so the iteration
//! allocates nothing per step.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::transition::normalized_lazy_csr;

/// Second-largest eigenvalue `λ₂` of the lazy random walk on `g`, computed
/// by sparse deflated power iteration.
///
/// # Errors
///
/// [`GraphError::Numeric`] if the iteration fails to converge within
/// `max_iters` (tiny spectral gaps; callers should increase the budget or
/// fall back to dense methods for small graphs).
///
/// # Examples
///
/// ```
/// use ale_graph::{generators, spectral_sparse};
/// let g = generators::complete(16)?;
/// let l2 = spectral_sparse::lambda2_lazy(&g, 1e-10, 100_000)?;
/// // Lazy K_n: λ₂ = 1/2 − 1/(2(n−1)).
/// assert!((l2 - (0.5 - 0.5 / 15.0)).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lambda2_lazy(g: &Graph, tol: f64, max_iters: usize) -> Result<f64, GraphError> {
    let n = g.n();
    if n == 1 {
        return Ok(0.0);
    }
    let sqrt_deg: Vec<f64> = (0..n).map(|v| (g.degree(v) as f64).sqrt()).collect();
    let principal_norm: f64 = sqrt_deg.iter().map(|x| x * x).sum::<f64>().sqrt();
    let principal: Vec<f64> = sqrt_deg.iter().map(|x| x / principal_norm).collect();

    let n_op = normalized_lazy_csr(g);
    let apply = |x: &[f64], out: &mut [f64]| {
        n_op.mul_vec_into(x, out)
            .expect("operator and iterate dimensions agree by construction");
    };

    // Deterministic start vector, deflated against the principal direction.
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    deflate(&mut v, &principal);
    normalize(&mut v)?;

    let mut buf = vec![0.0; n];
    let mut lambda = 0.0f64;
    for it in 0..max_iters {
        apply(&v, &mut buf);
        deflate(&mut buf, &principal);
        let norm = l2norm(&buf);
        if norm < 1e-300 {
            return Ok(0.0);
        }
        for x in buf.iter_mut() {
            *x /= norm;
        }
        // Rayleigh quotient for the current iterate.
        apply(&buf, &mut v);
        let new_lambda = dot(&buf, &v);
        std::mem::swap(&mut v, &mut buf);
        // v now holds the normalized iterate; buf holds N*iterate (stale).
        let diff = (new_lambda - lambda).abs();
        lambda = new_lambda;
        if it > 2 && diff < tol {
            return Ok(lambda);
        }
    }
    Err(GraphError::Numeric {
        reason: format!("lambda2 power iteration did not converge in {max_iters} iterations"),
    })
}

/// Spectral gap `1 − λ₂` of the lazy walk.
///
/// # Errors
///
/// Propagates [`lambda2_lazy`] failures.
pub fn lazy_spectral_gap(g: &Graph, tol: f64, max_iters: usize) -> Result<f64, GraphError> {
    Ok(1.0 - lambda2_lazy(g, tol, max_iters)?)
}

/// Upper bound on the paper's mixing time from the lazy spectral gap:
/// `t_mix ≤ ⌈(ln(2n) + ½·ln(d_max/d_min)) / gap⌉`.
///
/// Derived from the reversible bound
/// `|Pᵗ(i,j) − π_j| ≤ λ₂ᵗ √(π_j/π_i) ≤ λ₂ᵗ √(d_max/d_min)` and the paper's
/// `1/(2n)` max-norm threshold with `π_j ≥ d_min/(2m) ≥ 1/n²`-style slack
/// absorbed into the degree ratio.
///
/// # Errors
///
/// Propagates [`lambda2_lazy`] failures.
pub fn mixing_time_upper(g: &Graph, tol: f64, max_iters: usize) -> Result<u64, GraphError> {
    let n = g.n();
    if n == 1 {
        return Ok(0);
    }
    let gap = lazy_spectral_gap(g, tol, max_iters)?;
    if gap <= 0.0 {
        return Err(GraphError::Numeric {
            reason: "non-positive spectral gap".into(),
        });
    }
    let d_max = g.max_degree() as f64;
    let d_min = (0..n).map(|v| g.degree(v)).min().unwrap_or(1) as f64;
    let t = ((2.0 * n as f64).ln() + 0.5 * (d_max / d_min).ln()) / gap;
    Ok(t.ceil().max(1.0) as u64)
}

/// Cheeger-style band for graph conductance from the lazy spectral gap:
/// `gap ≤ Φ(G)` and `Φ(G) ≤ √(8·gap)` (constants folded per the
/// Sinclair–Jerrum inequalities with the ½ laziness factor).
///
/// Returns `(lo, hi)`.
///
/// # Errors
///
/// Propagates [`lambda2_lazy`] failures.
pub fn conductance_band(g: &Graph, tol: f64, max_iters: usize) -> Result<(f64, f64), GraphError> {
    let gap = lazy_spectral_gap(g, tol, max_iters)?;
    Ok((gap.max(0.0), (8.0 * gap).sqrt().min(1.0)))
}

fn deflate(v: &mut [f64], unit: &[f64]) {
    let proj = dot(v, unit);
    for (x, u) in v.iter_mut().zip(unit) {
        *x -= proj * u;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn l2norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) -> Result<(), GraphError> {
    let norm = l2norm(v);
    if norm == 0.0 {
        return Err(GraphError::Numeric {
            reason: "degenerate start vector".into(),
        });
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use ale_markov::{spectral, MarkovChain};

    fn dense_lambda2(g: &Graph) -> f64 {
        // Dense oracle via the symmetric normalized operator is only easy
        // for regular graphs (P itself symmetric); use those in tests.
        let chain = MarkovChain::lazy_random_walk(&g.adjacency()).unwrap();
        spectral::jacobi_eigen(chain.as_dense().expect("dense-built chain"), 300)
            .unwrap()
            .values[1]
    }

    #[test]
    fn matches_dense_on_regular_graphs() {
        for g in [
            generators::cycle(12).unwrap(),
            generators::complete(10).unwrap(),
            generators::hypercube(4).unwrap(),
            generators::grid2d(4, 4, true).unwrap(),
        ] {
            let sparse = lambda2_lazy(&g, 1e-12, 2_000_000).unwrap();
            let dense = dense_lambda2(&g);
            assert!(
                (sparse - dense).abs() < 1e-6,
                "sparse {sparse} vs dense {dense} on n={}",
                g.n()
            );
        }
    }

    #[test]
    fn nonregular_graph_converges() {
        let g = generators::star(16).unwrap();
        let l2 = lambda2_lazy(&g, 1e-11, 1_000_000).unwrap();
        // Lazy star: nonlazy eigenvalues {1, 0, −1}; lazy: {1, 1/2, 0}.
        assert!((l2 - 0.5).abs() < 1e-6, "star λ₂ = {l2}");
    }

    #[test]
    fn gap_positive_on_connected_graphs() {
        for g in [
            generators::binary_tree(31).unwrap(),
            generators::barbell(6).unwrap(),
            generators::lollipop(5, 8).unwrap(),
        ] {
            let gap = lazy_spectral_gap(&g, 1e-11, 2_000_000).unwrap();
            assert!(gap > 0.0, "gap must be positive, got {gap}");
            assert!(gap < 1.0);
        }
    }

    #[test]
    fn mixing_upper_dominates_exact_small() {
        use ale_markov::mixing::mixing_time_exact;
        for g in [
            generators::cycle(10).unwrap(),
            generators::complete(8).unwrap(),
            generators::hypercube(3).unwrap(),
        ] {
            let chain = MarkovChain::lazy_random_walk(&g.adjacency()).unwrap();
            let exact = mixing_time_exact(&chain, 1 << 24).unwrap();
            let upper = mixing_time_upper(&g, 1e-12, 2_000_000).unwrap();
            assert!(upper >= exact, "upper {upper} < exact {exact} on {}", g.n());
        }
    }

    #[test]
    fn conductance_band_brackets_exact() {
        use crate::cuts::conductance_exact;
        for g in [
            generators::cycle(12).unwrap(),
            generators::complete(8).unwrap(),
            generators::hypercube(4).unwrap(),
        ] {
            let (lo, hi) = conductance_band(&g, 1e-12, 2_000_000).unwrap();
            let phi = conductance_exact(&g).unwrap();
            assert!(
                lo <= phi + 1e-9 && phi <= hi + 1e-9,
                "band [{lo}, {hi}] misses Φ = {phi}"
            );
        }
    }

    #[test]
    fn singleton_trivial() {
        // Cannot build a 1-node graph through validated constructors, so
        // exercise the n == 1 guards directly through a tiny K2.
        let g = generators::complete(2).unwrap();
        let l2 = lambda2_lazy(&g, 1e-12, 10_000).unwrap();
        // Lazy K2: eigenvalues 1 and 0.
        assert!(l2.abs() < 1e-9);
    }
}
