//! Aggregated graph properties and the knowledge bundle handed to
//! protocols.
//!
//! [`GraphProps::compute`] gathers everything the experiment harness needs
//! about a network: size, diameter, spectral gap, conductance `Φ`,
//! isoperimetric number `i(G)`, and mixing time `t_mix`. Each non-trivial
//! quantity records *how* it was obtained ([`Method`]) because the paper's
//! protocols only require bounds — and the harness must report which runs
//! used exact oracles versus spectral estimates.

use crate::analytic::{self, AnalyticHints};
use crate::cuts;
use crate::error::GraphError;
use crate::generators::Topology;
use crate::graph::Graph;
use crate::spectral_sparse;
use ale_markov::{mixing, MarkovChain};
use std::fmt;

/// How a property value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact combinatorial/matrix computation.
    Exact,
    /// Closed form for a generated family ([`crate::analytic`]).
    Analytic,
    /// Spectral estimate (Cheeger-style band; the stored value is the
    /// conservative end appropriate for protocol inputs).
    Spectral,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Exact => write!(f, "exact"),
            Method::Analytic => write!(f, "analytic"),
            Method::Spectral => write!(f, "spectral"),
        }
    }
}

/// A property value together with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The value.
    pub value: f64,
    /// How it was computed.
    pub method: Method,
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} ({})", self.value, self.method)
    }
}

/// Everything the harness knows about a network graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProps {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Exact diameter.
    pub diameter: usize,
    /// Second eigenvalue of the lazy random walk.
    pub lambda2: f64,
    /// Spectral gap `1 − λ₂`.
    pub spectral_gap: f64,
    /// Graph conductance `Φ(G)`.
    pub conductance: Estimate,
    /// Isoperimetric number `i(G)`.
    pub isoperimetric: Estimate,
    /// Upper bound on the paper's mixing time (exact when `method` is
    /// [`Method::Exact`]).
    pub tmix: u64,
    /// Provenance of `tmix`.
    pub tmix_method: Method,
}

/// Size limit for the exact `O(n³ log t)` mixing-time computation.
const EXACT_MIXING_LIMIT: usize = 128;
/// Iteration budget for sparse power iteration.
const POWER_ITERS: usize = 5_000_000;
/// Convergence tolerance for sparse power iteration.
const POWER_TOL: f64 = 1e-11;

impl GraphProps {
    /// Computes all properties, without family hints.
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the spectral layer.
    pub fn compute(g: &Graph) -> Result<Self, GraphError> {
        Self::compute_inner(g, &AnalyticHints::default())
    }

    /// Computes all properties, preferring closed forms for the given
    /// topology family where available.
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the spectral layer.
    pub fn compute_for(g: &Graph, topology: &Topology) -> Result<Self, GraphError> {
        Self::compute_inner(g, &analytic::hints(topology))
    }

    fn compute_inner(g: &Graph, hints: &AnalyticHints) -> Result<Self, GraphError> {
        let n = g.n();
        let lambda2 = spectral_sparse::lambda2_lazy(g, POWER_TOL, POWER_ITERS)?;
        let gap = 1.0 - lambda2;

        let conductance = if let Ok(v) = cuts::conductance_exact(g) {
            Estimate {
                value: v,
                method: Method::Exact,
            }
        } else if let Some(v) = hints.conductance {
            Estimate {
                value: v,
                method: Method::Analytic,
            }
        } else {
            // The lazy gap lower-bounds Φ; conservative for protocol use
            // (see `NetworkKnowledge`).
            Estimate {
                value: gap.max(f64::MIN_POSITIVE),
                method: Method::Spectral,
            }
        };

        let min_degree = (0..n).map(|v| g.degree(v)).min().unwrap_or(0);
        let isoperimetric = if let Ok(v) = cuts::isoperimetric_exact(g) {
            Estimate {
                value: v,
                method: Method::Exact,
            }
        } else if let Some(v) = hints.isoperimetric {
            Estimate {
                value: v,
                method: Method::Analytic,
            }
        } else {
            // i(G) ≥ Φ·d_min; use the spectral Φ lower bound.
            Estimate {
                value: (gap * min_degree as f64).max(f64::MIN_POSITIVE),
                method: Method::Spectral,
            }
        };

        let (tmix, tmix_method) = if n <= EXACT_MIXING_LIMIT {
            let chain = MarkovChain::lazy_random_walk(&g.adjacency())?;
            match mixing::mixing_time_exact(&chain, 1 << 34) {
                Ok(t) => (t, Method::Exact),
                Err(_) => (
                    spectral_sparse::mixing_time_upper(g, POWER_TOL, POWER_ITERS)?,
                    Method::Spectral,
                ),
            }
        } else if let Some(t) = hints.tmix_upper {
            // Both the hint and the spectral bound are upper bounds; take
            // the tighter one when both are cheap to get.
            let spectral = spectral_sparse::mixing_time_upper(g, POWER_TOL, POWER_ITERS)?;
            (t.min(spectral), Method::Analytic)
        } else {
            (
                spectral_sparse::mixing_time_upper(g, POWER_TOL, POWER_ITERS)?,
                Method::Spectral,
            )
        };

        Ok(GraphProps {
            n,
            m: g.m(),
            min_degree,
            max_degree: g.max_degree(),
            diameter: g.diameter(),
            lambda2,
            spectral_gap: gap,
            conductance,
            isoperimetric,
            tmix,
            tmix_method,
        })
    }
}

/// The knowledge bundle the paper's **irrevocable** protocol assumes
/// (Theorem 1: known `n`, conductance `Φ`, and mixing time `t_mix` — linear
/// upper bounds suffice).
///
/// Conservative directions: `tmix` may over-estimate (walks only get
/// longer) and `phi` may under-estimate (broadcast territories only get
/// smaller targets, compensated by more walks), so deriving from spectral
/// estimates preserves correctness at some message-cost overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkKnowledge {
    /// Number of nodes (exact in the known-`n` model).
    pub n: usize,
    /// Upper bound on the lazy-walk mixing time.
    pub tmix: u64,
    /// Conductance estimate (lower-bound flavored).
    pub phi: f64,
}

impl NetworkKnowledge {
    /// Extracts the protocol inputs from computed properties.
    pub fn from_props(p: &GraphProps) -> Self {
        NetworkKnowledge {
            n: p.n,
            tmix: p.tmix.max(1),
            phi: p.conductance.value.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn small_cycle_uses_exact_everything() {
        let g = generators::cycle(10).unwrap();
        let p = GraphProps::compute(&g).unwrap();
        assert_eq!(p.n, 10);
        assert_eq!(p.m, 10);
        assert_eq!(p.diameter, 5);
        assert_eq!(p.min_degree, 2);
        assert_eq!(p.max_degree, 2);
        assert_eq!(p.conductance.method, Method::Exact);
        assert_eq!(p.isoperimetric.method, Method::Exact);
        assert_eq!(p.tmix_method, Method::Exact);
        assert!((p.conductance.value - 0.2).abs() < 1e-12);
        assert!(p.spectral_gap > 0.0);
    }

    #[test]
    fn large_cycle_uses_hints() {
        let t = Topology::Cycle { n: 256 };
        let g = t.build(0).unwrap();
        let p = GraphProps::compute_for(&g, &t).unwrap();
        assert_eq!(p.conductance.method, Method::Analytic);
        assert!((p.conductance.value - 1.0 / 128.0).abs() < 1e-12);
        assert_eq!(p.tmix_method, Method::Analytic);
        assert!(p.tmix >= 256 * 4, "cycle tmix should be at least ~n^2/16");
    }

    #[test]
    fn large_random_regular_uses_spectral() {
        let t = Topology::RandomRegular { n: 200, d: 4 };
        let g = t.build(5).unwrap();
        let p = GraphProps::compute_for(&g, &t).unwrap();
        assert_eq!(p.conductance.method, Method::Spectral);
        assert!(p.conductance.value > 0.0);
        // Expanders mix fast: spectral bound should be well below n.
        assert!(p.tmix < 200, "expander tmix bound too large: {}", p.tmix);
    }

    #[test]
    fn knowledge_extraction_is_sane() {
        let t = Topology::Complete { n: 32 };
        let g = t.build(0).unwrap();
        let p = GraphProps::compute_for(&g, &t).unwrap();
        let k = NetworkKnowledge::from_props(&p);
        assert_eq!(k.n, 32);
        assert!(k.tmix >= 1);
        assert!(k.phi > 0.0 && k.phi <= 1.0);
    }

    #[test]
    fn estimates_display() {
        let e = Estimate {
            value: 0.5,
            method: Method::Spectral,
        };
        assert!(e.to_string().contains("spectral"));
        assert_eq!(Method::Exact.to_string(), "exact");
        assert_eq!(Method::Analytic.to_string(), "analytic");
    }

    #[test]
    fn tmix_exact_on_exactly_computable_sizes() {
        let g = generators::hypercube(4).unwrap(); // n = 16
        let p = GraphProps::compute(&g).unwrap();
        assert_eq!(p.tmix_method, Method::Exact);
        // Lazy Q4 mixes quickly but not instantly.
        assert!(p.tmix >= 2 && p.tmix <= 64, "tmix = {}", p.tmix);
    }
}
