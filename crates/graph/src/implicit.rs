//! Implicit (computed) topologies: O(1) graph memory for regular families.
//!
//! An [`ImplicitTopology`] stores only its parameters — neighbors, port
//! targets, and reverse ports are *computed* on demand instead of being
//! materialized into per-node adjacency tables. [`crate::Graph`] wraps one
//! behind the same API as an explicitly built graph
//! ([`crate::Graph::from_implicit`]), so the CONGEST engine and every
//! analysis pass run unchanged while graph memory stays constant in `n`.
//! This is what makes million-node ladders fit on one box: a
//! 1000×1000 torus costs a few machine words instead of hundreds of
//! megabytes of adjacency vectors.
//!
//! The port numberings are **bit-identical** to the explicit builders in
//! [`crate::generators`]: for rings, tori, and hypercubes the formulas
//! below reproduce exactly the port order that `Graph::from_edges` derives
//! from each generator's edge-emission sequence (pinned by
//! `crates/graph/tests/implicit_equivalence.rs`). Cube-connected cycles are
//! defined here first and the explicit builder materializes the formulas,
//! so the two backends agree by construction.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId, Port};

/// A topology whose structure is computed from parameters, never stored.
///
/// All families here are vertex-regular with degree ≤ `dim`, connected by
/// construction, and simple. See the module docs for the port-numbering
/// contract with the explicit builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplicitTopology {
    /// A cycle on `n ≥ 3` nodes (degree 2).
    Ring {
        /// Number of nodes.
        n: usize,
    },
    /// A `rows × cols` torus, both ≥ 3 (degree 4).
    Torus {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A `dim`-dimensional hypercube, `1 ≤ dim ≤ 24` (degree `dim`).
    Hypercube {
        /// Dimension; `n = 2^dim`.
        dim: usize,
    },
    /// Cube-connected cycles of dimension `3 ≤ dim ≤ 26`: each hypercube
    /// corner is replaced by a `dim`-cycle, giving a constant-degree-3
    /// network on `n = dim · 2^dim` nodes — the ladder's bounded-degree
    /// family at sizes where the pairing-model expander is too expensive
    /// to build explicitly.
    Ccc {
        /// Dimension; `n = dim · 2^dim`.
        dim: usize,
    },
}

/// Ports of node `v` on a ring, in the order `Graph::from_edges` derives
/// from the cycle generator's emission `(0,1), (1,2), …, (n-1,0)`.
fn ring_ports(n: usize, v: usize) -> [usize; 2] {
    if v == 0 {
        [1, n - 1]
    } else {
        [v - 1, (v + 1) % n]
    }
}

/// Ports of node `v` on a torus, matching the grid generator's
/// row-major east-then-south edge emission with wraparound.
fn torus_ports(rows: usize, cols: usize, v: usize) -> [usize; 4] {
    let (r, c) = (v / cols, v % cols);
    let north = ((r + rows - 1) % rows) * cols + c;
    let south = ((r + 1) % rows) * cols + c;
    let west = r * cols + (c + cols - 1) % cols;
    let east = r * cols + (c + 1) % cols;
    // Port order = order the node's incident edges appear in the
    // generator's emission; wrap edges are emitted by the far cell, which
    // pushes them behind the node's own east/south slots.
    match (r == 0, c == 0) {
        (false, false) => [north, west, east, south],
        (false, true) => [north, east, south, west],
        (true, false) => [west, east, south, north],
        (true, true) => [east, south, west, north],
    }
}

/// The flipped bit for port `p` of hypercube node `w`.
///
/// The generator emits `(u, u ^ 2^b)` for ascending `u` then ascending
/// `b` (only when `u < v`), so `w`'s ports list set bits descending
/// (edges emitted by smaller partners) before clear bits ascending
/// (edges emitted by `w` itself).
fn hypercube_port_bit(dim: usize, w: usize, p: usize) -> usize {
    let s = w.count_ones() as usize;
    if p < s {
        let mut seen = 0;
        for b in (0..dim).rev() {
            if (w >> b) & 1 == 1 {
                if seen == p {
                    return b;
                }
                seen += 1;
            }
        }
    } else {
        let mut remaining = p - s;
        for b in 0..dim {
            if (w >> b) & 1 == 0 {
                if remaining == 0 {
                    return b;
                }
                remaining -= 1;
            }
        }
    }
    panic!("port {p} out of range for hypercube node {w} (dim {dim})");
}

/// The port at `u = w ^ 2^b` that leads back to `w` (closed form).
fn hypercube_reverse(u: usize, b: usize) -> usize {
    if (u >> b) & 1 == 1 {
        // Bit `b` is set in `u`: its edge sits in the set-bits-descending
        // prefix, at the index counting set bits above `b`.
        (u >> (b + 1)).count_ones() as usize
    } else {
        // Clear in `u`: offset past all set bits, then clear bits below `b`.
        u.count_ones() as usize + b - (u & ((1 << b) - 1)).count_ones() as usize
    }
}

impl ImplicitTopology {
    /// Validates the family parameters (same constraints as the explicit
    /// generators).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] when the parameters violate the
    /// family's constraints (see the variant docs).
    pub fn validate(&self) -> Result<(), GraphError> {
        let bad = |reason: String| Err(GraphError::InvalidParameters { reason });
        match *self {
            ImplicitTopology::Ring { n } if n < 3 => bad(format!("ring needs n >= 3, got {n}")),
            ImplicitTopology::Torus { rows, cols } if rows < 3 || cols < 3 => {
                bad(format!("torus needs rows, cols >= 3, got {rows}x{cols}"))
            }
            ImplicitTopology::Hypercube { dim } if !(1..=24).contains(&dim) => {
                bad(format!("hypercube dim must be in 1..=24, got {dim}"))
            }
            ImplicitTopology::Ccc { dim } if !(3..=26).contains(&dim) => {
                bad(format!("ccc dim must be in 3..=26, got {dim}"))
            }
            _ => Ok(()),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        match *self {
            ImplicitTopology::Ring { n } => n,
            ImplicitTopology::Torus { rows, cols } => rows * cols,
            ImplicitTopology::Hypercube { dim } => 1 << dim,
            ImplicitTopology::Ccc { dim } => dim << dim,
        }
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        match *self {
            ImplicitTopology::Ring { n } => n,
            ImplicitTopology::Torus { rows, cols } => 2 * rows * cols,
            ImplicitTopology::Hypercube { dim } => dim * (1 << dim) / 2,
            // dim·2^dim cycle edges plus 2^dim·dim/2 cross edges.
            ImplicitTopology::Ccc { dim } => (dim << dim) + (dim << dim) / 2,
        }
    }

    /// Degree of node `v` (these families are vertex-regular).
    pub fn degree(&self, v: NodeId) -> usize {
        debug_assert!(v < self.n(), "node {v} out of range");
        let _ = v;
        match *self {
            ImplicitTopology::Ring { .. } => 2,
            ImplicitTopology::Torus { .. } => 4,
            ImplicitTopology::Hypercube { dim } => dim,
            ImplicitTopology::Ccc { .. } => 3,
        }
    }

    /// Maximum degree (O(1); equals every node's degree).
    pub fn max_degree(&self) -> usize {
        self.degree(0)
    }

    /// The node reached from `v` through port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn port_target(&self, v: NodeId, p: Port) -> NodeId {
        assert!(v < self.n(), "node {v} out of range");
        match *self {
            ImplicitTopology::Ring { n } => ring_ports(n, v)[p],
            ImplicitTopology::Torus { rows, cols } => torus_ports(rows, cols, v)[p],
            ImplicitTopology::Hypercube { dim } => v ^ (1 << hypercube_port_bit(dim, v, p)),
            ImplicitTopology::Ccc { dim } => {
                let (w, i) = (v / dim, v % dim);
                match p {
                    0 => w * dim + (i + dim - 1) % dim,
                    1 => w * dim + (i + 1) % dim,
                    2 => (w ^ (1 << i)) * dim + i,
                    _ => panic!("port {p} out of range for ccc node {v}"),
                }
            }
        }
    }

    /// The port at `port_target(v, p)` that leads back to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        self.port_and_reverse(v, p).1
    }

    /// Fused `(port_target, reverse_port)` lookup — the engine's hot path
    /// resolves both in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn port_and_reverse(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        assert!(v < self.n(), "node {v} out of range");
        match *self {
            ImplicitTopology::Ring { n } => {
                let t = ring_ports(n, v)[p];
                let back = ring_ports(n, t);
                (t, if back[0] == v { 0 } else { 1 })
            }
            ImplicitTopology::Torus { rows, cols } => {
                let t = torus_ports(rows, cols, v)[p];
                let back = torus_ports(rows, cols, t);
                let q = back
                    .iter()
                    .position(|&u| u == v)
                    .expect("torus adjacency is symmetric");
                (t, q)
            }
            ImplicitTopology::Hypercube { dim } => {
                let b = hypercube_port_bit(dim, v, p);
                let t = v ^ (1 << b);
                (t, hypercube_reverse(t, b))
            }
            // Cycle predecessor/successor ports reverse to each other; the
            // cross edge keeps the same position `i` on both rings.
            ImplicitTopology::Ccc { .. } => (self.port_target(v, p), [1, 0, 2][p]),
        }
    }

    /// Materializes the family into an explicitly stored [`Graph`] with
    /// **identical** port numbering — the equivalence oracle for the
    /// implicit formulas, and the path taken when an algorithm genuinely
    /// needs stored adjacency (e.g. port shuffling).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the parameters are invalid.
    pub fn materialize(&self) -> Result<Graph, GraphError> {
        self.validate()?;
        let n = self.n();
        let mut ports: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        let mut reverse: Vec<Vec<Port>> = Vec::with_capacity(n);
        for v in 0..n {
            let d = self.degree(v);
            let mut pv = Vec::with_capacity(d);
            let mut rv = Vec::with_capacity(d);
            for p in 0..d {
                let (t, q) = self.port_and_reverse(v, p);
                pv.push(t);
                rv.push(q);
            }
            ports.push(pv);
            reverse.push(rv);
        }
        Ok(Graph::from_port_tables(ports, reverse, self.m()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<ImplicitTopology> {
        vec![
            ImplicitTopology::Ring { n: 7 },
            ImplicitTopology::Torus { rows: 3, cols: 5 },
            ImplicitTopology::Hypercube { dim: 4 },
            ImplicitTopology::Ccc { dim: 3 },
        ]
    }

    #[test]
    fn validates_parameters() {
        assert!(ImplicitTopology::Ring { n: 2 }.validate().is_err());
        assert!(ImplicitTopology::Torus { rows: 2, cols: 5 }
            .validate()
            .is_err());
        assert!(ImplicitTopology::Hypercube { dim: 0 }.validate().is_err());
        assert!(ImplicitTopology::Hypercube { dim: 25 }.validate().is_err());
        assert!(ImplicitTopology::Ccc { dim: 2 }.validate().is_err());
        for t in all() {
            assert!(t.validate().is_ok(), "{t:?}");
        }
    }

    #[test]
    fn degree_sum_matches_edge_count() {
        for t in all() {
            let sum: usize = (0..t.n()).map(|v| t.degree(v)).sum();
            assert_eq!(sum, 2 * t.m(), "{t:?}");
        }
    }

    #[test]
    fn reverse_ports_are_involutions() {
        for t in all() {
            for v in 0..t.n() {
                for p in 0..t.degree(v) {
                    let (u, q) = t.port_and_reverse(v, p);
                    assert_ne!(u, v, "{t:?}: self-loop at {v}");
                    assert_eq!(t.port_target(u, q), v, "{t:?}: reverse leads back");
                    assert_eq!(t.reverse_port(u, q), p, "{t:?}: reverse is an involution");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_simple() {
        for t in all() {
            for v in 0..t.n() {
                let mut nbrs: Vec<_> = (0..t.degree(v)).map(|p| t.port_target(v, p)).collect();
                nbrs.sort_unstable();
                let before = nbrs.len();
                nbrs.dedup();
                assert_eq!(before, nbrs.len(), "{t:?}: multi-edge at {v}");
            }
        }
    }

    #[test]
    fn materialized_graph_is_connected_and_consistent() {
        for t in all() {
            let g = t.materialize().unwrap();
            assert_eq!(g.n(), t.n(), "{t:?}");
            assert_eq!(g.m(), t.m(), "{t:?}");
            assert!(g.is_connected(), "{t:?}");
        }
    }

    #[test]
    fn ccc_structure() {
        let t = ImplicitTopology::Ccc { dim: 3 };
        assert_eq!(t.n(), 24);
        assert_eq!(t.m(), 36);
        // Node (w=0, i=1) = id 1: pred (0,0), succ (0,2), across (w=2, i=1).
        assert_eq!(t.port_target(1, 0), 0);
        assert_eq!(t.port_target(1, 1), 2);
        assert_eq!(t.port_target(1, 2), 2 * 3 + 1);
    }
}
