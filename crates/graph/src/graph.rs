//! The core [`Graph`] type: a simple connected undirected graph with
//! per-node **port numbering**.
//!
//! The paper's model (Section 2) gives nodes no identifiers — only a local
//! labeling of their incident links ("port numbers"). The simulator and
//! protocols address neighbors exclusively through ports; node ids exist
//! only on the host side (for wiring and analysis), never inside a protocol.
//!
//! Two storage backends sit behind one API:
//!
//! * **Explicit** — a compact CSR layout (`u32` offsets/targets/reverse
//!   ports in three flat vectors), built by [`Graph::from_edges`]. Memory
//!   is ~`4·(n + 4m)` bytes, with no per-node allocations.
//! * **Implicit** — an [`ImplicitTopology`] whose neighbors and ports are
//!   computed on demand ([`Graph::from_implicit`]): O(1) graph memory for
//!   the regular ladder families (ring/torus/hypercube/CCC) at millions of
//!   nodes.
//!
//! Equality ([`PartialEq`]) is structural — same node count, edge count,
//! and per-node port lists — so an implicit graph compares equal to its
//! materialized explicit twin.

use crate::error::GraphError;
use crate::implicit::ImplicitTopology;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A node identifier, visible only to the host/simulator side.
pub type NodeId = usize;

/// A port index in `0..degree(v)`, the only way a protocol can address a
/// neighbor. (The paper numbers ports `1..=N`; we use 0-based indices.)
pub type Port = usize;

/// Compressed-sparse-row port tables: node `v`'s ports live at
/// `offsets[v]..offsets[v+1]` in `targets` (neighbor ids, port order) and
/// `reverses` (the matching return ports).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    reverses: Vec<u32>,
}

impl Csr {
    /// Flattens per-node port/reverse tables into CSR form.
    fn from_tables(ports: Vec<Vec<NodeId>>, reverse: Vec<Vec<Port>>) -> Csr {
        let n = ports.len();
        let total: usize = ports.iter().map(Vec::len).sum();
        assert!(n < u32::MAX as usize, "graph too large for u32 indexing");
        assert!(
            total < u32::MAX as usize,
            "graph too large for u32 indexing"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(total);
        let mut reverses = Vec::with_capacity(total);
        offsets.push(0u32);
        for (pv, rv) in ports.into_iter().zip(reverse) {
            targets.extend(pv.into_iter().map(|t| t as u32));
            reverses.extend(rv.into_iter().map(|q| q as u32));
            offsets.push(targets.len() as u32);
        }
        Csr {
            offsets,
            targets,
            reverses,
        }
    }

    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Start of node `v`'s port range, with the range length.
    fn range(&self, v: NodeId) -> (usize, usize) {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        (lo, hi - lo)
    }
}

/// The storage backend behind a [`Graph`].
#[derive(Debug, Clone)]
enum Repr {
    Explicit(Csr),
    Implicit(ImplicitTopology),
}

/// A simple, connected, undirected graph with explicit port numbering.
///
/// Construction validates simplicity (no self-loops, no duplicate edges) and
/// connectivity, matching the paper's network model. Port numberings are
/// arbitrary per node and can be re-randomized with
/// [`Graph::with_shuffled_ports`] — protocol behaviour must be invariant
/// under such permutations (anonymity), which the property tests exploit.
///
/// # Examples
///
/// ```
/// use ale_graph::Graph;
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(0), 2);
/// // Port p of node v leads to a neighbor; the reverse port leads back.
/// let u = g.port_target(0, 0);
/// let back = g.reverse_port(0, 0);
/// assert_eq!(g.port_target(u, back), 0);
/// # Ok::<(), ale_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    repr: Repr,
    /// Number of undirected edges.
    m: usize,
}

/// Iterator over a node's neighbors in port order (see
/// [`Graph::neighbors`]).
#[derive(Debug, Clone)]
pub struct Neighbors<'g> {
    inner: NeighborsInner<'g>,
}

#[derive(Debug, Clone)]
enum NeighborsInner<'g> {
    Slice(std::slice::Iter<'g, u32>),
    Implicit {
        topo: &'g ImplicitTopology,
        v: NodeId,
        next: Port,
        degree: usize,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match &mut self.inner {
            NeighborsInner::Slice(it) => it.next().map(|&t| t as usize),
            NeighborsInner::Implicit {
                topo,
                v,
                next,
                degree,
            } => {
                if *next >= *degree {
                    return None;
                }
                let t = topo.port_target(*v, *next);
                *next += 1;
                Some(t)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = match &self.inner {
            NeighborsInner::Slice(it) => it.len(),
            NeighborsInner::Implicit { next, degree, .. } => degree - next,
        };
        (len, Some(len))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

impl Graph {
    /// Builds a graph from an explicit undirected edge list.
    ///
    /// Ports at each node are numbered in the order edges are supplied.
    ///
    /// # Errors
    ///
    /// * [`GraphError::InvalidParameters`] if `n == 0`.
    /// * [`GraphError::NodeOutOfRange`] for edges referencing ids `>= n`.
    /// * [`GraphError::SelfLoop`] / [`GraphError::DuplicateEdge`] for
    ///   non-simple input.
    /// * [`GraphError::Disconnected`] if the resulting graph is not
    ///   connected (the paper's model requires connectivity).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "graph must have at least one node".into(),
            });
        }
        let mut ports: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut reverse: Vec<Vec<Port>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge { u, v });
            }
            // The two endpoints' new ports point at each other — reverse
            // ports fall out of the insertion order with no lookup.
            let pu = ports[u].len();
            let pv = ports[v].len();
            ports[u].push(v);
            ports[v].push(u);
            reverse[u].push(pv);
            reverse[v].push(pu);
        }
        let g = Graph::from_port_tables(ports, reverse, edges.len());
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }

    /// Internal constructor from consistent port/reverse tables (no
    /// validation beyond CSR flattening); used by [`Graph::from_edges`]
    /// and [`ImplicitTopology::materialize`].
    pub(crate) fn from_port_tables(
        ports: Vec<Vec<NodeId>>,
        reverse: Vec<Vec<Port>>,
        m: usize,
    ) -> Self {
        Graph {
            repr: Repr::Explicit(Csr::from_tables(ports, reverse)),
            m,
        }
    }

    /// Internal constructor: computes reverse ports from a port table.
    fn from_ports(ports: Vec<Vec<NodeId>>, m: usize) -> Result<Self, GraphError> {
        let n = ports.len();
        // For each node u and port p, find the port q at v = ports[u][p]
        // with ports[v][q] == u. Ports to the same neighbor are unique in a
        // simple graph, so a map per node keeps it O(m).
        let mut reverse: Vec<Vec<Port>> = ports.iter().map(|p| vec![usize::MAX; p.len()]).collect();
        let mut port_of: Vec<std::collections::HashMap<NodeId, Port>> =
            vec![std::collections::HashMap::new(); n];
        for (u, nbrs) in ports.iter().enumerate() {
            for (p, &v) in nbrs.iter().enumerate() {
                port_of[u].insert(v, p);
            }
        }
        for (u, nbrs) in ports.iter().enumerate() {
            for (p, &v) in nbrs.iter().enumerate() {
                let q = *port_of[v].get(&u).ok_or(GraphError::InvalidParameters {
                    reason: format!("asymmetric adjacency between {u} and {v}"),
                })?;
                reverse[u][p] = q;
            }
        }
        Ok(Graph::from_port_tables(ports, reverse, m))
    }

    /// Wraps an [`ImplicitTopology`] without materializing it: graph
    /// memory stays O(1) no matter how large `n` is.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the family parameters are
    /// invalid (connectivity and simplicity hold by construction for
    /// valid parameters).
    pub fn from_implicit(topo: ImplicitTopology) -> Result<Self, GraphError> {
        topo.validate()?;
        Ok(Graph {
            m: topo.m(),
            repr: Repr::Implicit(topo),
        })
    }

    /// Whether this graph uses the implicit (computed) backend.
    pub fn is_implicit(&self) -> bool {
        matches!(self.repr, Repr::Implicit(_))
    }

    /// Number of nodes `n = |V|`.
    pub fn n(&self) -> usize {
        match &self.repr {
            Repr::Explicit(csr) => csr.n(),
            Repr::Implicit(t) => t.n(),
        }
    }

    /// Number of undirected edges `m = |E|`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of node `v` (also its number of ports).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        match &self.repr {
            Repr::Explicit(csr) => csr.range(v).1,
            Repr::Implicit(t) => {
                assert!(v < t.n(), "node {v} out of range");
                t.degree(v)
            }
        }
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        match &self.repr {
            Repr::Explicit(csr) => (0..csr.n()).map(|v| csr.range(v).1).max().unwrap_or(0),
            Repr::Implicit(t) => t.max_degree(),
        }
    }

    /// The node reached from `v` through port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn port_target(&self, v: NodeId, p: Port) -> NodeId {
        match &self.repr {
            Repr::Explicit(csr) => {
                let (lo, d) = csr.range(v);
                assert!(p < d, "port {p} out of range for node {v}");
                csr.targets[lo + p] as usize
            }
            Repr::Implicit(t) => t.port_target(v, p),
        }
    }

    /// The port at `port_target(v, p)` that leads back to `v`.
    ///
    /// This is what the simulator uses to tell a receiver *through which of
    /// its own ports* a message arrived — the only addressing information
    /// the anonymous model grants.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        match &self.repr {
            Repr::Explicit(csr) => {
                let (lo, d) = csr.range(v);
                assert!(p < d, "port {p} out of range for node {v}");
                csr.reverses[lo + p] as usize
            }
            Repr::Implicit(t) => t.reverse_port(v, p),
        }
    }

    /// Fused `(port_target, reverse_port)` lookup: one bounds check and one
    /// row resolution instead of two — the simulator's per-send path.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `p` is out of range.
    pub fn port_and_reverse(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        match &self.repr {
            Repr::Explicit(csr) => {
                let (lo, d) = csr.range(v);
                assert!(p < d, "port {p} out of range for node {v}");
                (csr.targets[lo + p] as usize, csr.reverses[lo + p] as usize)
            }
            Repr::Implicit(t) => t.port_and_reverse(v, p),
        }
    }

    /// Neighbors of `v` in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let inner = match &self.repr {
            Repr::Explicit(csr) => {
                let lo = csr.offsets[v] as usize;
                let hi = csr.offsets[v + 1] as usize;
                NeighborsInner::Slice(csr.targets[lo..hi].iter())
            }
            Repr::Implicit(t) => {
                assert!(v < t.n(), "node {v} out of range");
                NeighborsInner::Implicit {
                    topo: t,
                    v,
                    next: 0,
                    degree: t.degree(v),
                }
            }
        };
        Neighbors { inner }
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Plain adjacency lists (neighbor ids per node, in port order) — the
    /// format consumed by `ale-markov` chain constructors. Materialized on
    /// call (O(n + m) memory) for either backend.
    pub fn adjacency(&self) -> Vec<Vec<NodeId>> {
        (0..self.n()).map(|v| self.neighbors(v).collect()).collect()
    }

    /// Sum of degrees of the nodes in `set` (the paper's `Vol(S)`).
    pub fn volume(&self, set: &[NodeId]) -> usize {
        set.iter().map(|&v| self.degree(v)).sum()
    }

    /// Number of edges with exactly one endpoint in `set` (the paper's
    /// `|∂S|`).
    pub fn boundary(&self, set: &[NodeId]) -> usize {
        let mut in_set = vec![false; self.n()];
        for &v in set {
            in_set[v] = true;
        }
        let mut cut = 0;
        for &v in set {
            for u in self.neighbors(v) {
                if !in_set[u] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Breadth-first connectivity check.
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n
    }

    /// Returns an isomorphic graph whose port numberings are independently
    /// permuted at every node (deterministically from `seed`).
    ///
    /// Anonymity means no protocol may behave differently under such a
    /// permutation beyond what its own randomness induces; property tests
    /// use this to hunt for accidental dependence on port order.
    /// An implicit graph materializes into explicit storage here — shuffled
    /// ports cannot be computed.
    pub fn with_shuffled_ports(&self, seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = self.n();
        let mut ports: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for v in 0..n {
            let mut nbrs: Vec<NodeId> = self.neighbors(v).collect();
            nbrs.shuffle(&mut rng);
            ports.push(nbrs);
        }
        Self::from_ports(ports, self.m).expect("permuting ports preserves validity")
    }

    /// All-pairs-free single-source BFS distances from `src`
    /// (`usize::MAX` for unreachable — cannot happen on validated graphs).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<usize> {
        let n = self.n();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([src]);
        dist[src] = 0;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Exact diameter by BFS from every node — `O(n·m)`, fine for simulated
    /// sizes.
    pub fn diameter(&self) -> usize {
        (0..self.n())
            .map(|v| {
                self.bfs_distances(v)
                    .into_iter()
                    .filter(|&d| d != usize::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

impl PartialEq for Graph {
    /// Structural equality: same node count, edge count, and per-node port
    /// lists in order — an implicit graph equals its materialized twin.
    fn eq(&self, other: &Graph) -> bool {
        if self.m != other.m || self.n() != other.n() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Explicit(a), Repr::Explicit(b)) => a == b,
            (Repr::Implicit(a), Repr::Implicit(b)) if a == b => true,
            _ => (0..self.n()).all(|v| {
                self.degree(v) == other.degree(v) && self.neighbors(v).eq(other.neighbors(v))
            }),
        }
    }
}

impl Eq for Graph {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_empty_loops_dups_disconnected() {
        assert!(matches!(
            Graph::from_edges(0, &[]),
            Err(GraphError::InvalidParameters { .. })
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 0)]),
            Err(GraphError::SelfLoop { node: 0 })
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            Graph::from_edges(4, &[(0, 1), (2, 3)]),
            Err(GraphError::Disconnected)
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn port_reverse_roundtrip() {
        let g = triangle();
        for v in 0..g.n() {
            for p in 0..g.degree(v) {
                let u = g.port_target(v, p);
                let q = g.reverse_port(v, p);
                assert_eq!(g.port_target(u, q), v, "reverse port must lead back");
                assert_eq!(g.reverse_port(u, q), p, "reverse is an involution");
                assert_eq!(g.port_and_reverse(v, p), (u, q), "fused lookup agrees");
            }
        }
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn volume_and_boundary() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.volume(&[0, 1]), 4);
        assert_eq!(g.boundary(&[0, 1]), 2);
        assert_eq!(g.boundary(&[0, 1, 2, 3]), 0);
        assert_eq!(g.boundary(&[0]), 2);
    }

    #[test]
    fn bfs_and_diameter() {
        // Path 0-1-2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        assert_eq!(g.diameter(), 3);
        assert_eq!(triangle().diameter(), 1);
    }

    #[test]
    fn shuffled_ports_preserve_topology() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        let s = g.with_shuffled_ports(99);
        assert_eq!(s.n(), g.n());
        assert_eq!(s.m(), g.m());
        for v in 0..g.n() {
            let mut a: Vec<_> = g.neighbors(v).collect();
            let mut b: Vec<_> = s.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "node {v} neighborhood changed");
        }
        // Reverse ports must stay consistent after shuffling.
        for v in 0..s.n() {
            for p in 0..s.degree(v) {
                let u = s.port_target(v, p);
                assert_eq!(s.port_target(u, s.reverse_port(v, p)), v);
            }
        }
    }

    #[test]
    fn adjacency_matches_ports() {
        let g = triangle();
        let adj = g.adjacency();
        for (v, adj_v) in adj.iter().enumerate() {
            let nbrs: Vec<_> = g.neighbors(v).collect();
            assert_eq!(adj_v, &nbrs);
        }
    }

    #[test]
    fn implicit_backend_equals_materialized_explicit() {
        let topo = ImplicitTopology::Torus { rows: 4, cols: 5 };
        let implicit = Graph::from_implicit(topo).unwrap();
        let explicit = topo.materialize().unwrap();
        assert!(implicit.is_implicit());
        assert!(!explicit.is_implicit());
        assert_eq!(implicit, explicit);
        assert_eq!(explicit, implicit);
        assert_eq!(implicit.diameter(), explicit.diameter());
        // A different topology compares unequal through the structural path.
        let ring = Graph::from_implicit(ImplicitTopology::Ring { n: 20 }).unwrap();
        assert_ne!(ring, implicit);
    }

    #[test]
    fn implicit_rejects_bad_parameters() {
        assert!(Graph::from_implicit(ImplicitTopology::Ring { n: 2 }).is_err());
    }
}
