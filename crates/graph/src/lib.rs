//! # ale-graph — anonymous-network graph substrate
//!
//! Topologies, port numberings, and the graph quantities the paper's
//! protocols consume: conductance `Φ(G)`, isoperimetric number `i(G)`,
//! mixing time `t_mix`, and diameter.
//!
//! The central type is [`Graph`]: a simple connected undirected graph where
//! nodes address neighbors **only through ports** — the anonymity model of
//! Kowalski & Mosteiro (ICDCS 2021), Section 2. Generators for the paper's
//! experiment families live in [`generators`] (see [`Topology`]), exact cut
//! oracles in [`cuts`], scalable spectral estimates in [`spectral_sparse`],
//! closed forms in [`analytic`], sparse `Graph → CsrMatrix` transition
//! constructors in [`transition`] (the `O(m)`-per-step path behind the
//! large-n sweeps), and the aggregated [`props::GraphProps`] /
//! [`props::NetworkKnowledge`] bundles feed the protocols.
//!
//! ## Quickstart
//!
//! ```
//! use ale_graph::{Topology, props::GraphProps};
//!
//! let topo = Topology::Hypercube { dim: 4 };
//! let g = topo.build(0)?;
//! let props = GraphProps::compute_for(&g, &topo)?;
//! assert_eq!(props.n, 16);
//! assert!(props.conductance.value > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod builder;
pub mod cuts;
pub mod error;
pub mod generators;
#[allow(clippy::module_inception)]
mod graph;
pub mod implicit;
pub mod props;
pub mod spectral_sparse;
pub mod transition;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use generators::{Topology, IMPLICIT_THRESHOLD};
pub use graph::{Graph, Neighbors, NodeId, Port};
pub use implicit::ImplicitTopology;
pub use props::{GraphProps, NetworkKnowledge};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
        assert_send_sync::<Topology>();
        assert_send_sync::<GraphProps>();
        assert_send_sync::<NetworkKnowledge>();
        assert_send_sync::<GraphError>();
    }
}
