//! Closed-form property hints for generated topology families.
//!
//! The paper's protocols only need **linear upper bounds** on `n`, `t_mix`
//! and lower-bound-style estimates of `Φ` (Section 4: "it is enough to have
//! linear upper bounds on n, t_mix, and Φ"). For the deterministic families
//! these are textbook quantities; supplying them avoids expensive spectral
//! estimation inside large sweeps and pins the experiment parameterization
//! to the same asymptotics the paper manipulates.
//!
//! Hints are intentionally conservative: conductance/isoperimetric hints are
//! exact cut values for the obvious optimal cut (proved optimal for cycle,
//! path, complete, star, hypercube; within a factor 2 for torus and trees —
//! all that the protocols require), and `t_mix` hints over-approximate.

use crate::generators::Topology;

/// Optional closed-form hints for a topology; `None` fields mean "compute
/// numerically".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalyticHints {
    /// Graph conductance `Φ(G)` (paper's volume-normalized definition).
    pub conductance: Option<f64>,
    /// Isoperimetric number `i(G)`.
    pub isoperimetric: Option<f64>,
    /// Upper bound on the lazy-walk mixing time.
    pub tmix_upper: Option<u64>,
}

/// Returns closed-form hints for `t`, where known.
///
/// # Examples
///
/// ```
/// use ale_graph::{analytic, Topology};
/// let h = analytic::hints(&Topology::Cycle { n: 100 });
/// assert!((h.conductance.unwrap() - 1.0 / 50.0).abs() < 1e-12);
/// assert!(h.tmix_upper.unwrap() >= 100 * 100 / 2);
/// ```
pub fn hints(t: &Topology) -> AnalyticHints {
    match *t {
        Topology::Cycle { n } if n >= 3 => {
            let half = (n / 2) as f64;
            AnalyticHints {
                // Optimal cut is an arc of ⌊n/2⌋ nodes: |∂S| = 2, Vol = 2⌊n/2⌋.
                conductance: Some(1.0 / half),
                isoperimetric: Some(2.0 / half),
                // Lazy cycle mixes in Θ(n²); 2n² is a safe upper bound for
                // the paper's 1/(2n) max-norm threshold at all n ≥ 3.
                tmix_upper: Some(2 * (n as u64) * (n as u64)),
            }
        }
        Topology::Path { n } if n >= 2 => {
            let half = (n / 2) as f64;
            AnalyticHints {
                conductance: Some(1.0 / (n as f64 - 1.0)),
                isoperimetric: Some(1.0 / half),
                tmix_upper: Some(4 * (n as u64) * (n as u64)),
            }
        }
        Topology::Complete { n } if n >= 2 => {
            let half = (n / 2) as f64;
            AnalyticHints {
                // |S| = ⌊n/2⌋: |∂S|/Vol(S) = (n − ⌊n/2⌋)/(n − 1).
                conductance: Some((n as f64 - half) / (n as f64 - 1.0)),
                isoperimetric: Some(n as f64 - half),
                // Lazy K_n spectral gap ≈ 1/2 ⇒ t ≤ 2·ln(2n), padded.
                tmix_upper: Some((2.0 * (2.0 * n as f64).ln()).ceil() as u64 + 2),
            }
        }
        Topology::Star { n } if n >= 2 => AnalyticHints {
            conductance: Some(1.0),
            isoperimetric: Some(1.0),
            tmix_upper: Some((2.0 * (2.0 * n as f64).ln()).ceil() as u64 + 2),
        },
        Topology::Hypercube { dim } if dim >= 1 => {
            let d = dim as f64;
            let n = 1u64 << dim;
            AnalyticHints {
                // Dimension cut: |∂S| = n/2 edges over Vol(S) = d·n/2.
                conductance: Some(1.0 / d),
                isoperimetric: Some(1.0),
                // Lazy gap = 1/d ⇒ t ≤ d·ln(2n) = d(dim+1)·ln 2, padded.
                tmix_upper: Some((d * (2.0 * n as f64).ln()).ceil() as u64 + 2),
            }
        }
        Topology::Grid2d {
            rows,
            cols,
            torus: true,
        } if rows >= 3 && cols >= 3 => {
            let long = rows.max(cols) as f64;
            let short = rows.min(cols) as f64;
            AnalyticHints {
                // Cut the long dimension in half: |∂S| = 2·short,
                // Vol(S) = 4·short·⌊long/2⌋ ⇒ Φ ≈ 1/long (within 2×).
                conductance: Some(1.0 / long),
                isoperimetric: Some(4.0 / long),
                // Torus mixes in Θ(max(r,c)²); padded constant.
                tmix_upper: Some((4.0 * long * long * (short).ln().max(1.0)) as u64),
            }
        }
        Topology::Barbell { k } if k >= 2 => {
            let kk = k as f64;
            AnalyticHints {
                // Bridge cut: 1 edge; Vol(side) = k(k−1) + 1.
                conductance: Some(1.0 / (kk * (kk - 1.0) + 1.0)),
                isoperimetric: Some(1.0 / kk),
                tmix_upper: None,
            }
        }
        Topology::RingOfCliques { cliques, k } if cliques >= 3 && k >= 2 => {
            let c = cliques as f64;
            let kk = k as f64;
            AnalyticHints {
                // Half-ring cut: 2 inter-clique edges;
                // Vol(S) = (k(k−1) + 2)·c/2.
                conductance: Some(4.0 / (c * (kk * (kk - 1.0) + 2.0))),
                isoperimetric: Some(4.0 / (c * kk)),
                tmix_upper: None,
            }
        }
        _ => AnalyticHints::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts;

    #[test]
    fn hints_match_exact_cut_values_where_claimed_exact() {
        let cases = [
            Topology::Cycle { n: 12 },
            Topology::Path { n: 10 },
            Topology::Complete { n: 8 },
            Topology::Star { n: 9 },
            Topology::Hypercube { dim: 4 },
        ];
        for t in cases {
            let g = t.build(0).unwrap();
            let h = hints(&t);
            let phi = cuts::conductance_exact(&g).unwrap();
            let i = cuts::isoperimetric_exact(&g).unwrap();
            assert!(
                (h.conductance.unwrap() - phi).abs() < 1e-9,
                "{t}: hint Φ {} vs exact {phi}",
                h.conductance.unwrap()
            );
            assert!(
                (h.isoperimetric.unwrap() - i).abs() < 1e-9,
                "{t}: hint i {} vs exact {i}",
                h.isoperimetric.unwrap()
            );
        }
    }

    #[test]
    fn barbell_hints_exact() {
        let t = Topology::Barbell { k: 4 };
        let g = t.build(0).unwrap();
        let h = hints(&t);
        assert!((h.conductance.unwrap() - cuts::conductance_exact(&g).unwrap()).abs() < 1e-9);
        assert!((h.isoperimetric.unwrap() - cuts::isoperimetric_exact(&g).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn tmix_hints_dominate_exact_small() {
        use ale_markov::{mixing, MarkovChain};
        for t in [
            Topology::Cycle { n: 10 },
            Topology::Complete { n: 10 },
            Topology::Star { n: 10 },
            Topology::Hypercube { dim: 3 },
        ] {
            let g = t.build(0).unwrap();
            let chain = MarkovChain::lazy_random_walk(&g.adjacency()).unwrap();
            let exact = mixing::mixing_time_exact(&chain, 1 << 24).unwrap();
            let hint = hints(&t).tmix_upper.unwrap();
            assert!(hint >= exact, "{t}: hint {hint} < exact {exact}");
        }
    }

    #[test]
    fn random_families_have_no_hints() {
        assert_eq!(
            hints(&Topology::RandomRegular { n: 16, d: 3 }),
            AnalyticHints::default()
        );
        assert_eq!(
            hints(&Topology::Gnp {
                n: 16,
                ppm: 300_000
            }),
            AnalyticHints::default()
        );
    }

    #[test]
    fn ring_of_cliques_hint_close_to_exact() {
        let t = Topology::RingOfCliques { cliques: 4, k: 3 };
        let g = t.build(0).unwrap();
        let h = hints(&t);
        let phi = cuts::conductance_exact(&g).unwrap();
        let ratio = h.conductance.unwrap() / phi;
        assert!(
            (0.45..=2.2).contains(&ratio),
            "ring-of-cliques hint off by more than 2x: {ratio}"
        );
    }
}
