//! Exact cut-based graph quantities: conductance `Φ(G)` and the
//! isoperimetric number `i(G)`.
//!
//! Definitions follow Section 2 of the paper:
//!
//! * `Φ(G) = min_{S ⊂ V} |∂S| / min(Vol(S), Vol(S̄))` with
//!   `Vol(S) = Σ_{v∈S} deg(v)`;
//! * `i(G) = min_{S ⊆ V, |S| ≤ |V|/2} |∂S| / |S|` (the graph Cheeger
//!   constant, Mohar \[23\]).
//!
//! Both minimize over exponentially many cuts; the exact functions here are
//! `O(2ⁿ·n)` oracles for tests and small lemma-level experiments, with a
//! hard size guard. Larger graphs use spectral bands
//! ([`crate::spectral_sparse`]) or closed forms ([`crate::analytic`]).

use crate::error::GraphError;
use crate::graph::Graph;

/// Maximum `n` accepted by the exact cut enumerations.
pub const EXACT_CUT_LIMIT: usize = 22;

fn for_each_cut<F: FnMut(&[bool], usize)>(n: usize, mut f: F) {
    // Node 0 is fixed outside S so each unordered cut appears once.
    let mask_count: u64 = 1u64 << (n - 1);
    let mut in_s = vec![false; n];
    for mask in 1..mask_count {
        let mut size = 0;
        for b in 0..(n - 1) {
            let is_in = mask >> b & 1 == 1;
            in_s[b + 1] = is_in;
            if is_in {
                size += 1;
            }
        }
        f(&in_s, size);
    }
}

fn crossing_edges(g: &Graph, in_s: &[bool]) -> usize {
    let mut cut = 0;
    for (u, v) in g.edges() {
        if in_s[u] != in_s[v] {
            cut += 1;
        }
    }
    cut
}

/// Exact graph conductance `Φ(G)` by cut enumeration.
///
/// # Errors
///
/// * [`GraphError::TooLargeForExact`] if `n > EXACT_CUT_LIMIT`.
/// * [`GraphError::InvalidParameters`] if `n < 2`.
///
/// # Examples
///
/// ```
/// use ale_graph::{generators, cuts};
/// let g = generators::cycle(8)?;
/// // Best cut: an arc of 4 nodes; |∂S| = 2, Vol = 8 ⇒ Φ = 1/4.
/// assert!((cuts::conductance_exact(&g)? - 0.25).abs() < 1e-12);
/// # Ok::<(), ale_graph::GraphError>(())
/// ```
pub fn conductance_exact(g: &Graph) -> Result<f64, GraphError> {
    let n = g.n();
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "conductance needs n >= 2".into(),
        });
    }
    if n > EXACT_CUT_LIMIT {
        return Err(GraphError::TooLargeForExact {
            limit: EXACT_CUT_LIMIT,
            n,
        });
    }
    let total_vol: usize = 2 * g.m();
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut best = f64::INFINITY;
    for_each_cut(n, |in_s, _| {
        let cut = crossing_edges(g, in_s);
        let vol_s: usize = in_s
            .iter()
            .enumerate()
            .filter(|(_, &x)| x)
            .map(|(v, _)| degrees[v])
            .sum();
        let denom = vol_s.min(total_vol - vol_s);
        if denom > 0 {
            let ratio = cut as f64 / denom as f64;
            if ratio < best {
                best = ratio;
            }
        }
    });
    Ok(best)
}

/// Exact isoperimetric number `i(G)` by cut enumeration.
///
/// # Errors
///
/// Same as [`conductance_exact`].
///
/// # Examples
///
/// ```
/// use ale_graph::{generators, cuts};
/// let g = generators::complete(6)?;
/// // K6: |∂S|/|S| = 6 − |S| is minimized at |S| = 3.
/// assert!((cuts::isoperimetric_exact(&g)? - 3.0).abs() < 1e-12);
/// # Ok::<(), ale_graph::GraphError>(())
/// ```
pub fn isoperimetric_exact(g: &Graph) -> Result<f64, GraphError> {
    let n = g.n();
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "isoperimetric number needs n >= 2".into(),
        });
    }
    if n > EXACT_CUT_LIMIT {
        return Err(GraphError::TooLargeForExact {
            limit: EXACT_CUT_LIMIT,
            n,
        });
    }
    let mut best = f64::INFINITY;
    for_each_cut(n, |in_s, size| {
        // i(G) restricts to |S| <= n/2; the enumeration fixes node 0 in S̄,
        // so take whichever side is small (both sides' ratios are covered
        // across the enumeration, but checking the small side here is exact
        // and cheap).
        let small = size.min(n - size);
        if small == 0 || 2 * small > n {
            // Skip sides larger than n/2; their complements appear as other
            // masks (or as this mask's other side when small == size).
        }
        let cut = crossing_edges(g, in_s);
        let side = if 2 * size <= n { size } else { n - size };
        if side > 0 && 2 * side <= n {
            let ratio = cut as f64 / side as f64;
            if ratio < best {
                best = ratio;
            }
        }
    });
    Ok(best)
}

/// The paper's lower bound `i(G) ≥ 2/n` for connected graphs (used to get
/// Corollary 1 from Theorem 3). Exposed so tests and the harness can assert
/// it against computed values.
pub fn isoperimetric_lower_bound(n: usize) -> f64 {
    2.0 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_conductance_and_isoperimetric() {
        let g = generators::cycle(8).unwrap();
        assert!((conductance_exact(&g).unwrap() - 2.0 / 8.0).abs() < 1e-12);
        assert!((isoperimetric_exact(&g).unwrap() - 2.0 / 4.0).abs() < 1e-12);
        let g6 = generators::cycle(6).unwrap();
        assert!((isoperimetric_exact(&g6).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_values() {
        let g = generators::complete(6).unwrap();
        // Φ(K6): cut |S|=3: 9 edges, Vol(S)=15 ⇒ 9/15 = 0.6.
        assert!((conductance_exact(&g).unwrap() - 0.6).abs() < 1e-12);
        assert!((isoperimetric_exact(&g).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_is_worst_at_the_middle() {
        let g = generators::path(8).unwrap();
        // Middle cut: 1 edge, |S| = 4 ⇒ i = 1/4; Vol(S) = 7 ⇒ Φ = 1/7.
        assert!((isoperimetric_exact(&g).unwrap() - 0.25).abs() < 1e-12);
        assert!((conductance_exact(&g).unwrap() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn barbell_is_bridge_limited() {
        let g = generators::barbell(4).unwrap();
        // The bridge cut: 1 edge, each side has 4 nodes, Vol = 13.
        assert!((isoperimetric_exact(&g).unwrap() - 0.25).abs() < 1e-12);
        assert!((conductance_exact(&g).unwrap() - 1.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn star_values() {
        let g = generators::star(6).unwrap();
        // i(G): leaves-only S of size 2 ≤ n/2 = 3: |∂S| = 2 ⇒ 1. Any
        // S containing the hub with |S|=3 has |∂S| = 3 ⇒ 1. So i = 1.
        assert!((isoperimetric_exact(&g).unwrap() - 1.0).abs() < 1e-12);
        // Φ: S = hub + 2 leaves: |∂S| = 3, Vol(S) = 7, Vol(S̄) = 3 ⇒ 1.
        // S = 2 leaves: |∂S| = 2, Vol(S) = 2 ⇒ 1. Any single leaf: 1/1 = 1.
        assert!((conductance_exact(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypercube_dimension_cut() {
        let g = generators::hypercube(3).unwrap();
        // Q3: dimension cut: 4 edges, |S| = 4, Vol(S) = 12 ⇒ Φ = 1/3, i = 1.
        assert!((conductance_exact(&g).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((isoperimetric_exact(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_holds_everywhere() {
        for g in [
            generators::cycle(10).unwrap(),
            generators::path(9).unwrap(),
            generators::star(8).unwrap(),
            generators::barbell(5).unwrap(),
            generators::binary_tree(10).unwrap(),
        ] {
            let i = isoperimetric_exact(&g).unwrap();
            assert!(
                i >= isoperimetric_lower_bound(g.n()) - 1e-12,
                "i(G) = {i} below 2/n for n = {}",
                g.n()
            );
        }
    }

    #[test]
    fn guards_reject_bad_sizes() {
        let big = generators::cycle(EXACT_CUT_LIMIT + 1).unwrap();
        assert!(matches!(
            conductance_exact(&big),
            Err(GraphError::TooLargeForExact { .. })
        ));
        assert!(matches!(
            isoperimetric_exact(&big),
            Err(GraphError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn conductance_at_most_one_isoperimetric_at_most_min_degree_bound() {
        for g in [
            generators::cycle(12).unwrap(),
            generators::complete(8).unwrap(),
            generators::hypercube(4).unwrap(),
        ] {
            let phi = conductance_exact(&g).unwrap();
            assert!(phi <= 1.0 + 1e-12, "Φ must be ≤ 1, got {phi}");
            let i = isoperimetric_exact(&g).unwrap();
            // |∂S| ≤ Vol(S) ≤ Δ|S| gives i ≤ Δ.
            assert!(i <= g.max_degree() as f64 + 1e-12);
        }
    }
}
