//! `Graph → CsrMatrix` transition-matrix constructors: the sparse bridge
//! between the graph substrate and `ale-markov`.
//!
//! A transition matrix built from a graph has exactly `n + 2m` non-zero
//! entries (one self-loop plus the edge endpoints), so the CSR form costs
//! `O(m)` memory and `O(m)` per chain step — versus `O(n²)` dense. Every
//! consumer that builds its chain from an [`ale_graph::Graph`](crate::Graph)
//! should come through here: the resulting [`MarkovChain`] automatically
//! runs on the sparse backend, which is what lets the `diffusion` /
//! `thresholds` scenario sweeps reach tens of thousands of nodes.
//!
//! [`normalized_lazy_csr`] builds the symmetric operator
//! `N = ½I + ½D^{-1/2}AD^{-1/2}` that [`crate::spectral_sparse`] iterates —
//! the previously hand-rolled matrix-free loop there now runs on the same
//! CSR kernel as everything else.

use crate::error::GraphError;
use crate::graph::Graph;
use ale_markov::chain::{diffusion_row, lazy_walk_row};
use ale_markov::{CsrMatrix, MarkovChain, MarkovError};

fn numeric(context: &str, e: MarkovError) -> GraphError {
    GraphError::Numeric {
        reason: format!("{context}: {e}"),
    }
}

/// CSR form of the lazy random walk `P = ½I + ½D⁻¹A`.
///
/// Every validated [`Graph`] is connected (hence free of isolated nodes),
/// so the walk is always well defined.
///
/// # Examples
///
/// ```
/// use ale_graph::{generators, transition};
/// let g = generators::cycle(8)?;
/// let p = transition::lazy_walk_csr(&g);
/// assert_eq!(p.rows(), 8);
/// assert_eq!(p.nnz(), 8 + 2 * 8); // n self-loops + 2m edge entries
/// assert!(p.is_row_stochastic());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lazy_walk_csr(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let mut nbrs = Vec::new();
    let rows = (0..n)
        .map(|v| {
            nbrs.clear();
            nbrs.extend(g.neighbors(v));
            lazy_walk_row(v, &nbrs)
        })
        .collect();
    CsrMatrix::from_row_entries(n, rows).expect("validated graph yields a well-formed CSR")
}

/// CSR form of the diffusion matrix `S` of the `Avg` procedure:
/// `s_ij = α` per edge, `s_ii = 1 − α·deg(i)`.
///
/// # Errors
///
/// [`GraphError::Numeric`] when `α·deg(i) > 1` for some node (the matrix
/// would not be stochastic there).
pub fn diffusion_csr(g: &Graph, alpha: f64) -> Result<CsrMatrix, GraphError> {
    let n = g.n();
    let mut rows = Vec::with_capacity(n);
    let mut nbrs = Vec::new();
    for v in 0..n {
        nbrs.clear();
        nbrs.extend(g.neighbors(v));
        rows.push(diffusion_row(v, &nbrs, alpha).map_err(|e| numeric("diffusion row", e))?);
    }
    CsrMatrix::from_row_entries(n, rows).map_err(|e| numeric("diffusion csr", e))
}

/// CSR form of the symmetric normalized lazy operator
/// `N = ½I + ½D^{-1/2}AD^{-1/2}` — similar to the lazy walk (shares its
/// eigenvalues), with principal eigenvector `∝ √deg`.
pub fn normalized_lazy_csr(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let sqrt_deg: Vec<f64> = (0..n).map(|v| (g.degree(v) as f64).sqrt()).collect();
    let mut rows = Vec::with_capacity(n);
    for v in 0..n {
        let deg = g.degree(v);
        let mut entries = Vec::with_capacity(deg + 1);
        entries.push((v, 0.5));
        entries.extend(
            g.neighbors(v)
                .map(|u| (u, 0.5 / (sqrt_deg[v] * sqrt_deg[u]))),
        );
        rows.push(entries);
    }
    CsrMatrix::from_row_entries(n, rows).expect("validated graph yields a well-formed CSR")
}

/// Sparse-backed lazy random walk chain over `g` — `O(m)` per step.
///
/// # Errors
///
/// [`GraphError::Numeric`] if chain validation fails (cannot happen for a
/// validated graph; kept for API honesty).
///
/// # Examples
///
/// ```
/// use ale_graph::{generators, transition};
/// let g = generators::grid2d(4, 4, true)?;
/// let chain = transition::lazy_walk_chain(&g)?;
/// assert!(chain.is_sparse());
/// assert!(chain.transition().is_doubly_stochastic());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lazy_walk_chain(g: &Graph) -> Result<MarkovChain, GraphError> {
    MarkovChain::from_csr(lazy_walk_csr(g)).map_err(|e| numeric("lazy walk chain", e))
}

/// Sparse-backed diffusion chain over `g` — `O(m)` per step.
///
/// # Errors
///
/// [`GraphError::Numeric`] when `α·deg(i) > 1` for some node.
pub fn diffusion_chain(g: &Graph, alpha: f64) -> Result<MarkovChain, GraphError> {
    MarkovChain::from_csr(diffusion_csr(g, alpha)?).map_err(|e| numeric("diffusion chain", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn lazy_walk_csr_matches_dense_constructor() {
        for g in [
            generators::cycle(9).unwrap(),
            generators::star(7).unwrap(),
            generators::grid2d(3, 4, false).unwrap(),
        ] {
            let sparse = lazy_walk_csr(&g);
            let dense = MarkovChain::lazy_random_walk(&g.adjacency()).unwrap();
            assert_eq!(
                sparse.to_dense(),
                dense.transition().to_dense(),
                "n = {}",
                g.n()
            );
            assert_eq!(sparse.nnz(), g.n() + 2 * g.m());
        }
    }

    #[test]
    fn diffusion_csr_matches_dense_constructor() {
        let g = generators::hypercube(3).unwrap();
        let alpha = 0.1;
        let sparse = diffusion_csr(&g, alpha).unwrap();
        let dense = MarkovChain::diffusion(&g.adjacency(), alpha).unwrap();
        assert_eq!(sparse.to_dense(), dense.transition().to_dense());
        assert!(sparse.is_symmetric());
        assert!(sparse.is_doubly_stochastic());
    }

    #[test]
    fn diffusion_csr_rejects_overweight_alpha() {
        let g = generators::star(5).unwrap();
        // Hub degree 4: alpha 0.3 gives self-weight -0.2.
        assert!(matches!(
            diffusion_csr(&g, 0.3),
            Err(GraphError::Numeric { .. })
        ));
        assert!(diffusion_chain(&g, 0.3).is_err());
    }

    #[test]
    fn chains_are_sparse_and_valid() {
        let g = generators::grid2d(5, 5, true).unwrap();
        let walk = lazy_walk_chain(&g).unwrap();
        assert!(walk.is_sparse());
        assert!(walk.transition().is_row_stochastic());
        let diff = diffusion_chain(&g, 0.05).unwrap();
        assert!(diff.is_sparse());
        assert!(diff.transition().is_symmetric());
    }

    #[test]
    fn normalized_operator_is_symmetric_with_sqrt_deg_principal() {
        let g = generators::star(9).unwrap();
        let n_op = normalized_lazy_csr(&g);
        assert!(n_op.is_symmetric());
        // N · √deg = √deg (eigenvalue 1).
        let sqrt_deg: Vec<f64> = (0..g.n()).map(|v| (g.degree(v) as f64).sqrt()).collect();
        let out = n_op.mul_vec(&sqrt_deg).unwrap();
        for (a, b) in out.iter().zip(&sqrt_deg) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
