//! Dense ↔ sparse backend equivalence, pinned as an integration suite:
//! the same chain built on the dense [`ale_markov::Matrix`] and the CSR
//! [`ale_markov::CsrMatrix`] backend must agree — on `step`, stationary
//! distributions, mixing times, hitting times, and conductance — to 1e-9
//! across seeded random graphs. This is the contract that lets every
//! consumer switch to the `O(m)`-per-step sparse path without revalidating
//! its numerics.

use ale_markov::{conductance, hitting, mixing, spectral, MarkovChain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

/// Seeded random connected graph: a random tree plus `extra` random
/// non-duplicate edges. Adjacency lists carry both directions in
/// insertion order.
fn random_connected_adj(n: usize, extra: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = std::collections::HashSet::new();
    for v in 1..n {
        let u = rng.gen_range(0..v);
        adj[u].push(v);
        adj[v].push(u);
        edges.insert((u.min(v), u.max(v)));
    }
    let mut attempts = 0;
    let mut added = 0;
    while added < extra && attempts < 50 * extra.max(1) {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || !edges.insert((u.min(v), u.max(v))) {
            continue;
        }
        adj[u].push(v);
        adj[v].push(u);
        added += 1;
    }
    adj
}

/// The diffusion alpha every test uses: valid (`α·deg ≤ 1`) for any graph
/// since degrees are below `n`.
fn safe_alpha(adj: &[Vec<usize>]) -> f64 {
    let d_max = adj.iter().map(Vec::len).max().unwrap_or(1);
    1.0 / (2.0 * d_max as f64)
}

fn chain_pairs(adj: &[Vec<usize>]) -> Vec<(MarkovChain, MarkovChain)> {
    let alpha = safe_alpha(adj);
    vec![
        (
            MarkovChain::lazy_random_walk(adj).unwrap(),
            MarkovChain::lazy_random_walk_sparse(adj).unwrap(),
        ),
        (
            MarkovChain::diffusion(adj, alpha).unwrap(),
            MarkovChain::diffusion_sparse(adj, alpha).unwrap(),
        ),
    ]
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn step_agrees_across_backends() {
    for (gi, &(n, extra)) in [(10usize, 4usize), (24, 12), (40, 30)].iter().enumerate() {
        let adj = random_connected_adj(n, extra, 100 + gi as u64);
        let mut rng = StdRng::seed_from_u64(7);
        for (dense, sparse) in chain_pairs(&adj) {
            // A random distribution, evolved 25 steps on both backends.
            let mut mu: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let total: f64 = mu.iter().sum();
            for x in mu.iter_mut() {
                *x /= total;
            }
            let mut mu_d = mu.clone();
            let mut mu_s = mu;
            for step in 0..25 {
                mu_d = dense.step(&mu_d).unwrap();
                mu_s = sparse.step(&mu_s).unwrap();
                assert!(
                    max_abs_diff(&mu_d, &mu_s) <= TOL,
                    "graph {gi}: step {step} diverged"
                );
            }
        }
    }
}

#[test]
fn stationary_distribution_agrees() {
    for (gi, &(n, extra)) in [(12usize, 6usize), (20, 15)].iter().enumerate() {
        let adj = random_connected_adj(n, extra, 200 + gi as u64);
        for (dense, sparse) in chain_pairs(&adj) {
            let pi_d = dense.stationary_distribution(1e-13, 1_000_000).unwrap();
            let pi_s = sparse.stationary_distribution(1e-13, 1_000_000).unwrap();
            assert!(
                max_abs_diff(&pi_d, &pi_s) <= TOL,
                "graph {gi}: stationary distributions diverged"
            );
        }
    }
}

#[test]
fn mixing_time_bounds_agree() {
    for (gi, &(n, extra)) in [(8usize, 4usize), (14, 8)].iter().enumerate() {
        let adj = random_connected_adj(n, extra, 300 + gi as u64);
        let dense = MarkovChain::lazy_random_walk(&adj).unwrap();
        let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
        // Exact (sparse densifies internally under the guard).
        assert_eq!(
            mixing::mixing_time_exact(&dense, 1 << 24).unwrap(),
            mixing::mixing_time_exact(&sparse, 1 << 24).unwrap(),
            "graph {gi}: exact mixing time"
        );
        // Iterative, per start state.
        for start in 0..n {
            assert_eq!(
                mixing::mixing_time_from_state(&dense, start, 1 << 24).unwrap(),
                mixing::mixing_time_from_state(&sparse, start, 1 << 24).unwrap(),
                "graph {gi}: from-state mixing at {start}"
            );
        }
        // Spectral: lambda2 via power iteration on either backend.
        let l2_d = spectral::lambda2_power(dense.transition(), 1e-12, 2_000_000).unwrap();
        let l2_s = spectral::lambda2_power(sparse.transition(), 1e-12, 2_000_000).unwrap();
        assert!((l2_d - l2_s).abs() <= TOL, "graph {gi}: lambda2 diverged");
    }
}

#[test]
fn hitting_times_agree() {
    for (gi, &(n, extra)) in [(10usize, 5usize), (18, 10)].iter().enumerate() {
        let adj = random_connected_adj(n, extra, 400 + gi as u64);
        for (dense, sparse) in chain_pairs(&adj) {
            let targets = [0usize, n / 2];
            let h_d = hitting::expected_hitting_times(&dense, &targets).unwrap();
            let h_s = hitting::expected_hitting_times(&sparse, &targets).unwrap();
            assert!(
                max_abs_diff(&h_d, &h_s) <= TOL,
                "graph {gi}: direct hitting times diverged"
            );
            let h_gs =
                hitting::expected_hitting_times_iterative(&sparse, &targets, 1e-13, 2_000_000)
                    .unwrap();
            assert!(
                max_abs_diff(&h_d, &h_gs) <= TOL,
                "graph {gi}: Gauss-Seidel diverged from direct solve"
            );
        }
    }
}

#[test]
fn conductance_agrees() {
    for (gi, &(n, extra)) in [(8usize, 5usize), (12, 8)].iter().enumerate() {
        let adj = random_connected_adj(n, extra, 500 + gi as u64);
        for (dense, sparse) in chain_pairs(&adj) {
            let phi_d = conductance::chain_conductance_exact(dense.transition()).unwrap();
            let phi_s = conductance::chain_conductance_exact(sparse.transition()).unwrap();
            assert!(
                (phi_d - phi_s).abs() <= TOL,
                "graph {gi}: conductance {phi_d} vs {phi_s}"
            );
        }
    }
}
