//! Spectral tools for symmetric matrices: Jacobi eigendecomposition and
//! power iteration with deflation.
//!
//! The second-largest eigenvalue `λ₂` of a lazy-walk or diffusion matrix
//! controls mixing (Lemma 4 of the paper uses
//! `r ≥ log(n/γ)/log(1/λ₁)` with `log 1/λ ≥ 1 − λ` and the Cheeger-type
//! bound `1 − λ ≥ φ²/2` from Sinclair–Jerrum). This module computes `λ₂`
//! either exactly (cyclic Jacobi, reliable for the symmetric matrices we
//! build) or iteratively (power iteration deflated against the known
//! all-ones principal eigenvector of doubly-stochastic matrices). The
//! power iteration runs against a [`Transition`], so it costs `O(nnz)` per
//! iteration on sparse-backed chains; Jacobi is inherently dense.

use crate::error::MarkovError;
use crate::matrix::{vecops, Matrix};
use crate::transition::Transition;

/// Result of a full symmetric eigendecomposition.
///
/// Eigenvalues are sorted in descending order; `vectors.row(i)` is the
/// normalized eigenvector for `values[i]`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Row-major eigenvectors aligned with `values`.
    pub vectors: Matrix,
}

/// Computes the full eigendecomposition of a symmetric matrix with the
/// cyclic Jacobi rotation method.
///
/// Intended for the moderate sizes used in property computation (n up to a
/// couple of thousand; cost is `O(n³)` per sweep with a handful of sweeps).
///
/// # Errors
///
/// * [`MarkovError::NotSquare`] if `m` is not square.
/// * [`MarkovError::NotConverged`] if off-diagonal mass does not vanish
///   within the sweep budget (does not happen for symmetric input).
///
/// # Examples
///
/// ```
/// use ale_markov::{Matrix, spectral};
/// let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let eig = spectral::jacobi_eigen(&m, 100)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn jacobi_eigen(m: &Matrix, max_sweeps: usize) -> Result<Eigen, MarkovError> {
    if !m.is_square() {
        return Err(MarkovError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    if n == 0 {
        return Err(MarkovError::Empty);
    }
    let mut a = m.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-12 * n as f64;

    for _sweep in 0..max_sweeps {
        let off: f64 = off_diagonal_norm(&a);
        if off < tol {
            return Ok(sorted_eigen(a, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                // Classic Jacobi rotation zeroing a[(p, q)].
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                apply_rotation(&mut a, p, q, c, s);
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(MarkovError::NotConverged {
        iterations: max_sweeps,
        residual: off_diagonal_norm(&a),
    })
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += a[(i, j)] * a[(i, j)];
        }
    }
    s.sqrt()
}

fn apply_rotation(a: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = a.rows();
    for k in 0..n {
        let akp = a[(k, p)];
        let akq = a[(k, q)];
        a[(k, p)] = c * akp - s * akq;
        a[(k, q)] = s * akp + c * akq;
    }
    for k in 0..n {
        let apk = a[(p, k)];
        let aqk = a[(q, k)];
        a[(p, k)] = c * apk - s * aqk;
        a[(q, k)] = s * apk + c * aqk;
    }
}

fn sorted_eigen(a: Matrix, v: Matrix) -> Eigen {
    let n = a.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (r, &i) in idx.iter().enumerate() {
        for k in 0..n {
            vectors[(r, k)] = v[(k, i)];
        }
    }
    Eigen { values, vectors }
}

/// Second-largest eigenvalue of a **symmetric doubly-stochastic** matrix by
/// power iteration deflated against the all-ones principal eigenvector.
///
/// Returns `λ₂` (by algebraic value; for lazy matrices all eigenvalues are
/// non-negative so this is also the second-largest modulus).
///
/// # Errors
///
/// * [`MarkovError::NotSquare`] / [`MarkovError::Empty`] on malformed input.
/// * [`MarkovError::NotConverged`] when the eigengap is too small for the
///   iteration budget; callers should fall back to [`jacobi_eigen`].
///
/// # Examples
///
/// ```
/// use ale_markov::{MarkovChain, spectral};
/// let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
/// let c = MarkovChain::lazy_random_walk(&adj)?;
/// let l2 = spectral::lambda2_power(c.transition(), 1e-10, 100_000)?;
/// // Lazy triangle: eigenvalues are 1, 1/4, 1/4.
/// assert!((l2 - 0.25).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lambda2_power(p: &Transition, tol: f64, max_iters: usize) -> Result<f64, MarkovError> {
    if !p.is_square() {
        return Err(MarkovError::NotSquare {
            rows: p.rows(),
            cols: p.cols(),
        });
    }
    let n = p.rows();
    if n == 0 {
        return Err(MarkovError::Empty);
    }
    if n == 1 {
        return Ok(0.0);
    }
    // Deterministic, non-uniform start vector orthogonal to 1.
    let mut v: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).sin()).collect();
    project_off_ones(&mut v);
    let norm = vecops::norm_l2(&v);
    if norm == 0.0 {
        return Err(MarkovError::Empty);
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    let mut lambda = 0.0;
    for it in 0..max_iters {
        let mut w = p.mul_vec(&v)?;
        project_off_ones(&mut w);
        let norm = vecops::norm_l2(&w);
        if norm < 1e-300 {
            // The matrix annihilates everything orthogonal to 1: λ₂ = 0.
            return Ok(0.0);
        }
        for x in w.iter_mut() {
            *x /= norm;
        }
        let new_lambda = rayleigh(p, &w)?;
        let diff = (new_lambda - lambda).abs();
        lambda = new_lambda;
        v = w;
        if it > 2 && diff < tol {
            return Ok(lambda);
        }
    }
    Err(MarkovError::NotConverged {
        iterations: max_iters,
        residual: tol,
    })
}

fn project_off_ones(v: &mut [f64]) {
    let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

fn rayleigh(p: &Transition, v: &[f64]) -> Result<f64, MarkovError> {
    let pv = p.mul_vec(v)?;
    Ok(vecops::dot(v, &pv) / vecops::dot(v, v))
}

/// Spectral gap `1 − λ₂` of a symmetric doubly-stochastic matrix, trying the
/// fast power iteration first and falling back to Jacobi.
///
/// # Errors
///
/// Propagates errors from both methods if neither converges. The Jacobi
/// fallback densifies sparse input through the
/// [`crate::transition::DENSIFY_LIMIT`] guard.
pub fn spectral_gap(p: &Transition) -> Result<f64, MarkovError> {
    match lambda2_power(p, 1e-11, 200_000) {
        Ok(l2) => Ok(1.0 - l2),
        Err(MarkovError::NotConverged { .. }) => {
            let eig = jacobi_eigen(&p.to_dense_checked()?, 200)?;
            Ok(1.0 - eig.values[1])
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    #[test]
    fn jacobi_diagonalizes_2x2() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = jacobi_eigen(&m, 100).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_identity_eigenvalues_all_one() {
        let eig = jacobi_eigen(&Matrix::identity(5), 10).unwrap();
        for v in eig.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3), 10).is_err());
    }

    #[test]
    fn jacobi_eigenvectors_satisfy_definition() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 200).unwrap();
        for r in 0..3 {
            let v: Vec<f64> = eig.vectors.row(r).to_vec();
            let mv = m.mul_vec(&v).unwrap();
            for k in 0..3 {
                assert!(
                    (mv[k] - eig.values[r] * v[k]).abs() < 1e-8,
                    "eigenpair {r} violated"
                );
            }
        }
    }

    #[test]
    fn lambda2_of_lazy_triangle() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let c = MarkovChain::lazy_random_walk(&adj).unwrap();
        let l2 = lambda2_power(c.transition(), 1e-11, 100_000).unwrap();
        assert!((l2 - 0.25).abs() < 1e-6);
    }

    #[test]
    fn lambda2_agrees_with_jacobi_on_cycle() {
        // Lazy walk on C6.
        let adj: Vec<Vec<usize>> = (0..6).map(|i| vec![(i + 5) % 6, (i + 1) % 6]).collect();
        let c = MarkovChain::lazy_random_walk(&adj).unwrap();
        let l2 = lambda2_power(c.transition(), 1e-12, 1_000_000).unwrap();
        let eig = jacobi_eigen(c.as_dense().unwrap(), 200).unwrap();
        assert!((l2 - eig.values[1]).abs() < 1e-7);
        // Lazy C6: λ₂ = 1/2 + cos(2π/6)/2 = 0.75.
        assert!((l2 - 0.75).abs() < 1e-6);
    }

    #[test]
    fn lambda2_singleton_is_zero() {
        let p = Transition::from(Matrix::identity(1));
        assert_eq!(lambda2_power(&p, 1e-9, 10).unwrap(), 0.0);
    }

    #[test]
    fn lambda2_agrees_across_backends() {
        let adj: Vec<Vec<usize>> = (0..6).map(|i| vec![(i + 5) % 6, (i + 1) % 6]).collect();
        let dense = MarkovChain::lazy_random_walk(&adj).unwrap();
        let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
        let ld = lambda2_power(dense.transition(), 1e-12, 1_000_000).unwrap();
        let ls = lambda2_power(sparse.transition(), 1e-12, 1_000_000).unwrap();
        assert!((ld - ls).abs() < 1e-9, "dense {ld} vs sparse {ls}");
        let gd = spectral_gap(dense.transition()).unwrap();
        let gs = spectral_gap(sparse.transition()).unwrap();
        assert!((gd - gs).abs() < 1e-6);
    }

    #[test]
    fn spectral_gap_matches_direct() {
        let adj = vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]];
        let c = MarkovChain::lazy_random_walk(&adj).unwrap();
        let gap = spectral_gap(c.transition()).unwrap();
        // Lazy K4: non-principal eigenvalues are 1/2 - 1/6 = 1/3; gap 2/3.
        assert!((gap - 2.0 / 3.0).abs() < 1e-6, "gap = {gap}");
    }

    #[test]
    fn complete_bipartite_lazy_no_negative_issue() {
        // K_{2,2} lazy walk: eigenvalues 1, 1/2, 1/2, 0. λ₂ = 1/2.
        let adj = vec![vec![2, 3], vec![2, 3], vec![0, 1], vec![0, 1]];
        let c = MarkovChain::lazy_random_walk(&adj).unwrap();
        let eig = jacobi_eigen(c.as_dense().unwrap(), 200).unwrap();
        assert!((eig.values[1] - 0.5).abs() < 1e-9);
        let l2 = lambda2_power(c.transition(), 1e-11, 200_000).unwrap();
        assert!((l2 - 0.5).abs() < 1e-6);
    }
}
