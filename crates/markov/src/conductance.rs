//! Conductance of Markov chains.
//!
//! Section 2 of the paper uses two related notions:
//!
//! * the **Sinclair–Jerrum chain conductance** `φ(P)` over a state space with
//!   stationary distribution `π`, and
//! * its simplification for symmetric transition matrices with uniform
//!   stationary distribution:
//!   `φ(P) = min_{S ⊂ V} (Σ_{i∈S, j∉S} p_ij) / min(|S|, |S̄|)`.
//!
//! The analysis of the revocable protocol (proof of Theorem 3) connects this
//! to the graph's isoperimetric number via `i(G) = φ · 2k^{1+ε}` when the
//! diffusion shares fraction `1/(2k^{1+ε})` per link. The brute-force
//! computation here is exponential in `n` and guarded accordingly; it exists
//! as an exact oracle for tests and for the small instances used in the
//! lemma-level experiments.

use crate::error::MarkovError;
use crate::transition::Transition;

/// Maximum state count accepted by the exact (exponential) computations.
pub const BRUTE_FORCE_LIMIT: usize = 22;

/// Exact chain conductance for a **symmetric** transition matrix with
/// uniform stationary distribution (the paper's simplified definition).
///
/// # Errors
///
/// * [`MarkovError::NotSquare`] for non-square input.
/// * [`MarkovError::DimensionMismatch`] when `n > BRUTE_FORCE_LIMIT`
///   (the brute force would not terminate in reasonable time; the `expected`
///   field carries the limit).
/// * [`MarkovError::Empty`] when `n < 2` (no non-trivial cut exists).
///
/// # Examples
///
/// ```
/// use ale_markov::{MarkovChain, conductance};
/// let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
/// let c = MarkovChain::lazy_random_walk(&adj)?;
/// let phi = conductance::chain_conductance_exact(c.transition())?;
/// // Lazy triangle: best cut isolates one node, crossing mass 2·(1/4) = 1/2.
/// assert!((phi - 0.5).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn chain_conductance_exact(p: &Transition) -> Result<f64, MarkovError> {
    if !p.is_square() {
        return Err(MarkovError::NotSquare {
            rows: p.rows(),
            cols: p.cols(),
        });
    }
    let n = p.rows();
    if n < 2 {
        return Err(MarkovError::Empty);
    }
    if n > BRUTE_FORCE_LIMIT {
        return Err(MarkovError::DimensionMismatch {
            expected: BRUTE_FORCE_LIMIT,
            found: n,
        });
    }
    let mut best = f64::INFINITY;
    // Fix node 0 outside S (complement symmetry) and enumerate subsets of
    // the remaining n-1 nodes; covers every cut exactly once.
    let mask_count: u64 = 1u64 << (n - 1);
    for mask in 1..mask_count {
        let mut members = Vec::with_capacity(n);
        for b in 0..(n - 1) {
            if mask >> b & 1 == 1 {
                members.push(b + 1);
            }
        }
        let size = members.len();
        let min_side = size.min(n - size) as f64;
        let mut crossing = 0.0;
        let in_s = {
            let mut v = vec![false; n];
            for &m in &members {
                v[m] = true;
            }
            v
        };
        for &i in &members {
            for (j, w) in p.row_entries(i) {
                if !in_s[j] {
                    crossing += w;
                }
            }
        }
        let ratio = crossing / min_side;
        if ratio < best {
            best = ratio;
        }
    }
    Ok(best)
}

/// General Sinclair–Jerrum conductance for a chain with stationary
/// distribution `pi`:
///
/// `φ(P) = min_S max( Q(S, S̄)/π(S), Q(S̄, S)/π(S̄) )`
/// with `Q(A, B) = Σ_{i∈A, j∈B} π_i p_ij`.
///
/// # Errors
///
/// Same conditions as [`chain_conductance_exact`], plus
/// [`MarkovError::DimensionMismatch`] if `pi.len() != n`.
pub fn chain_conductance_general(p: &Transition, pi: &[f64]) -> Result<f64, MarkovError> {
    if !p.is_square() {
        return Err(MarkovError::NotSquare {
            rows: p.rows(),
            cols: p.cols(),
        });
    }
    let n = p.rows();
    if pi.len() != n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            found: pi.len(),
        });
    }
    if n < 2 {
        return Err(MarkovError::Empty);
    }
    if n > BRUTE_FORCE_LIMIT {
        return Err(MarkovError::DimensionMismatch {
            expected: BRUTE_FORCE_LIMIT,
            found: n,
        });
    }
    let mut best = f64::INFINITY;
    let mask_count: u64 = 1u64 << (n - 1);
    for mask in 1..mask_count {
        let mut in_s = vec![false; n];
        for b in 0..(n - 1) {
            if mask >> b & 1 == 1 {
                in_s[b + 1] = true;
            }
        }
        let mut q_out = 0.0; // Q(S, S̄)
        let mut q_in = 0.0; // Q(S̄, S)
        let mut pi_s = 0.0;
        for i in 0..n {
            if in_s[i] {
                pi_s += pi[i];
            }
            for (j, w) in p.row_entries(i) {
                if in_s[i] && !in_s[j] {
                    q_out += pi[i] * w;
                } else if !in_s[i] && in_s[j] {
                    q_in += pi[i] * w;
                }
            }
        }
        let pi_sbar = 1.0 - pi_s;
        if pi_s <= 0.0 || pi_sbar <= 0.0 {
            continue;
        }
        let val = (q_out / pi_s).max(q_in / pi_sbar);
        if val < best {
            best = val;
        }
    }
    Ok(best)
}

/// Verifies the Cheeger-type inequalities `φ²/2 ≤ 1 − λ₂ ≤ 2φ`
/// (Sinclair–Jerrum Lemma 3.3, used in the proof of Lemma 4).
///
/// Returns `(lower_ok, upper_ok)`.
pub fn cheeger_band(phi: f64, lambda2: f64) -> (bool, bool) {
    let gap = 1.0 - lambda2;
    let eps = 1e-9;
    (gap + eps >= phi * phi / 2.0, gap <= 2.0 * phi + eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;
    use crate::matrix::{CsrMatrix, Matrix};
    use crate::spectral::lambda2_power;

    fn lazy(adj: &[Vec<usize>]) -> MarkovChain {
        MarkovChain::lazy_random_walk(adj).unwrap()
    }

    fn cycle_adj(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn triangle_conductance() {
        let c = lazy(&[vec![1, 2], vec![0, 2], vec![0, 1]]);
        let phi = chain_conductance_exact(c.transition()).unwrap();
        assert!((phi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_conductance_halves_with_size() {
        // Lazy cycle: best cut is an arc of n/2 nodes, crossing mass
        // 2 edges × 1/4 = 1/2, divided by n/2 → 1/n.
        let c8 = lazy(&cycle_adj(8));
        let phi8 = chain_conductance_exact(c8.transition()).unwrap();
        assert!((phi8 - 1.0 / 8.0).abs() < 1e-12, "phi8 = {phi8}");
        let c12 = lazy(&cycle_adj(12));
        let phi12 = chain_conductance_exact(c12.transition()).unwrap();
        assert!((phi12 - 1.0 / 12.0).abs() < 1e-12, "phi12 = {phi12}");
    }

    #[test]
    fn general_matches_simplified_on_symmetric() {
        let c = lazy(&cycle_adj(6));
        let n = 6;
        let pi = vec![1.0 / n as f64; n];
        let general = chain_conductance_general(c.transition(), &pi).unwrap();
        let simple = chain_conductance_exact(c.transition()).unwrap();
        // For uniform π: Q(S,S̄)/π(S) = (1/n · crossing)/(|S|/n) = crossing/|S|;
        // the max over both sides equals crossing/min(|S|,|S̄|).
        assert!((general - simple).abs() < 1e-12);
    }

    #[test]
    fn rejects_oversized_input() {
        let p = Transition::from(Matrix::identity(BRUTE_FORCE_LIMIT + 1));
        assert!(chain_conductance_exact(&p).is_err());
    }

    #[test]
    fn rejects_trivial_input() {
        assert!(chain_conductance_exact(&Transition::from(Matrix::identity(1))).is_err());
        assert!(chain_conductance_exact(&Transition::from(Matrix::zeros(2, 3))).is_err());
    }

    #[test]
    fn sparse_backend_matches_dense() {
        let adj = cycle_adj(8);
        let dense = lazy(&adj);
        let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
        assert_eq!(
            chain_conductance_exact(dense.transition()).unwrap(),
            chain_conductance_exact(sparse.transition()).unwrap()
        );
        let pi = vec![1.0 / 8.0; 8];
        assert_eq!(
            chain_conductance_general(dense.transition(), &pi).unwrap(),
            chain_conductance_general(sparse.transition(), &pi).unwrap()
        );
    }

    #[test]
    fn disconnected_chain_has_zero_conductance() {
        let p = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.5, 0.5],
            vec![0.0, 0.0, 0.5, 0.5],
        ])
        .unwrap();
        let phi = chain_conductance_exact(&Transition::from(p.clone())).unwrap();
        assert_eq!(phi, 0.0);
        let phi_sparse =
            chain_conductance_exact(&Transition::from(CsrMatrix::from_dense(&p))).unwrap();
        assert_eq!(phi_sparse, 0.0);
    }

    #[test]
    fn cheeger_band_holds_on_small_graphs() {
        for adj in [
            cycle_adj(6),
            cycle_adj(10),
            vec![vec![1, 2], vec![0, 2], vec![0, 1]],
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
        ] {
            let c = lazy(&adj);
            let phi = chain_conductance_exact(c.transition()).unwrap();
            let l2 = lambda2_power(c.transition(), 1e-12, 1_000_000).unwrap();
            let (lo, hi) = cheeger_band(phi, l2);
            assert!(lo, "Cheeger lower bound violated: phi={phi}, l2={l2}");
            assert!(hi, "Cheeger upper bound violated: phi={phi}, l2={l2}");
        }
    }

    #[test]
    fn general_dimension_check() {
        let p = Transition::from(Matrix::identity(3));
        assert!(chain_conductance_general(&p, &[0.5, 0.5]).is_err());
    }
}
