//! # ale-markov — Markov-chain and linear-algebra substrate
//!
//! Dense and CSR sparse matrices, finite Markov chains, spectral analysis,
//! mixing times, and chain conductance — the mathematical substrate behind
//! the graph properties (`ale-graph`) and protocol analyses (`ale-core`) of
//! this workspace's reproduction of Kowalski & Mosteiro, *Time and
//! Communication Complexity of Leader Election in Anonymous Networks*
//! (ICDCS 2021).
//!
//! The paper's algorithms take the network's mixing time `t_mix` and
//! conductance `Φ` as inputs (Theorem 1) and its analysis reasons about the
//! diffusion matrix of the `Avg` procedure (Lemmas 3–4). This crate provides
//! exact and spectral implementations of all of those quantities.
//!
//! Chains store their matrix as a [`Transition`] with a dense ([`Matrix`])
//! or sparse ([`CsrMatrix`]) backend. Iterative paths — [`MarkovChain::step`],
//! power iteration, Gauss–Seidel hitting-time sweeps, Monte-Carlo walks —
//! run on either backend; on a chain built from an `m`-edge graph the
//! sparse backend pays `O(m)` per step instead of `O(n²)`, which is what
//! lets the scenario sweeps reach tens of thousands of nodes.
//!
//! ## Quickstart
//!
//! ```
//! use ale_markov::{MarkovChain, mixing, spectral};
//!
//! // Lazy random walk on the 4-cycle.
//! let adj: Vec<Vec<usize>> = (0..4).map(|i| vec![(i + 3) % 4, (i + 1) % 4]).collect();
//! let chain = MarkovChain::lazy_random_walk(&adj)?;
//!
//! let t_mix = mixing::mixing_time_exact(&chain, 1 << 20)?;
//! let gap = spectral::spectral_gap(chain.transition())?;
//! assert!(t_mix >= 1);
//! assert!(gap > 0.0);
//!
//! // The same chain on the sparse backend: O(m) per step.
//! let sparse = MarkovChain::lazy_random_walk_sparse(&adj)?;
//! assert_eq!(mixing::mixing_time_from_state(&sparse, 0, 1 << 20)?, t_mix);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod conductance;
pub mod error;
pub mod hitting;
pub mod matrix;
pub mod mixing;
pub mod simulate;
pub mod spectral;
pub mod transition;

pub use chain::MarkovChain;
pub use error::MarkovError;
pub use matrix::{vecops, CsrMatrix, Matrix};
pub use spectral::Eigen;
pub use transition::Transition;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
        assert_send_sync::<CsrMatrix>();
        assert_send_sync::<Transition>();
        assert_send_sync::<MarkovChain>();
        assert_send_sync::<MarkovError>();
        assert_send_sync::<Eigen>();
    }
}
