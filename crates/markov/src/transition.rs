//! The [`Transition`] abstraction: one transition-matrix interface over the
//! dense and sparse backends.
//!
//! Every iterative path in this crate (chain steps, power iteration,
//! hitting-time sweeps, conductance scans) is written against `Transition`,
//! so a [`crate::MarkovChain`] built from a dense [`Matrix`] and one built
//! from a [`CsrMatrix`] behave identically — the sparse backend just pays
//! `O(nnz)` per step instead of `O(n²)`. Operations that genuinely need
//! full matrix products (exact mixing-time doubling, Jacobi
//! eigendecomposition) densify through [`Transition::to_dense`], guarded by
//! [`DENSIFY_LIMIT`] so a 20 000-state sparse chain cannot silently
//! allocate gigabytes.

use crate::error::MarkovError;
use crate::matrix::{CsrMatrix, Matrix};

/// Largest state count [`Transition::to_dense_checked`] will densify
/// (a `2048²` dense matrix is 32 MiB; the next power of two is 128 MiB).
pub const DENSIFY_LIMIT: usize = 2048;

/// A transition matrix in either dense or CSR sparse representation.
///
/// # Examples
///
/// ```
/// use ale_markov::{CsrMatrix, Matrix, Transition};
///
/// let dense = Transition::from(Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]])?);
/// let sparse = Transition::from(CsrMatrix::from_dense(&dense.to_dense()));
/// assert_eq!(dense.vec_mul(&[1.0, 0.0])?, sparse.vec_mul(&[1.0, 0.0])?);
/// assert!(sparse.is_sparse());
/// assert_eq!(sparse.nnz(), 4);
/// # Ok::<(), ale_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Dense row-major backend.
    Dense(Matrix),
    /// CSR sparse backend.
    Sparse(CsrMatrix),
}

impl From<Matrix> for Transition {
    fn from(m: Matrix) -> Self {
        Transition::Dense(m)
    }
}

impl From<CsrMatrix> for Transition {
    fn from(m: CsrMatrix) -> Self {
        Transition::Sparse(m)
    }
}

impl Transition {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Transition::Dense(m) => m.rows(),
            Transition::Sparse(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Transition::Dense(m) => m.cols(),
            Transition::Sparse(m) => m.cols(),
        }
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows() == self.cols()
    }

    /// Stored entries: `rows·cols` for the dense backend, `nnz` for CSR.
    pub fn nnz(&self) -> usize {
        match self {
            Transition::Dense(m) => m.rows() * m.cols(),
            Transition::Sparse(m) => m.nnz(),
        }
    }

    /// `true` for the CSR backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Transition::Sparse(_))
    }

    /// Backend name for reports and error messages.
    pub fn backend(&self) -> &'static str {
        match self {
            Transition::Dense(_) => "dense",
            Transition::Sparse(_) => "sparse",
        }
    }

    /// Reads entry `(i, j)` (`0.0` outside the sparse pattern).
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Transition::Dense(m) => m[(i, j)],
            Transition::Sparse(m) => m.get(i, j),
        }
    }

    /// Iterates the non-zero entries of row `i` as `(column, value)` pairs
    /// in ascending column order.
    ///
    /// Both backends yield the same sequence for the same matrix (the dense
    /// backend skips zeros), so code written against this iterator is
    /// backend-oblivious — including floating-point accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_entries(&self, i: usize) -> RowEntries<'_> {
        match self {
            Transition::Dense(m) => RowEntries::Dense {
                row: m.row(i),
                j: 0,
            },
            Transition::Sparse(m) => {
                let (cols, vals) = m.row(i);
                RowEntries::Sparse { cols, vals, k: 0 }
            }
        }
    }

    /// Row-vector-matrix product `v * self` (distribution evolution).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.rows()`.
    pub fn vec_mul(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        match self {
            Transition::Dense(m) => m.vec_mul(v),
            Transition::Sparse(m) => m.vec_mul(v),
        }
    }

    /// [`Transition::vec_mul`] into a caller-provided buffer (no allocation
    /// — the hot path of long diffusion loops).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] on either length mismatch.
    pub fn vec_mul_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), MarkovError> {
        match self {
            Transition::Dense(m) => m.vec_mul_into(v, out),
            Transition::Sparse(m) => m.vec_mul_into(v, out),
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        match self {
            Transition::Dense(m) => m.mul_vec(v),
            Transition::Sparse(m) => m.mul_vec(v),
        }
    }

    /// Returns the first row violating row-stochasticity, if any.
    pub fn stochastic_violation(&self) -> Option<(usize, f64)> {
        match self {
            Transition::Dense(m) => m.stochastic_violation(),
            Transition::Sparse(m) => m.stochastic_violation(),
        }
    }

    /// Checks whether every row sums to 1 with non-negative entries.
    pub fn is_row_stochastic(&self) -> bool {
        self.stochastic_violation().is_none()
    }

    /// Checks whether the matrix is doubly stochastic.
    pub fn is_doubly_stochastic(&self) -> bool {
        match self {
            Transition::Dense(m) => m.is_doubly_stochastic(),
            Transition::Sparse(m) => m.is_doubly_stochastic(),
        }
    }

    /// Checks symmetry within [`crate::matrix::EPS`].
    pub fn is_symmetric(&self) -> bool {
        match self {
            Transition::Dense(m) => m.is_symmetric(),
            Transition::Sparse(m) => m.is_symmetric(),
        }
    }

    /// Borrows the dense matrix when this is the dense backend.
    pub fn as_dense(&self) -> Option<&Matrix> {
        match self {
            Transition::Dense(m) => Some(m),
            Transition::Sparse(_) => None,
        }
    }

    /// Borrows the CSR matrix when this is the sparse backend.
    pub fn as_sparse(&self) -> Option<&CsrMatrix> {
        match self {
            Transition::Dense(_) => None,
            Transition::Sparse(m) => Some(m),
        }
    }

    /// Materializes a dense copy regardless of backend (unguarded — the
    /// caller owns the `O(n²)` memory decision).
    pub fn to_dense(&self) -> Matrix {
        match self {
            Transition::Dense(m) => m.clone(),
            Transition::Sparse(m) => m.to_dense(),
        }
    }

    /// Materializes a dense copy, refusing sparse inputs beyond
    /// [`DENSIFY_LIMIT`] states — the guard every dense-only algorithm
    /// (exact mixing, Jacobi) goes through.
    ///
    /// # Errors
    ///
    /// [`MarkovError::DimensionMismatch`] when a sparse matrix has more
    /// than [`DENSIFY_LIMIT`] rows (the `expected` field carries the limit).
    pub fn to_dense_checked(&self) -> Result<Matrix, MarkovError> {
        if self.is_sparse() && self.rows() > DENSIFY_LIMIT {
            return Err(MarkovError::DimensionMismatch {
                expected: DENSIFY_LIMIT,
                found: self.rows(),
            });
        }
        Ok(self.to_dense())
    }
}

/// Iterator over the non-zero `(column, value)` entries of one row, in
/// ascending column order. Created by [`Transition::row_entries`].
#[derive(Debug)]
pub enum RowEntries<'a> {
    /// Dense row scan (zeros skipped).
    Dense {
        /// The borrowed dense row.
        row: &'a [f64],
        /// Next column to inspect.
        j: usize,
    },
    /// CSR row scan.
    Sparse {
        /// Stored column indices.
        cols: &'a [usize],
        /// Stored values.
        vals: &'a [f64],
        /// Next stored position.
        k: usize,
    },
}

impl Iterator for RowEntries<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            RowEntries::Dense { row, j } => {
                while *j < row.len() {
                    let col = *j;
                    let v = row[col];
                    *j += 1;
                    if v != 0.0 {
                        return Some((col, v));
                    }
                }
                None
            }
            RowEntries::Sparse { cols, vals, k } => {
                while *k < cols.len() {
                    let pos = *k;
                    *k += 1;
                    if vals[pos] != 0.0 {
                        return Some((cols[pos], vals[pos]));
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_pair() -> (Transition, Transition) {
        let m = Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.5, 0.25, 0.25],
            vec![0.0, 0.25, 0.75],
        ])
        .unwrap();
        let s = CsrMatrix::from_dense(&m);
        (Transition::from(m), Transition::from(s))
    }

    #[test]
    fn backends_report_consistently() {
        let (d, s) = dense_pair();
        assert_eq!(d.rows(), 3);
        assert_eq!(s.cols(), 3);
        assert!(d.is_square() && s.is_square());
        assert!(!d.is_sparse() && s.is_sparse());
        assert_eq!(d.backend(), "dense");
        assert_eq!(s.backend(), "sparse");
        assert_eq!(d.nnz(), 9);
        assert_eq!(s.nnz(), 7);
        assert!(d.as_dense().is_some() && d.as_sparse().is_none());
        assert!(s.as_sparse().is_some() && s.as_dense().is_none());
    }

    #[test]
    fn row_entries_agree_across_backends() {
        let (d, s) = dense_pair();
        for i in 0..3 {
            let de: Vec<_> = d.row_entries(i).collect();
            let se: Vec<_> = s.row_entries(i).collect();
            assert_eq!(de, se, "row {i}");
        }
        // Zeros are skipped.
        assert_eq!(d.row_entries(0).count(), 2);
    }

    #[test]
    fn products_agree_across_backends() {
        let (d, s) = dense_pair();
        let v = [0.1, 0.2, 0.7];
        assert_eq!(d.vec_mul(&v).unwrap(), s.vec_mul(&v).unwrap());
        assert_eq!(d.mul_vec(&v).unwrap(), s.mul_vec(&v).unwrap());
        let mut out_d = vec![9.0; 3];
        let mut out_s = vec![9.0; 3];
        d.vec_mul_into(&v, &mut out_d).unwrap();
        s.vec_mul_into(&v, &mut out_s).unwrap();
        assert_eq!(out_d, out_s);
        assert!(d.vec_mul_into(&v, &mut [0.0; 2]).is_err());
        assert!(d.vec_mul_into(&[1.0], &mut out_d).is_err());
    }

    #[test]
    fn checks_delegate() {
        let (d, s) = dense_pair();
        for t in [&d, &s] {
            assert!(t.is_row_stochastic());
            assert!(t.is_doubly_stochastic());
            assert!(t.is_symmetric());
            assert_eq!(t.get(1, 0), 0.5);
            assert_eq!(t.get(0, 2), 0.0);
        }
        assert_eq!(d.to_dense(), s.to_dense());
    }

    #[test]
    fn densify_guard_applies_to_sparse_only() {
        let (d, s) = dense_pair();
        assert!(d.to_dense_checked().is_ok());
        assert!(s.to_dense_checked().is_ok());
        let big = CsrMatrix::from_row_entries(
            DENSIFY_LIMIT + 1,
            (0..DENSIFY_LIMIT + 1).map(|i| vec![(i, 1.0)]).collect(),
        )
        .unwrap();
        let t = Transition::from(big);
        assert!(matches!(
            t.to_dense_checked(),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }
}
